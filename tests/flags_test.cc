/**
 * @file
 * Unit tests for the command-line flag parser.
 */

#include <gtest/gtest.h>

#include "common/flags.hh"

using minos::Flags;

namespace {

Flags
make(std::initializer_list<const char *> args)
{
    std::vector<const char *> argv(args);
    return Flags(static_cast<int>(argv.size()), argv.data());
}

} // namespace

TEST(Flags, EqualsSyntax)
{
    auto f = make({"prog", "--nodes=5", "--model=synch"});
    EXPECT_EQ(f.getInt("nodes", 0), 5);
    EXPECT_EQ(f.getString("model"), "synch");
    EXPECT_TRUE(f.has("nodes"));
    EXPECT_FALSE(f.has("records"));
}

TEST(Flags, SpaceSyntax)
{
    auto f = make({"prog", "--nodes", "7", "--model", "event"});
    EXPECT_EQ(f.getInt("nodes", 0), 7);
    EXPECT_EQ(f.getString("model"), "event");
}

TEST(Flags, BareBooleanSwitch)
{
    auto f = make({"prog", "--csv", "--verbose"});
    EXPECT_TRUE(f.getBool("csv"));
    EXPECT_TRUE(f.getBool("verbose"));
    EXPECT_FALSE(f.getBool("quiet"));
    EXPECT_TRUE(f.getBool("quiet", true)); // default honored
}

TEST(Flags, BooleanValues)
{
    auto f = make({"prog", "--a=true", "--b=false", "--c=1", "--d=0",
                   "--e=yes", "--g=no"});
    EXPECT_TRUE(f.getBool("a"));
    EXPECT_FALSE(f.getBool("b"));
    EXPECT_TRUE(f.getBool("c"));
    EXPECT_FALSE(f.getBool("d"));
    EXPECT_TRUE(f.getBool("e"));
    EXPECT_FALSE(f.getBool("g"));
}

TEST(Flags, BareSwitchBeforeAnotherFlag)
{
    // `--csv --nodes=3`: csv must not swallow the next flag.
    auto f = make({"prog", "--csv", "--nodes=3"});
    EXPECT_TRUE(f.getBool("csv"));
    EXPECT_EQ(f.getInt("nodes", 0), 3);
}

TEST(Flags, Positional)
{
    auto f = make({"prog", "input.txt", "--nodes=2", "output.txt"});
    ASSERT_EQ(f.positional().size(), 2u);
    EXPECT_EQ(f.positional()[0], "input.txt");
    EXPECT_EQ(f.positional()[1], "output.txt");
    EXPECT_EQ(f.program(), "prog");
}

TEST(Flags, DoubleDashEndsFlags)
{
    auto f = make({"prog", "--a=1", "--", "--not-a-flag"});
    EXPECT_TRUE(f.has("a"));
    ASSERT_EQ(f.positional().size(), 1u);
    EXPECT_EQ(f.positional()[0], "--not-a-flag");
}

TEST(Flags, GetDouble)
{
    auto f = make({"prog", "--frac=0.8"});
    EXPECT_DOUBLE_EQ(f.getDouble("frac", 0.0), 0.8);
    EXPECT_DOUBLE_EQ(f.getDouble("missing", 0.25), 0.25);
}

TEST(Flags, GetStringsSplitsOnCommas)
{
    auto f = make({"prog", "--trace-categories=lock,fifo,message"});
    auto cats = f.getStrings("trace-categories");
    ASSERT_EQ(cats.size(), 3u);
    EXPECT_EQ(cats[0], "lock");
    EXPECT_EQ(cats[1], "fifo");
    EXPECT_EQ(cats[2], "message");

    // Empty pieces are dropped; absent flags give an empty list.
    auto sloppy = make({"prog", "--trace-categories=lock,,fifo,"});
    auto kept = sloppy.getStrings("trace-categories");
    ASSERT_EQ(kept.size(), 2u);
    EXPECT_EQ(kept[0], "lock");
    EXPECT_EQ(kept[1], "fifo");
    EXPECT_TRUE(make({"prog"}).getStrings("trace-categories").empty());

    // Alternative separators.
    auto colon = make({"prog", "--path=a:b"});
    auto parts = colon.getStrings("path", ':');
    ASSERT_EQ(parts.size(), 2u);
    EXPECT_EQ(parts[1], "b");
}

TEST(Flags, UnknownFlagDetection)
{
    auto f = make({"prog", "--nodes=3", "--typo=1"});
    auto unknown = f.unknownFlags({"nodes", "model"});
    ASSERT_EQ(unknown.size(), 1u);
    EXPECT_EQ(unknown[0], "typo");
}

TEST(Flags, EmptyCommandLine)
{
    auto f = make({"prog"});
    EXPECT_TRUE(f.positional().empty());
    EXPECT_EQ(f.getInt("anything", 9), 9);
}
