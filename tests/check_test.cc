/**
 * @file
 * Model-checking tests (paper §VI, Table I): exhaustive exploration of
 * the abstract protocol model for every <Lin, P> combination, plus
 * checker self-validation through deliberately buggy protocol variants.
 */

#include <gtest/gtest.h>

#include "check/checker.hh"

using namespace minos;
using namespace minos::check;
using simproto::PersistModel;

namespace {

std::string
report(const CheckResult &res)
{
    std::string out;
    for (const auto &v : res.violations)
        out += v.invariant + ": " + v.detail + "\n";
    return out;
}

} // namespace

class CheckModelTest : public ::testing::TestWithParam<PersistModel>
{
};

INSTANTIATE_TEST_SUITE_P(AllModels, CheckModelTest,
                         ::testing::ValuesIn(simproto::allModels),
                         [](const auto &info) {
                             return std::string(
                                 simproto::shortModelName(info.param));
                         });

TEST_P(CheckModelTest, SingleWriteThreeNodes)
{
    CheckConfig cfg;
    cfg.model = GetParam();
    cfg.numNodes = 3;
    cfg.writers = {0};
    CheckResult res = checkModel(cfg);
    EXPECT_TRUE(res.ok()) << report(res);
    EXPECT_GT(res.statesExplored, 10u);
    EXPECT_GT(res.finalStates, 0u);
}

TEST_P(CheckModelTest, TwoConflictingWritersThreeNodes)
{
    // Two concurrent writes to the same record from different nodes:
    // exercises snatching, obsoleteness, and both spin primitives under
    // every possible interleaving and message reordering.
    CheckConfig cfg;
    cfg.model = GetParam();
    cfg.numNodes = 3;
    cfg.writers = {0, 1};
    CheckResult res = checkModel(cfg);
    EXPECT_TRUE(res.ok()) << report(res);
    EXPECT_GT(res.statesExplored, 1000u);
    EXPECT_GT(res.finalStates, 0u);
}

TEST_P(CheckModelTest, TwoWritesSameCoordinator)
{
    CheckConfig cfg;
    cfg.model = GetParam();
    cfg.numNodes = 3;
    cfg.writers = {0, 0};
    CheckResult res = checkModel(cfg);
    EXPECT_TRUE(res.ok()) << report(res);
}

TEST_P(CheckModelTest, ThreeWritersTwoNodes)
{
    CheckConfig cfg;
    cfg.model = GetParam();
    cfg.numNodes = 2;
    cfg.writers = {0, 1, 0};
    CheckResult res = checkModel(cfg);
    EXPECT_TRUE(res.ok()) << report(res);
}

TEST_P(CheckModelTest, ThreeConflictingWritersThreeNodes)
{
    // Only <Lin,Synch> keeps 3 writers x 3 nodes within a tractable
    // state count (split ACKs and background persists multiply the
    // interleavings); the other models are covered by the 2-node
    // 3-writer and 3-node 2-writer configurations.
    if (GetParam() != PersistModel::Synch)
        GTEST_SKIP() << "state space too large; covered elsewhere";
    CheckConfig cfg;
    cfg.model = GetParam();
    cfg.numNodes = 3;
    cfg.writers = {0, 1, 2};
    cfg.maxStates = 12'000'000;
    CheckResult res = checkModel(cfg);
    EXPECT_TRUE(res.ok()) << report(res);
    EXPECT_GT(res.finalStates, 0u);
}

TEST(CheckerValidation, CatchesEarlyRdLockRelease)
{
    // Releasing the RDLock before the ACKs arrive exposes a window in
    // which all replicas are read-unlocked but diverged: invariant 2a.
    CheckConfig cfg;
    cfg.model = PersistModel::Synch;
    cfg.numNodes = 2;
    cfg.writers = {0};
    cfg.bugReleaseRdLockEarly = true;
    CheckResult res = checkModel(cfg);
    ASSERT_FALSE(res.ok())
        << "the checker failed to catch a known protocol bug";
    bool found_2a = false;
    for (const auto &v : res.violations)
        found_2a |= v.invariant.rfind("2a", 0) == 0;
    EXPECT_TRUE(found_2a) << report(res);
}

TEST(CheckerValidation, CatchesAckBeforePersist)
{
    // Acknowledging before the NVM persist lets the coordinator mark
    // the write globally durable while a replica has not persisted it:
    // invariant 3a.
    CheckConfig cfg;
    cfg.model = PersistModel::Synch;
    cfg.numNodes = 2;
    cfg.writers = {0};
    cfg.bugAckBeforePersist = true;
    CheckResult res = checkModel(cfg);
    ASSERT_FALSE(res.ok())
        << "the checker failed to catch a known durability bug";
    bool found_3a = false;
    for (const auto &v : res.violations)
        found_3a |= v.invariant.rfind("3a", 0) == 0;
    EXPECT_TRUE(found_3a) << report(res);
}

TEST(CheckerValidation, SkippingConsistencySpinStillTypeSafe)
{
    // The ConsistencySpin protects client-visible ordering, which the
    // state invariants do not model; skipping it must not corrupt the
    // replicated state itself. This documents the checker's scope.
    CheckConfig cfg;
    cfg.model = PersistModel::Synch;
    cfg.numNodes = 2;
    cfg.writers = {0, 1};
    cfg.bugSkipConsistencySpin = true;
    CheckResult res = checkModel(cfg);
    EXPECT_TRUE(res.ok()) << report(res);
}

TEST(Checker, ScopePersistCoversAllWrites)
{
    CheckConfig cfg;
    cfg.model = PersistModel::Scope;
    cfg.numNodes = 3;
    cfg.writers = {0, 1};
    cfg.scopePersist = true;
    CheckResult res = checkModel(cfg);
    EXPECT_TRUE(res.ok()) << report(res);
    EXPECT_GT(res.finalStates, 0u);
}

TEST(Checker, CounterexampleTraceIsReconstructed)
{
    CheckConfig cfg;
    cfg.model = PersistModel::Synch;
    cfg.numNodes = 2;
    cfg.writers = {0};
    cfg.bugReleaseRdLockEarly = true;
    cfg.recordTraces = true;
    CheckResult res = checkModel(cfg);
    ASSERT_FALSE(res.ok());
    const auto &v = res.violations.front();
    // A TLC-style action path from the initial state to the violation.
    ASSERT_FALSE(v.trace.empty()) << report(res);
    EXPECT_EQ(v.trace.front(), "StartWrite");
    // The buggy release happens inside CoordSend, so the trace must
    // contain it before the violation.
    bool has_send = false;
    for (const auto &a : v.trace)
        has_send |= (a == "CoordSend");
    EXPECT_TRUE(has_send);
}

TEST(Checker, TracesOffByDefault)
{
    CheckConfig cfg;
    cfg.model = PersistModel::Synch;
    cfg.numNodes = 2;
    cfg.writers = {0};
    cfg.bugReleaseRdLockEarly = true;
    CheckResult res = checkModel(cfg);
    ASSERT_FALSE(res.ok());
    EXPECT_TRUE(res.violations.front().trace.empty());
}

TEST(Checker, StateSpaceIsExhaustive)
{
    // Sanity: more writers -> strictly larger state space.
    CheckConfig one;
    one.numNodes = 3;
    one.writers = {0};
    CheckConfig two;
    two.numNodes = 3;
    two.writers = {0, 1};
    auto r1 = checkModel(one);
    auto r2 = checkModel(two);
    EXPECT_GT(r2.statesExplored, r1.statesExplored * 10);
}
