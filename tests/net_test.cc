/**
 * @file
 * Unit tests for the protocol message vocabulary.
 */

#include <gtest/gtest.h>

#include "net/message.hh"

using namespace minos::net;
using minos::kv::Timestamp;

TEST(Message, TypeNamesMatchTableI)
{
    EXPECT_EQ(msgTypeName(MsgType::INV), "INV");
    EXPECT_EQ(msgTypeName(MsgType::ACK), "ACK");
    EXPECT_EQ(msgTypeName(MsgType::ACK_C), "ACK_C");
    EXPECT_EQ(msgTypeName(MsgType::ACK_P), "ACK_P");
    EXPECT_EQ(msgTypeName(MsgType::VAL), "VAL");
    EXPECT_EQ(msgTypeName(MsgType::VAL_C), "VAL_C");
    EXPECT_EQ(msgTypeName(MsgType::VAL_P), "VAL_P");
    EXPECT_EQ(msgTypeName(MsgType::INV_SC), "[INV]sc");
    EXPECT_EQ(msgTypeName(MsgType::ACK_C_SC), "[ACK_C]sc");
    EXPECT_EQ(msgTypeName(MsgType::ACK_P_SC), "[ACK_P]sc");
    EXPECT_EQ(msgTypeName(MsgType::VAL_C_SC), "[VAL_C]sc");
    EXPECT_EQ(msgTypeName(MsgType::VAL_P_SC), "[VAL_P]sc");
    EXPECT_EQ(msgTypeName(MsgType::PERSIST_SC), "[PERSIST]sc");
}

TEST(Message, OnlyInvFamilyCarriesData)
{
    EXPECT_TRUE(carriesData(MsgType::INV));
    EXPECT_TRUE(carriesData(MsgType::INV_SC));
    EXPECT_FALSE(carriesData(MsgType::ACK));
    EXPECT_FALSE(carriesData(MsgType::VAL));
    EXPECT_FALSE(carriesData(MsgType::PERSIST_SC));
    EXPECT_FALSE(carriesData(MsgType::ACK_P_SC));
}

TEST(Message, ScopedFamily)
{
    EXPECT_TRUE(isScoped(MsgType::INV_SC));
    EXPECT_TRUE(isScoped(MsgType::ACK_C_SC));
    EXPECT_TRUE(isScoped(MsgType::ACK_P_SC));
    EXPECT_TRUE(isScoped(MsgType::VAL_C_SC));
    EXPECT_TRUE(isScoped(MsgType::VAL_P_SC));
    EXPECT_TRUE(isScoped(MsgType::PERSIST_SC));
    EXPECT_FALSE(isScoped(MsgType::INV));
    EXPECT_FALSE(isScoped(MsgType::ACK_C));
    EXPECT_FALSE(isScoped(MsgType::VAL_P));
}

TEST(Message, MakeResponseSwapsEndpoints)
{
    Message inv;
    inv.type = MsgType::INV;
    inv.src = 0;
    inv.dst = 3;
    inv.key = 77;
    inv.tsWr = Timestamp{5, 0};
    inv.value = 123;
    inv.sizeBytes = 1024;
    inv.destMask = 0b1110;
    inv.handleNs = 999;

    Message ack = makeResponse(inv, MsgType::ACK);
    EXPECT_EQ(ack.type, MsgType::ACK);
    EXPECT_EQ(ack.src, 3);
    EXPECT_EQ(ack.dst, 0);
    EXPECT_EQ(ack.key, 77u);
    EXPECT_EQ(ack.tsWr, (Timestamp{5, 0}));
    // Control responses are small and carry no batching/handling state.
    EXPECT_EQ(ack.sizeBytes, controlMsgBytes);
    EXPECT_EQ(ack.destMask, 0u);
    EXPECT_EQ(ack.handleNs, 0);
}
