/**
 * @file
 * Unit tests for timestamps, record metadata, and the MINOS-KV stores.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "kv/hashtable.hh"
#include "kv/record.hh"
#include "kv/store.hh"
#include "kv/timestamp.hh"

using namespace minos::kv;

TEST(Timestamp, NoneIsSentinel)
{
    auto none = Timestamp::none();
    EXPECT_TRUE(none.isNone());
    EXPECT_EQ(none.version, -1);
    EXPECT_EQ(none.node, -1);
}

TEST(Timestamp, OrderingByVersionThenNode)
{
    // Paper §III-A: newer = higher version; tie -> higher node_id.
    Timestamp a{5, 0}, b{6, 0}, c{5, 1};
    EXPECT_LT(a, b);
    EXPECT_LT(a, c);
    EXPECT_LT(c, b);
    EXPECT_GT(b, a);
    EXPECT_EQ(a, (Timestamp{5, 0}));
}

TEST(Timestamp, NoneOrdersBeforeEverything)
{
    EXPECT_LT(Timestamp::none(), (Timestamp{0, 0}));
    EXPECT_LT(Timestamp::none(), (Timestamp{1, 3}));
}

TEST(Timestamp, PackRoundTrips)
{
    std::vector<Timestamp> cases = {
        Timestamp::none(), {0, 0}, {1, 0}, {0, 1}, {123456789, 42},
        {1, 65533},
    };
    for (const auto &ts : cases)
        EXPECT_EQ(Timestamp::unpack(ts.pack()), ts);
}

TEST(Timestamp, PackPreservesOrdering)
{
    std::vector<Timestamp> sorted = {
        Timestamp::none(), {0, 0}, {0, 5}, {1, 0}, {2, 0}, {2, 3},
        {100, 0},
    };
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
        EXPECT_LT(sorted[i], sorted[i + 1]);
        EXPECT_LT(sorted[i].pack(), sorted[i + 1].pack());
    }
}

TEST(Record, FreshRecordState)
{
    Record rec;
    EXPECT_TRUE(rec.rdLockFree());
    EXPECT_TRUE(rec.volatileTs.isNone());
    EXPECT_TRUE(rec.glbVolatileTs.isNone());
    EXPECT_TRUE(rec.glbDurableTs.isNone());
}

TEST(Record, ObsoleteCheck)
{
    Record rec;
    // Nothing written yet: no write is obsolete.
    EXPECT_FALSE(isObsolete(rec, Timestamp{1, 0}));
    rec.volatileTs = Timestamp{5, 2};
    EXPECT_TRUE(isObsolete(rec, Timestamp{4, 3}));  // older version
    EXPECT_TRUE(isObsolete(rec, Timestamp{5, 1}));  // same ver, lower node
    EXPECT_FALSE(isObsolete(rec, Timestamp{5, 2})); // itself: not obsolete
    EXPECT_FALSE(isObsolete(rec, Timestamp{5, 3})); // newer
    EXPECT_FALSE(isObsolete(rec, Timestamp{6, 0}));
}

TEST(SimStore, HoldsIndependentRecords)
{
    SimStore store(10);
    EXPECT_EQ(store.size(), 10u);
    store.at(3).value = 99;
    store.at(3).volatileTs = Timestamp{1, 0};
    EXPECT_EQ(store.at(3).value, 99u);
    EXPECT_EQ(store.at(4).value, 0u);
    EXPECT_TRUE(store.at(4).volatileTs.isNone());
}

TEST(AtomicRecord, InitializedToNone)
{
    AtomicRecord rec;
    EXPECT_TRUE(rec.loadRdLockOwner().isNone());
    EXPECT_TRUE(rec.loadVolatileTs().isNone());
    EXPECT_TRUE(rec.loadGlbVolatileTs().isNone());
    EXPECT_TRUE(rec.loadGlbDurableTs().isNone());
    EXPECT_FALSE(rec.wrLock.load());
}

TEST(AtomicRecord, RaiseTsIsMonotonic)
{
    AtomicRecord rec;
    EXPECT_TRUE(AtomicRecord::raiseTs(rec.volatileTs, Timestamp{3, 0}));
    EXPECT_EQ(rec.loadVolatileTs(), (Timestamp{3, 0}));
    // Older value must not overwrite.
    EXPECT_FALSE(AtomicRecord::raiseTs(rec.volatileTs, Timestamp{2, 9}));
    EXPECT_EQ(rec.loadVolatileTs(), (Timestamp{3, 0}));
    // Equal value: no update needed.
    EXPECT_FALSE(AtomicRecord::raiseTs(rec.volatileTs, Timestamp{3, 0}));
    // Newer: updates.
    EXPECT_TRUE(AtomicRecord::raiseTs(rec.volatileTs, Timestamp{3, 1}));
    EXPECT_EQ(rec.loadVolatileTs(), (Timestamp{3, 1}));
}

TEST(AtomicRecord, RaiseTsUnderContention)
{
    AtomicRecord rec;
    constexpr int threads = 8;
    constexpr int per_thread = 1000;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&rec, t] {
            for (int i = 0; i < per_thread; ++i)
                AtomicRecord::raiseTs(rec.volatileTs,
                                      Timestamp{i, t});
        });
    }
    for (auto &th : pool)
        th.join();
    // The maximum must win: version per_thread-1, node threads-1.
    EXPECT_EQ(rec.loadVolatileTs(),
              (Timestamp{per_thread - 1, threads - 1}));
}

TEST(HashTable, GetOrCreateFindsSameRecord)
{
    HashTable table(64);
    auto &a = table.getOrCreate(42);
    a.value.store(7);
    auto *b = table.find(42);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->value.load(), 7u);
    EXPECT_EQ(&a, b);
    EXPECT_EQ(table.size(), 1u);
}

TEST(HashTable, MissingKeyIsNull)
{
    HashTable table(8);
    EXPECT_EQ(table.find(9999), nullptr);
}

TEST(HashTable, ManyKeysWithCollisions)
{
    HashTable table(4); // tiny bucket count forces chains
    for (Key k = 0; k < 1000; ++k)
        table.getOrCreate(k).value.store(k * 3);
    EXPECT_EQ(table.size(), 1000u);
    for (Key k = 0; k < 1000; ++k) {
        auto *rec = table.find(k);
        ASSERT_NE(rec, nullptr) << "key " << k;
        EXPECT_EQ(rec->value.load(), k * 3);
    }
}

TEST(HashTable, ConcurrentInsertsAreConsistent)
{
    HashTable table(128);
    constexpr int threads = 8;
    constexpr Key keys = 2000;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&table] {
            for (Key k = 0; k < keys; ++k)
                table.getOrCreate(k);
        });
    }
    for (auto &th : pool)
        th.join();
    EXPECT_EQ(table.size(), keys);
    // All threads must agree on the same record object per key.
    for (Key k = 0; k < keys; ++k)
        EXPECT_NE(table.find(k), nullptr);
}
