/**
 * @file
 * Tests of the threaded MINOS-B runtime: the paper's algorithms under
 * real thread concurrency — replication, conflicting writers,
 * linearizable read-after-write, scope persistence, and the §III-E
 * failure-detection + recovery path.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>

#include "proto/tnode.hh"

using namespace minos;
using namespace minos::proto;
using kv::Key;
using kv::NodeId;
using kv::Timestamp;
using kv::Value;

namespace {

ThreadedConfig
smallConfig(PersistModel model, int nodes = 3)
{
    ThreadedConfig cfg;
    cfg.numNodes = nodes;
    cfg.model = model;
    cfg.numRecords = 256;
    // Keep the emulated persist short so tests stay fast.
    cfg.persistNsPerKb = 300;
    cfg.wireLatency = std::chrono::microseconds(1);
    cfg.ackTimeout = std::chrono::milliseconds(200);
    return cfg;
}

/** Wait (bounded) until a predicate holds; returns success. */
template <typename Pred>
bool
eventually(Pred &&pred,
           std::chrono::milliseconds limit = std::chrono::seconds(5))
{
    auto deadline = std::chrono::steady_clock::now() + limit;
    while (std::chrono::steady_clock::now() < deadline) {
        if (pred())
            return true;
        std::this_thread::yield();
    }
    return pred();
}

void
expectReplicated(ThreadedCluster &cluster, Key key, Value value,
                 Timestamp ts)
{
    for (int n = 0; n < cluster.config().numNodes; ++n) {
        const kv::AtomicRecord *rec =
            cluster.node(static_cast<NodeId>(n)).record(key);
        ASSERT_NE(rec, nullptr) << "node " << n;
        EXPECT_EQ(rec->value.load(), value) << "node " << n;
        EXPECT_EQ(rec->loadVolatileTs(), ts) << "node " << n;
    }
}

} // namespace

class TModelTest : public ::testing::TestWithParam<PersistModel>
{
};

INSTANTIATE_TEST_SUITE_P(AllModels, TModelTest,
                         ::testing::ValuesIn(simproto::allModels),
                         [](const auto &info) {
                             return std::string(
                                 simproto::shortModelName(info.param));
                         });

TEST_P(TModelTest, SingleWriteReplicates)
{
    ThreadedCluster cluster(smallConfig(GetParam()));
    WriteResult res = cluster.node(0).write(7, 1234);
    EXPECT_FALSE(res.obsolete);
    EXPECT_EQ(res.ts, (Timestamp{0, 0}));
    expectReplicated(cluster, 7, 1234, res.ts);
    // Every replica releases its RDLock once the VALs land.
    EXPECT_TRUE(eventually([&] {
        for (int n = 0; n < 3; ++n) {
            const auto *rec = cluster.node(n).record(7);
            if (!rec || !rec->loadRdLockOwner().isNone())
                return false;
        }
        return true;
    }));
}

TEST_P(TModelTest, ReadAfterWriteIsLinearizable)
{
    ThreadedCluster cluster(smallConfig(GetParam()));
    // Once the write response returns, a read anywhere must see the
    // value (Lin consistency).
    cluster.node(1).write(3, 42);
    for (int n = 0; n < 3; ++n)
        EXPECT_EQ(cluster.node(n).read(3), 42u) << "node " << n;
}

TEST_P(TModelTest, SequentialWritesMonotonicVersions)
{
    ThreadedCluster cluster(smallConfig(GetParam()));
    auto r1 = cluster.node(0).write(5, 100);
    auto r2 = cluster.node(1).write(5, 200);
    auto r3 = cluster.node(2).write(5, 300);
    EXPECT_LT(r1.ts, r2.ts);
    EXPECT_LT(r2.ts, r3.ts);
    expectReplicated(cluster, 5, 300, r3.ts);
}

TEST_P(TModelTest, DurableAtQuiescence)
{
    ThreadedCluster cluster(smallConfig(GetParam()));
    cluster.node(0).write(9, 77);
    if (GetParam() == PersistModel::Scope)
        cluster.node(0).persistScope(0);
    // Background persisters may still be draining.
    EXPECT_TRUE(eventually([&] {
        for (int n = 0; n < 3; ++n) {
            auto db = cluster.node(n).durableDb();
            auto it = db.find(9);
            if (it == db.end() || it->second.value != 77u)
                return false;
        }
        return true;
    }));
}

TEST_P(TModelTest, ConcurrentWritersFromAllNodesConverge)
{
    ThreadedCluster cluster(smallConfig(GetParam()));
    constexpr int writes_per_node = 30;
    std::vector<std::thread> clients;
    for (int n = 0; n < 3; ++n) {
        clients.emplace_back([&cluster, n] {
            for (int i = 0; i < writes_per_node; ++i) {
                // Everyone hammers the same small key range.
                cluster.node(n).write(
                    static_cast<Key>(i % 4),
                    static_cast<Value>(n * 1000 + i));
            }
        });
    }
    for (auto &t : clients)
        t.join();

    // All replicas converge per key (volatileTS equal and RDLock free).
    EXPECT_TRUE(eventually([&] {
        for (Key k = 0; k < 4; ++k) {
            const auto *r0 = cluster.node(0).record(k);
            if (!r0)
                return false;
            auto ts = r0->loadVolatileTs();
            for (int n = 0; n < 3; ++n) {
                const auto *rec = cluster.node(n).record(k);
                if (!rec || rec->loadVolatileTs() != ts ||
                    !rec->loadRdLockOwner().isNone())
                    return false;
                if (rec->value.load() != r0->value.load())
                    return false;
            }
        }
        return true;
    }));
}

TEST_P(TModelTest, ConcurrentSameKeyWritersProduceUniqueTimestamps)
{
    ThreadedCluster cluster(smallConfig(GetParam()));
    constexpr int threads = 4, per_thread = 20;
    std::mutex mu;
    std::set<Timestamp> seen;
    std::vector<std::thread> clients;
    for (int t = 0; t < threads; ++t) {
        clients.emplace_back([&, t] {
            NodeId node = static_cast<NodeId>(t % 3);
            for (int i = 0; i < per_thread; ++i) {
                auto res = cluster.node(node).write(0, 1);
                std::lock_guard<std::mutex> guard(mu);
                EXPECT_TRUE(seen.insert(res.ts).second)
                    << "duplicate TS_WR " << res.ts;
            }
        });
    }
    for (auto &t : clients)
        t.join();
    EXPECT_EQ(seen.size(),
              static_cast<std::size_t>(threads * per_thread));
}

TEST(ThreadedScope, PersistScopeMakesScopeDurable)
{
    ThreadedCluster cluster(smallConfig(PersistModel::Scope));
    cluster.node(0).write(1, 10, /*scope=*/5);
    cluster.node(0).write(2, 20, /*scope=*/5);
    cluster.node(0).persistScope(5);
    // After [PERSIST]sc returns, both writes are durable on all nodes.
    for (int n = 0; n < 3; ++n) {
        auto db = cluster.node(n).durableDb();
        ASSERT_TRUE(db.count(1)) << "node " << n;
        ASSERT_TRUE(db.count(2)) << "node " << n;
        EXPECT_EQ(db[1].value, 10u);
        EXPECT_EQ(db[2].value, 20u);
    }
}

TEST(ThreadedRecovery, WritesSurviveNodeFailure)
{
    auto cfg = smallConfig(PersistModel::Synch);
    cfg.ackTimeout = std::chrono::milliseconds(30);
    ThreadedCluster cluster(cfg);

    cluster.node(0).write(1, 11);
    cluster.failNode(2);

    // The next write times out on node 2, declares it failed, and
    // completes against the shrunken live set.
    auto res = cluster.node(0).write(1, 22);
    EXPECT_FALSE(res.obsolete);
    EXPECT_FALSE(recovery::isLive(cluster.node(0).liveMask(), 2));
    EXPECT_EQ(cluster.node(0).read(1), 22u);
    EXPECT_EQ(cluster.node(1).read(1), 22u);

    // Node 1 learns about the failure via the control plane.
    EXPECT_TRUE(eventually(
        [&] { return !recovery::isLive(cluster.node(1).liveMask(), 2); }));
}

TEST(ThreadedRecovery, RejoinCatchesUpViaLogShipping)
{
    auto cfg = smallConfig(PersistModel::Synch);
    cfg.ackTimeout = std::chrono::milliseconds(30);
    ThreadedCluster cluster(cfg);

    cluster.node(0).write(1, 11);
    cluster.failNode(2);
    cluster.node(0).write(1, 22); // triggers detection
    cluster.node(1).write(2, 33);
    cluster.node(0).write(3, 44);

    cluster.healAndRejoin(2);

    // Node 2 replays the designated node's log and converges.
    EXPECT_TRUE(eventually([&] {
        const auto *r1 = cluster.node(2).record(1);
        const auto *r2 = cluster.node(2).record(2);
        const auto *r3 = cluster.node(2).record(3);
        return r1 && r2 && r3 && r1->value.load() == 22u &&
               r2->value.load() == 33u && r3->value.load() == 44u;
    }));
    // Its durable state matches too.
    auto db = cluster.node(2).durableDb();
    EXPECT_EQ(db[1].value, 22u);
    EXPECT_EQ(db[2].value, 33u);
    EXPECT_EQ(db[3].value, 44u);
    // And everyone sees it live again.
    EXPECT_TRUE(eventually([&] {
        return recovery::isLive(cluster.node(0).liveMask(), 2) &&
               recovery::isLive(cluster.node(1).liveMask(), 2) &&
               recovery::isLive(cluster.node(2).liveMask(), 2);
    }));
}

TEST(ThreadedRecovery, RejoinWorksAfterLogCompaction)
{
    // A designated node whose log has been compacted into a snapshot
    // must still be able to catch a rejoining node up.
    auto cfg = smallConfig(PersistModel::Synch);
    cfg.ackTimeout = std::chrono::milliseconds(30);
    ThreadedCluster cluster(cfg);

    cluster.node(0).write(1, 11);
    cluster.node(0).write(1, 12);
    cluster.node(0).write(2, 21);
    cluster.failNode(2);
    cluster.node(0).write(3, 31); // detection
    cluster.node(0).compactLog();
    EXPECT_GT(cluster.node(0).logSize(),
              cluster.node(0).durableDb().size() - 1);

    cluster.healAndRejoin(2);
    EXPECT_TRUE(eventually([&] {
        auto db = cluster.node(2).durableDb();
        return db.count(1) && db.count(2) && db.count(3) &&
               db[1].value == 12 && db[2].value == 21 &&
               db[3].value == 31;
    }));
}

TEST(ThreadedRecovery, RejoinedNodeParticipatesInNewWrites)
{
    auto cfg = smallConfig(PersistModel::Synch);
    cfg.ackTimeout = std::chrono::milliseconds(30);
    ThreadedCluster cluster(cfg);

    cluster.failNode(2);
    cluster.node(0).write(1, 11); // detection
    cluster.healAndRejoin(2);
    ASSERT_TRUE(eventually(
        [&] { return recovery::isLive(cluster.node(0).liveMask(), 2); }));

    // A new write must replicate to the rejoined node.
    auto res = cluster.node(0).write(5, 55);
    EXPECT_TRUE(eventually([&] {
        const auto *rec = cluster.node(2).record(5);
        return rec && rec->value.load() == 55u &&
               rec->loadVolatileTs() == res.ts;
    }));
}

TEST(ThreadedFabric, DropsTrafficWhenLinkDown)
{
    runtime::Fabric fabric(2, std::chrono::nanoseconds(0));
    net::Message m;
    m.src = 0;
    m.dst = 1;
    fabric.setLinkUp(1, false);
    fabric.send(m);
    EXPECT_EQ(fabric.dropped(), 1u);
    EXPECT_FALSE(fabric.poll(1).has_value());
    fabric.setLinkUp(1, true);
    fabric.send(m);
    EXPECT_TRUE(eventually([&] { return fabric.poll(1).has_value(); }));
}

TEST(ThreadedFabric, DeliversAfterLatency)
{
    runtime::Fabric fabric(2, std::chrono::microseconds(200));
    net::Message m;
    m.src = 0;
    m.dst = 1;
    auto t0 = std::chrono::steady_clock::now();
    fabric.send(m);
    while (!fabric.poll(1).has_value())
        std::this_thread::yield();
    auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_GE(elapsed, std::chrono::microseconds(200));
}
