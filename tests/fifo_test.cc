/**
 * @file
 * Direct unit tests of the MINOS-O SmartNIC hardware queues (vFIFO and
 * dFIFO, paper §V-B.4): ordering, obsolete filtering, capacity
 * blocking, drain pipelining, and the durability point.
 */

#include <gtest/gtest.h>

#include "nvm/log.hh"
#include "sim/network.hh"
#include "snic/fifo.hh"

using namespace minos;
using namespace minos::sim;
using namespace minos::snic;
using kv::Timestamp;

namespace {

struct Rig
{
    explicit Rig(int entries = 5)
    {
        cfg.vfifoEntries = entries;
        cfg.dfifoEntries = entries;
        cfg.numRecords = 16;
        store = std::make_unique<kv::SimStore>(cfg.numRecords);
        dma = std::make_unique<Link>(sim, cfg.pcieLatencyNs,
                                     cfg.pcieBwBytesPerSec, 30);
        progress = std::make_unique<Condition>(sim);
        vfifo = std::make_unique<VFifo>(sim, cfg, *store, *dma,
                                        *progress);
        dfifo = std::make_unique<DFifo>(sim, cfg, log, *dma, *progress);
    }

    sim::Simulator sim;
    simproto::ClusterConfig cfg;
    nvm::DurableLog log;
    std::unique_ptr<kv::SimStore> store;
    std::unique_ptr<Link> dma;
    std::unique_ptr<Condition> progress;
    std::unique_ptr<VFifo> vfifo;
    std::unique_ptr<DFifo> dfifo;
};

sim::Process
enqueueAndWait(Rig *rig, kv::Key key, kv::Value value, Timestamp ts,
               Tick *done_at)
{
    std::uint64_t id = co_await rig->vfifo->enqueue(key, value, ts);
    co_await rig->vfifo->waitDrained(id);
    if (done_at)
        *done_at = rig->sim.now();
}

} // namespace

TEST(VFifo, DrainAppliesToStore)
{
    Rig rig;
    Tick done = 0;
    rig.sim.spawn(enqueueAndWait(&rig, 3, 99, Timestamp{0, 0}, &done));
    rig.sim.run();
    EXPECT_EQ(rig.store->at(3).value, 99u);
    EXPECT_EQ(rig.store->at(3).volatileTs, (Timestamp{0, 0}));
    // Enqueue write + DMA to the host LLC both cost time.
    EXPECT_GE(done, rig.cfg.vfifoWriteNs + rig.cfg.pcieLatencyNs);
}

TEST(VFifo, ObsoleteEntriesAreSkipped)
{
    Rig rig;
    struct P
    {
        static sim::Process
        run(Rig *rig)
        {
            // Newer entry first, then an older one for the same key:
            // the older must be filtered at drain.
            auto id1 = co_await rig->vfifo->enqueue(5, 222,
                                                    Timestamp{2, 0});
            auto id2 = co_await rig->vfifo->enqueue(5, 111,
                                                    Timestamp{1, 0});
            co_await rig->vfifo->waitDrained(id1);
            co_await rig->vfifo->waitDrained(id2);
        }
    };
    rig.sim.spawn(P::run(&rig));
    rig.sim.run();
    EXPECT_EQ(rig.store->at(5).value, 222u);
    EXPECT_EQ(rig.store->at(5).volatileTs, (Timestamp{2, 0}));
    EXPECT_GE(rig.vfifo->skippedObsolete(), 1u);
}

TEST(VFifo, BoundedCapacityBlocksEnqueue)
{
    Rig small(1);
    Rig big(0); // unlimited
    auto burst = [](Rig *rig, Tick *done) {
        // Several concurrent producers each streaming multiple entries:
        // with a 1-entry FIFO, later enqueues must wait for drain slots.
        struct P
        {
            static sim::Process
            run(Rig *rig, kv::Key base, Tick *done)
            {
                std::uint64_t last = 0;
                for (int i = 0; i < 3; ++i)
                    last = co_await rig->vfifo->enqueue(
                        base, static_cast<kv::Value>(i),
                        Timestamp{i, static_cast<kv::NodeId>(base)});
                co_await rig->vfifo->waitDrained(last);
                *done = std::max(*done, rig->sim.now());
            }
        };
        for (kv::Key k = 0; k < 6; ++k)
            rig->sim.spawn(P::run(rig, k, done));
        rig->sim.run();
    };
    Tick t_small = 0, t_big = 0;
    burst(&small, &t_small);
    burst(&big, &t_big);
    // A 1-entry FIFO serializes the burst against the drain engine.
    EXPECT_GT(t_small, t_big);
}

TEST(VFifo, DrainPreservesFifoOrderPerKey)
{
    Rig rig;
    struct P
    {
        static sim::Process
        run(Rig *rig)
        {
            std::uint64_t last = 0;
            for (int v = 0; v < 6; ++v)
                last = co_await rig->vfifo->enqueue(
                    7, static_cast<kv::Value>(v),
                    Timestamp{v, 0});
            co_await rig->vfifo->waitDrained(last);
        }
    };
    rig.sim.spawn(P::run(&rig));
    rig.sim.run();
    // The newest version must be the survivor.
    EXPECT_EQ(rig.store->at(7).value, 5u);
    EXPECT_EQ(rig.store->at(7).volatileTs, (Timestamp{5, 0}));
}

TEST(DFifo, EnqueueIsTheDurabilityPoint)
{
    Rig rig;
    struct P
    {
        static sim::Process
        run(Rig *rig, std::size_t *log_size_at_enqueue)
        {
            co_await rig->dfifo->enqueue(1, 42, Timestamp{0, 0}, 1024);
            // Durable immediately after the enqueue completes, before
            // any background drain to the host.
            *log_size_at_enqueue = rig->log.size();
        }
    };
    std::size_t at_enqueue = 0;
    rig.sim.spawn(P::run(&rig, &at_enqueue));
    rig.sim.run();
    EXPECT_EQ(at_enqueue, 1u);
    EXPECT_EQ(rig.log.entryAt(0).value, 42u);
}

TEST(DFifo, MarkersDoNotPolluteTheLog)
{
    Rig rig;
    struct P
    {
        static sim::Process
        run(Rig *rig)
        {
            co_await rig->dfifo->enqueueMarker(64);
            co_await rig->dfifo->enqueue(2, 7, Timestamp{0, 0}, 1024);
            co_await rig->dfifo->enqueueMarker(64);
        }
    };
    rig.sim.spawn(P::run(&rig));
    rig.sim.run();
    // Only the data entry lands in the durable log.
    EXPECT_EQ(rig.log.size(), 1u);
    EXPECT_EQ(rig.log.entryAt(0).key, 2u);
}

TEST(DFifo, ScalesLatencyWithSize)
{
    Rig rig;
    struct P
    {
        static sim::Process
        run(Rig *rig, Tick *small_cost, Tick *big_cost)
        {
            Tick t0 = rig->sim.now();
            co_await rig->dfifo->enqueue(1, 1, Timestamp{0, 0}, 64);
            *small_cost = rig->sim.now() - t0;
            t0 = rig->sim.now();
            co_await rig->dfifo->enqueue(1, 2, Timestamp{1, 0}, 2048);
            *big_cost = rig->sim.now() - t0;
        }
    };
    Tick small = 0, big = 0;
    rig.sim.spawn(P::run(&rig, &small, &big));
    rig.sim.run();
    // The Table III dFIFO write latency is per KB.
    EXPECT_GT(big, small);
    EXPECT_NEAR(static_cast<double>(big), 2.0 * 1295.0, 10.0);
}
