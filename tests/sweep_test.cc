/**
 * @file
 * Cross-engine property sweeps: every (engine x model x cluster size)
 * combination must preserve the protocol's convergence and durability
 * invariants under a conflicting workload, and the offloaded engine
 * must never be slower than the baseline under identical conditions.
 */

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "simproto/cluster_b.hh"
#include "simproto/cluster_leader.hh"
#include "simproto/driver.hh"
#include "snic/cluster_o.hh"

using namespace minos;
using namespace minos::simproto;
using minos::snic::ClusterO;
using kv::Key;
using kv::NodeId;

namespace {

enum class Engine { Baseline, Offload, Leader };

const char *
engineName(Engine e)
{
    switch (e) {
      case Engine::Baseline: return "B";
      case Engine::Offload: return "O";
      case Engine::Leader: return "Leader";
    }
    return "?";
}

std::unique_ptr<DdpCluster>
makeCluster(sim::Simulator &sim, Engine engine,
            const ClusterConfig &cfg, PersistModel model)
{
    switch (engine) {
      case Engine::Baseline:
        return std::make_unique<ClusterB>(sim, cfg, model);
      case Engine::Offload:
        return std::make_unique<ClusterO>(sim, cfg, model);
      case Engine::Leader:
        return std::make_unique<ClusterLeader>(sim, cfg, model);
    }
    return nullptr;
}

/** Fetch a record from whichever engine backs the cluster. */
const kv::Record &
recordOf(DdpCluster &cluster, NodeId node, Key key)
{
    if (auto *b = dynamic_cast<ClusterB *>(&cluster))
        return b->node(node).record(key);
    if (auto *o = dynamic_cast<ClusterO *>(&cluster))
        return o->node(node).record(key);
    auto *l = dynamic_cast<ClusterLeader *>(&cluster);
    return l->node(node).record(key);
}

nvm::DurableDb
durableDbOf(DdpCluster &cluster, NodeId node)
{
    if (auto *b = dynamic_cast<ClusterB *>(&cluster))
        return b->node(node).durableDb();
    if (auto *o = dynamic_cast<ClusterO *>(&cluster))
        return o->node(node).durableDb();
    auto *l = dynamic_cast<ClusterLeader *>(&cluster);
    return l->node(node).durableDb();
}

} // namespace

using SweepParam = std::tuple<int /*engine*/, PersistModel, int /*nodes*/>;

class SweepTest : public ::testing::TestWithParam<SweepParam>
{
};

INSTANTIATE_TEST_SUITE_P(
    EnginesModelsNodes, SweepTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::ValuesIn(allModels),
                       ::testing::Values(2, 4, 6)),
    [](const auto &info) {
        int e = std::get<0>(info.param);
        PersistModel m = std::get<1>(info.param);
        int n = std::get<2>(info.param);
        return std::string(engineName(static_cast<Engine>(e))) + "_" +
               std::string(shortModelName(m)) + "_" +
               std::to_string(n) + "nodes";
    });

TEST_P(SweepTest, ConflictingWorkloadConvergesAndPersists)
{
    auto [engine_int, model, nodes] = GetParam();
    Engine engine = static_cast<Engine>(engine_int);

    sim::Simulator sim;
    ClusterConfig cfg;
    cfg.numNodes = nodes;
    cfg.numRecords = 16; // small DB to force conflicts
    auto cluster = makeCluster(sim, engine, cfg, model);

    DriverConfig dc;
    dc.requestsPerNode = 120;
    dc.workersPerNode = 2;
    dc.ycsb.numRecords = cfg.numRecords;

    RunResult res = runWorkload(sim, *cluster, dc);
    EXPECT_EQ(res.writes + res.reads,
              static_cast<std::uint64_t>(nodes) * 120u);
    EXPECT_GT(res.totalThroughput(), 0.0);

    for (Key k = 0; k < cfg.numRecords; ++k) {
        const kv::Record &ref = recordOf(*cluster, 0, k);
        for (int n = 0; n < nodes; ++n) {
            const kv::Record &rec =
                recordOf(*cluster, static_cast<NodeId>(n), k);
            // Convergence: identical replicas, all locks released.
            EXPECT_TRUE(rec.rdLockFree()) << "n=" << n << " k=" << k;
            EXPECT_FALSE(rec.wrLock) << "n=" << n << " k=" << k;
            EXPECT_EQ(rec.value, ref.value) << "n=" << n << " k=" << k;
            EXPECT_EQ(rec.volatileTs, ref.volatileTs)
                << "n=" << n << " k=" << k;
            // Durability: the newest value is durable at quiescence.
            if (!rec.volatileTs.isNone()) {
                auto db =
                    durableDbOf(*cluster, static_cast<NodeId>(n));
                auto it = db.find(k);
                ASSERT_NE(it, db.end()) << "n=" << n << " k=" << k;
                EXPECT_EQ(it->second.ts, rec.volatileTs)
                    << "n=" << n << " k=" << k;
            }
        }
    }
}

class OffloadWinsTest : public ::testing::TestWithParam<PersistModel>
{
};

INSTANTIATE_TEST_SUITE_P(AllModels, OffloadWinsTest,
                         ::testing::ValuesIn(allModels),
                         [](const auto &info) {
                             return std::string(
                                 shortModelName(info.param));
                         });

TEST_P(OffloadWinsTest, OffloadNeverSlowerThanBaseline)
{
    // Fig. 9/10 headline as a property: under identical configuration
    // and workload, MINOS-O's mean write latency must not exceed
    // MINOS-B's, and its throughput must not be lower.
    ClusterConfig cfg;
    cfg.numNodes = 5;
    cfg.numRecords = 512;
    DriverConfig dc;
    dc.requestsPerNode = 250;
    dc.workersPerNode = 5;
    dc.ycsb.numRecords = cfg.numRecords;

    sim::Simulator sb;
    ClusterB b(sb, cfg, GetParam());
    RunResult rb = runWorkload(sb, b, dc);

    sim::Simulator so;
    ClusterO o(so, cfg, GetParam());
    RunResult ro = runWorkload(so, o, dc);

    EXPECT_LE(ro.writeLat.mean(), rb.writeLat.mean())
        << shortModelName(GetParam());
    EXPECT_GE(ro.totalThroughput(), rb.totalThroughput())
        << shortModelName(GetParam());
}

TEST(Determinism, IdenticalRunsProduceIdenticalResults)
{
    // The simulator is fully deterministic: same seed, same config =>
    // bit-identical latency series on both engines.
    for (int engine : {0, 1}) {
        auto run = [&] {
            sim::Simulator sim;
            ClusterConfig cfg;
            cfg.numNodes = 4;
            cfg.numRecords = 64;
            auto cluster = makeCluster(sim, static_cast<Engine>(engine),
                                       cfg, PersistModel::Strict);
            DriverConfig dc;
            dc.requestsPerNode = 150;
            dc.workersPerNode = 3;
            dc.ycsb.numRecords = cfg.numRecords;
            return runWorkload(sim, *cluster, dc);
        };
        RunResult a = run();
        RunResult b = run();
        EXPECT_EQ(a.duration, b.duration) << "engine " << engine;
        EXPECT_EQ(a.writeLat.samples(), b.writeLat.samples())
            << "engine " << engine;
        EXPECT_EQ(a.readLat.samples(), b.readLat.samples())
            << "engine " << engine;
        EXPECT_EQ(a.obsoleteWrites, b.obsoleteWrites)
            << "engine " << engine;
    }
}

TEST(ModelSemantics, ReadEnforcedGatesReadsLongerThanEventual)
{
    // REnf holds the RDLock until the write is persisted everywhere
    // (reads imply durability); Event releases it at the consistency
    // point. Under a write-heavy conflicting load, REnf reads must
    // therefore stall longer.
    auto read_lat = [](PersistModel m) {
        sim::Simulator sim;
        ClusterConfig cfg;
        cfg.numNodes = 5;
        cfg.numRecords = 4; // hot keys: reads frequently hit RDLocks
        ClusterB cluster(sim, cfg, m);
        DriverConfig dc;
        dc.requestsPerNode = 300;
        dc.workersPerNode = 5;
        dc.ycsb.numRecords = cfg.numRecords;
        dc.ycsb.writeFraction = 0.8;
        return runWorkload(sim, cluster, dc).readLat.mean();
    };
    EXPECT_GT(read_lat(PersistModel::REnf),
              read_lat(PersistModel::Event));
}

TEST(YcsbWorkloadF, ReadModifyWriteRunsOnBothEngines)
{
    for (int engine : {0, 1}) {
        sim::Simulator sim;
        ClusterConfig cfg;
        cfg.numNodes = 3;
        cfg.numRecords = 32;
        auto cluster = makeCluster(sim, static_cast<Engine>(engine),
                                   cfg, PersistModel::Synch);
        DriverConfig dc;
        dc.requestsPerNode = 100;
        dc.workersPerNode = 2;
        dc.ycsb = workload::ycsbPreset('F');
        dc.ycsb.numRecords = cfg.numRecords;
        RunResult res = runWorkload(sim, *cluster, dc);
        // Every RMW contributes one read and one write.
        EXPECT_GT(res.writes, 0u);
        EXPECT_GT(res.reads, res.writes); // pure reads + RMW reads
        for (Key k = 0; k < cfg.numRecords; ++k) {
            const kv::Record &ref = recordOf(*cluster, 0, k);
            for (int n = 1; n < 3; ++n)
                EXPECT_EQ(recordOf(*cluster, n, k).volatileTs,
                          ref.volatileTs);
        }
    }
}

TEST(LeaderBaseline, ForwardedWritePaysRoundTrip)
{
    sim::Simulator sim;
    ClusterConfig cfg;
    cfg.numNodes = 3;
    cfg.numRecords = 8;
    ClusterLeader cluster(sim, cfg, PersistModel::Synch);

    struct P
    {
        static sim::Process
        run(ClusterLeader *c, OpStats *at_leader, OpStats *forwarded)
        {
            *at_leader = co_await c->clientWrite(0, 1, 10, 0);
            *forwarded = co_await c->clientWrite(2, 1, 20, 0);
        }
    };
    OpStats at_leader, forwarded;
    sim.spawn(P::run(&cluster, &at_leader, &forwarded));
    sim.run();
    // The forwarded write pays at least two extra one-way trips.
    EXPECT_GT(forwarded.latencyNs,
              at_leader.latencyNs + 2 * cfg.netLatencyNs);
    // And still replicates correctly.
    for (int n = 0; n < 3; ++n)
        EXPECT_EQ(cluster.node(n).record(1).value, 20u);
}

TEST(LeaderBaseline, LeaderlessOutperformsLeaderBased)
{
    ClusterConfig cfg;
    cfg.numNodes = 6;
    cfg.numRecords = 512;
    DriverConfig dc;
    dc.requestsPerNode = 200;
    dc.workersPerNode = 3;
    dc.ycsb.numRecords = cfg.numRecords;

    sim::Simulator s1;
    ClusterB leaderless(s1, cfg, PersistModel::Synch);
    RunResult rl = runWorkload(s1, leaderless, dc);

    sim::Simulator s2;
    ClusterLeader leader(s2, cfg, PersistModel::Synch);
    RunResult rb = runWorkload(s2, leader, dc);

    // §II-A: leaderless delivers higher performance and is scalable.
    EXPECT_GT(rl.writeThroughput(), rb.writeThroughput());
    EXPECT_LT(rl.writeLat.mean(), rb.writeLat.mean());
}
