/**
 * @file
 * Tests of the observability layer itself: flight-recorder ring
 * semantics, the zero-allocation record path (bench/sim_core.cc's
 * alloc-hook pattern), the text and Chrome trace-event exporters, the
 * metrics registry's JSON serialization, and metrics determinism across
 * identically-seeded runs of both protocol engines.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "kv/timestamp.hh"

#include "obs/chrome_trace.hh"
#include "obs/metrics.hh"
#include "obs/phase.hh"
#include "obs/recorder.hh"
#include "simproto/cluster_b.hh"
#include "simproto/driver.hh"
#include "snic/cluster_o.hh"

using namespace minos;
using namespace minos::obs;

// ---------------------------------------------------------------------------
// Allocation hook (same pattern as bench/sim_core.cc): global operator
// new/delete that count, so tests can pin "this region allocates zero
// times". Everything in this binary routes through these.

namespace {

std::uint64_t g_allocs = 0;

} // namespace

void *
operator new(std::size_t n)
{
    ++g_allocs;
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON syntax checker, enough to prove the
// exporters emit well-formed JSON without an external parser.

class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &s) : s_(s) {}

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == s_.size();
    }

  private:
    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    bool
    literal(const char *lit)
    {
        std::size_t n = std::string(lit).size();
        if (s_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    string()
    {
        if (pos_ >= s_.size() || s_[pos_] != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
            }
            ++pos_;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        std::size_t start = pos_;
        if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+'))
            ++pos_;
        bool digits = false;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '-' || s_[pos_] == '+')) {
            digits |= std::isdigit(static_cast<unsigned char>(s_[pos_]));
            ++pos_;
        }
        return digits && pos_ > start;
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (pos_ >= s_.size())
                return false;
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (pos_ >= s_.size())
                return false;
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    value()
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
        case '{':
            return object();
        case '[':
            return array();
        case '"':
            return string();
        case 't':
            return literal("true");
        case 'f':
            return literal("false");
        case 'n':
            return literal("null");
        default:
            return number();
        }
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

/** Extract every numeric value of @p key ("ts"/"pid") in order. */
std::vector<double>
numbersFor(const std::string &json, const std::string &key)
{
    std::vector<double> out;
    const std::string needle = "\"" + key + "\":";
    std::size_t pos = 0;
    while ((pos = json.find(needle, pos)) != std::string::npos) {
        pos += needle.size();
        out.push_back(std::strtod(json.c_str() + pos, nullptr));
    }
    return out;
}

// ---------------------------------------------------------------------------
// Flight-recorder ring semantics.

TEST(FlightRecorder, RecordsInOrder)
{
    FlightRecorder rec(16);
    rec.record(10, Category::Protocol, EventKind::InvFanout, 0, 7, 1);
    rec.record(20, Category::Message, EventKind::InvApplied, 1, 7, 1);
    rec.record(30, Category::Lock, EventKind::RdLockReleased, 2, 9, 2);
    auto events = rec.snapshot();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].kind, EventKind::InvFanout);
    EXPECT_EQ(events[1].kind, EventKind::InvApplied);
    EXPECT_EQ(events[2].kind, EventKind::RdLockReleased);
    EXPECT_EQ(events[2].when, 30);
    EXPECT_EQ(events[2].node, 2);
    EXPECT_EQ(events[2].a0, 9);
}

TEST(FlightRecorder, RingOverwritesOldestAndCountsDropped)
{
    FlightRecorder rec(4);
    for (int i = 0; i < 10; ++i)
        rec.record(i, Category::Protocol, EventKind::InvFanout, 0, i, 0);
    auto events = rec.snapshot();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events.front().a0, 6); // oldest retained
    EXPECT_EQ(events.back().a0, 9);
    EXPECT_EQ(rec.recorded(), 10u);
    EXPECT_EQ(rec.dropped(), 6u);
}

TEST(FlightRecorder, CategoryFiltering)
{
    FlightRecorder rec(16);
    rec.setEnabled(Category::Message, false);
    rec.record(1, Category::Message, EventKind::InvApplied, 0);
    rec.record(2, Category::Protocol, EventKind::InvFanout, 0);
    auto events = rec.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, EventKind::InvFanout);
    EXPECT_FALSE(rec.enabled(Category::Message));
    EXPECT_TRUE(rec.enabled(Category::Protocol));
    EXPECT_EQ(rec.recorded(), 1u);
}

TEST(FlightRecorder, ClearResets)
{
    FlightRecorder rec(8);
    rec.record(1, Category::Protocol, EventKind::InvFanout, 0);
    rec.clear();
    EXPECT_TRUE(rec.snapshot().empty());
    EXPECT_EQ(rec.recorded(), 0u);
}

TEST(FlightRecorder, SortedSnapshotOrdersRetroactiveSpans)
{
    FlightRecorder rec(16);
    // recordSpan lays SpanBegin retroactively: insertion order is not
    // chronological, the sorted snapshot must be.
    rec.record(50, Category::Protocol, EventKind::InvFanout, 0);
    rec.record(10, Category::Phase, EventKind::SpanBegin, 0, 0, 1);
    rec.record(60, Category::Phase, EventKind::SpanEnd, 0, 0, 1);
    auto sorted = rec.sortedSnapshot();
    ASSERT_EQ(sorted.size(), 3u);
    EXPECT_EQ(sorted[0].when, 10);
    EXPECT_EQ(sorted[1].when, 50);
    EXPECT_EQ(sorted[2].when, 60);
}

TEST(FlightRecorder, RecordPathNeverAllocates)
{
    FlightRecorder rec(64);
    rec.setEnabled(Category::Message, false);
    std::uint64_t before = g_allocs;
    // Enabled category: POD store into the preallocated ring.
    for (int i = 0; i < 1000; ++i)
        rec.record(i, Category::Protocol, EventKind::InvFanout, 0, i,
                   i);
    // Disabled category: one load + branch.
    for (int i = 0; i < 1000; ++i)
        rec.record(i, Category::Message, EventKind::InvApplied, 0, i,
                   i);
    EXPECT_EQ(g_allocs, before) << "record() touched the allocator";
    EXPECT_EQ(rec.recorded(), 1000u);
}

// ---------------------------------------------------------------------------
// Exporters.

TEST(TextExport, RendersReadableLines)
{
    FlightRecorder rec(8);
    rec.record(150, Category::Fifo, EventKind::VfifoSkipped, 3, 12,
               static_cast<std::int64_t>(kv::Timestamp{5, 1}.pack()));
    std::string out = rec.str();
    EXPECT_NE(out.find("150ns"), std::string::npos) << out;
    EXPECT_NE(out.find("[fifo]"), std::string::npos) << out;
    EXPECT_NE(out.find("node 3"), std::string::npos) << out;
    EXPECT_NE(out.find("vFIFO skipped"), std::string::npos) << out;
}

TEST(ChromeTrace, RoundTripsThroughJsonChecker)
{
    FlightRecorder rec(64);
    rec.record(2000, Category::Protocol, EventKind::InvFanout, 0, 7, 1);
    rec.record(1000, Category::Phase, EventKind::SpanBegin, 1,
               static_cast<std::int64_t>(Phase::Persist), 42);
    rec.record(3000, Category::Phase, EventKind::SpanEnd, 1,
               static_cast<std::int64_t>(Phase::Persist), 42);
    rec.record(4000, Category::Fifo, EventKind::FifoDepth, -1, 0, 3);

    std::string json = chromeTraceJson(rec);
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);

    // Tick-ordered: the ts sequence of the non-metadata events is
    // non-decreasing even though SpanBegin was recorded out of order.
    auto ts = numbersFor(json, "ts");
    ASSERT_GE(ts.size(), 4u);
    for (std::size_t i = 1; i < ts.size(); ++i)
        EXPECT_LE(ts[i - 1], ts[i]) << json;

    // Node tracks: pid 0 and 1 for the nodes, the global track for
    // node -1, and a process_name metadata event per track.
    auto pids = numbersFor(json, "pid");
    EXPECT_NE(std::find(pids.begin(), pids.end(), 0.0), pids.end());
    EXPECT_NE(std::find(pids.begin(), pids.end(), 1.0), pids.end());
    EXPECT_NE(json.find("process_name"), std::string::npos);
    EXPECT_NE(json.find("\"global\""), std::string::npos);
    EXPECT_NE(json.find("\"node 1\""), std::string::npos);

    // Spans become async begin/end pairs carrying the txn token as id.
    EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
    EXPECT_NE(json.find("\"id\":42"), std::string::npos);
    EXPECT_NE(json.find("\"persist\""), std::string::npos);
}

TEST(ChromeTrace, EmptyRecorderIsStillValidJson)
{
    FlightRecorder rec(4);
    std::string json = chromeTraceJson(rec);
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
}

// ---------------------------------------------------------------------------
// Metrics registry.

TEST(MetricsRegistry, SerializesAllThreeKinds)
{
    MetricsRegistry reg;
    EXPECT_TRUE(reg.empty());
    reg.counter("proto.invs_sent", 123);
    reg.gauge("run.tput", 2.5);
    stats::LatencySeries lat;
    lat.add(100);
    lat.add(300);
    reg.histogram("run.write_lat_ns", lat);
    EXPECT_FALSE(reg.empty());

    std::string json = reg.json();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"proto.invs_sent\":123"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"run.tput\":2.5"), std::string::npos) << json;
    EXPECT_NE(json.find("\"run.write_lat_ns\""), std::string::npos);
    EXPECT_NE(json.find("\"count\":2"), std::string::npos) << json;
    EXPECT_NE(json.find("\"mean\":200"), std::string::npos) << json;
    EXPECT_NE(json.find("\"p50\":"), std::string::npos) << json;
    EXPECT_NE(json.find("\"p95\":"), std::string::npos) << json;
    EXPECT_NE(json.find("\"p99\":300"), std::string::npos) << json;

    reg.clear();
    EXPECT_TRUE(reg.empty());
}

TEST(MetricsRegistry, JsonEscapesNames)
{
    MetricsRegistry reg;
    reg.counter("weird\"name\\with\ncontrol", 1);
    std::string json = reg.json();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("weird\\\"name\\\\with\\n"), std::string::npos)
        << json;
}

TEST(MetricsRegistry, PhaseStatsRegisterAsHistograms)
{
    WritePhaseStats phases;
    phases.add(Phase::LockWait, 100);
    phases.add(Phase::Val, 50);
    MetricsRegistry reg;
    phases.registerInto(reg, "run.");
    std::string json = reg.json();
    EXPECT_NE(json.find("\"run.phase.lock-wait.ns\""),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"run.phase.val.ns\""), std::string::npos);
    // Empty phases are not published.
    EXPECT_EQ(json.find("\"run.phase.persist.ns\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Determinism: two identically-seeded runs serialize byte-identically.

std::string
runToMetricsJson(bool offload)
{
    simproto::ClusterConfig cfg;
    cfg.numNodes = 3;
    cfg.numRecords = 64;

    simproto::DriverConfig dc;
    dc.requestsPerNode = 80;
    dc.workersPerNode = 2;
    dc.ycsb.numRecords = cfg.numRecords;
    dc.ycsb.writeFraction = 0.5;
    dc.ycsb.seed = 7;

    obs::WritePhaseStats phases;
    cfg.phases = &phases;

    sim::Simulator sim;
    simproto::RunResult res;
    simproto::NodeCounters aggregate;
    if (offload) {
        snic::ClusterO cluster(sim, cfg,
                               simproto::PersistModel::Synch);
        res = simproto::runWorkload(sim, cluster, dc);
        for (int n = 0; n < cfg.numNodes; ++n)
            aggregate += cluster.node(n).counters();
    } else {
        simproto::ClusterB cluster(sim, cfg,
                                   simproto::PersistModel::Synch);
        res = simproto::runWorkload(sim, cluster, dc);
        for (int n = 0; n < cfg.numNodes; ++n)
            aggregate += cluster.node(n).counters();
    }

    MetricsRegistry reg;
    simproto::registerRunMetrics(reg, "run.", res);
    aggregate.registerInto(reg, "proto.");
    phases.registerInto(reg, "run.");
    return reg.json();
}

TEST(Determinism, IdenticalSeedsYieldByteIdenticalMetricsJsonB)
{
    std::string a = runToMetricsJson(/*offload=*/false);
    std::string b = runToMetricsJson(/*offload=*/false);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

TEST(Determinism, IdenticalSeedsYieldByteIdenticalMetricsJsonO)
{
    std::string a = runToMetricsJson(/*offload=*/true);
    std::string b = runToMetricsJson(/*offload=*/true);
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

} // namespace
