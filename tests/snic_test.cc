/**
 * @file
 * Integration tests of the MINOS-O SmartNIC engine: FIFO semantics,
 * protocol correctness across all five models and all ablation
 * configurations, and the headline B-vs-O performance shape.
 */

#include <gtest/gtest.h>

#include "simproto/cluster_b.hh"
#include "simproto/driver.hh"
#include "snic/cluster_o.hh"

using namespace minos;
using namespace minos::simproto;
using minos::snic::ClusterO;
using minos::snic::NodeO;
using kv::Key;
using kv::NodeId;
using kv::Timestamp;
using kv::Value;

namespace {

ClusterConfig
smallConfig(int nodes = 3, std::uint64_t records = 64)
{
    ClusterConfig cfg;
    cfg.numNodes = nodes;
    cfg.numRecords = records;
    return cfg;
}

sim::Process
doWrite(DdpCluster *c, NodeId n, Key k, Value v, OpStats *out)
{
    *out = co_await c->clientWrite(n, k, v, 0);
}

sim::Process
writeThenRemoteRead(DdpCluster *c, NodeId wr, NodeId rd, Key k, Value v,
                    OpStats *w_out, OpStats *r_out)
{
    *w_out = co_await c->clientWrite(wr, k, v, 0);
    *r_out = co_await c->clientRead(rd, k);
}

void
expectConvergedO(ClusterO &cluster, Key k)
{
    const kv::Record &ref = cluster.node(0).record(k);
    for (int n = 0; n < cluster.numNodes(); ++n) {
        const kv::Record &rec =
            cluster.node(static_cast<NodeId>(n)).record(k);
        EXPECT_TRUE(rec.rdLockFree()) << "node " << n << " key " << k;
        EXPECT_EQ(rec.value, ref.value) << "node " << n << " key " << k;
        EXPECT_EQ(rec.volatileTs, ref.volatileTs)
            << "node " << n << " key " << k;
        EXPECT_EQ(rec.glbVolatileTs, rec.volatileTs)
            << "node " << n << " key " << k;
    }
}

void
expectDurableO(ClusterO &cluster, Key k)
{
    for (int n = 0; n < cluster.numNodes(); ++n) {
        NodeO &node = cluster.node(static_cast<NodeId>(n));
        const kv::Record &rec = node.record(k);
        if (rec.volatileTs.isNone())
            continue;
        auto db = node.durableDb();
        auto it = db.find(k);
        ASSERT_NE(it, db.end()) << "node " << n << " key " << k;
        EXPECT_EQ(it->second.ts, rec.volatileTs)
            << "node " << n << " key " << k;
        EXPECT_EQ(it->second.value, rec.value)
            << "node " << n << " key " << k;
    }
}

} // namespace

class OModelTest : public ::testing::TestWithParam<PersistModel>
{
};

INSTANTIATE_TEST_SUITE_P(AllModels, OModelTest,
                         ::testing::ValuesIn(allModels),
                         [](const auto &info) {
                             return std::string(
                                 shortModelName(info.param));
                         });

TEST_P(OModelTest, SingleWriteReplicatesEverywhere)
{
    sim::Simulator sim;
    ClusterO cluster(sim, smallConfig(), GetParam());
    OpStats st;
    sim.spawn(doWrite(&cluster, 0, 7, 1234, &st));
    sim.run();
    EXPECT_FALSE(st.obsolete);
    EXPECT_GT(st.latencyNs, 0);
    for (int n = 0; n < 3; ++n)
        EXPECT_EQ(cluster.node(n).record(7).value, 1234u)
            << "node " << n;
    expectConvergedO(cluster, 7);
    expectDurableO(cluster, 7);
}

TEST_P(OModelTest, RemoteReadAfterWriteSeesValue)
{
    sim::Simulator sim;
    ClusterO cluster(sim, smallConfig(), GetParam());
    OpStats wr, rd;
    sim.spawn(writeThenRemoteRead(&cluster, 0, 2, 11, 777, &wr, &rd));
    sim.run();
    EXPECT_EQ(rd.value, 777u);
}

TEST_P(OModelTest, ConcurrentConflictingWritesConverge)
{
    sim::Simulator sim;
    ClusterO cluster(sim, smallConfig(), GetParam());
    constexpr int writers = 3;
    OpStats st[writers];
    for (int w = 0; w < writers; ++w)
        sim.spawn(doWrite(&cluster, static_cast<NodeId>(w), 9,
                          1000u + static_cast<Value>(w), &st[w]));
    sim.run();
    expectConvergedO(cluster, 9);
    expectDurableO(cluster, 9);
    for (int n = 0; n < 3; ++n)
        EXPECT_EQ(cluster.node(n).pendingTxns(), 0u) << "node " << n;
}

TEST_P(OModelTest, WorkloadRunConvergesAllKeys)
{
    sim::Simulator sim;
    ClusterConfig cfg = smallConfig(3, 32);
    ClusterO cluster(sim, cfg, GetParam());

    DriverConfig dc;
    dc.requestsPerNode = 200;
    dc.workersPerNode = 3;
    dc.ycsb.numRecords = cfg.numRecords;

    RunResult res = runWorkload(sim, cluster, dc);
    EXPECT_EQ(res.writes + res.reads, 600u);
    for (Key k = 0; k < cfg.numRecords; ++k) {
        expectConvergedO(cluster, k);
        expectDurableO(cluster, k);
    }
    for (int n = 0; n < 3; ++n)
        EXPECT_EQ(cluster.node(n).pendingTxns(), 0u) << "node " << n;
}

TEST_P(OModelTest, HotSingleKeyWorkloadConverges)
{
    sim::Simulator sim;
    ClusterConfig cfg = smallConfig(3, 1);
    ClusterO cluster(sim, cfg, GetParam());
    DriverConfig dc;
    dc.requestsPerNode = 100;
    dc.workersPerNode = 3;
    dc.ycsb.numRecords = 1;
    dc.ycsb.writeFraction = 1.0;
    RunResult res = runWorkload(sim, cluster, dc);
    EXPECT_EQ(res.writes, 300u);
    expectConvergedO(cluster, 0);
    expectDurableO(cluster, 0);
}

/** All four batching x broadcast combinations stay correct. */
class OAblationTest
    : public ::testing::TestWithParam<std::tuple<bool, bool>>
{
};

INSTANTIATE_TEST_SUITE_P(
    Options, OAblationTest,
    ::testing::Combine(::testing::Bool(), ::testing::Bool()),
    [](const auto &info) {
        return std::string(std::get<0>(info.param) ? "batch" : "nobatch") +
               (std::get<1>(info.param) ? "_bcast" : "_nobcast");
    });

TEST_P(OAblationTest, ProtocolCorrectUnderAllFabricOptions)
{
    auto [batching, broadcast] = GetParam();
    sim::Simulator sim;
    ClusterConfig cfg = smallConfig(4, 16);
    OffloadOptions opts;
    opts.offload = true;
    opts.batching = batching;
    opts.broadcast = broadcast;
    ClusterO cluster(sim, cfg, PersistModel::Synch, opts);

    DriverConfig dc;
    dc.requestsPerNode = 100;
    dc.workersPerNode = 2;
    dc.ycsb.numRecords = cfg.numRecords;
    RunResult res = runWorkload(sim, cluster, dc);
    EXPECT_EQ(res.writes + res.reads, 400u);
    for (Key k = 0; k < cfg.numRecords; ++k)
        expectConvergedO(cluster, k);
}

TEST(ClusterOvsB, OffloadReducesWriteLatency)
{
    // The headline result (Fig. 9): MINOS-O cuts write latency by
    // roughly 2-3x over MINOS-B.
    ClusterConfig cfg;
    cfg.numNodes = 5;
    cfg.numRecords = 1024;

    DriverConfig dc;
    dc.requestsPerNode = 300;
    dc.workersPerNode = 5;
    dc.ycsb.numRecords = cfg.numRecords;

    sim::Simulator simB;
    ClusterB b(simB, cfg, PersistModel::Synch);
    RunResult rb = runWorkload(simB, b, dc);

    sim::Simulator simO;
    ClusterO o(simO, cfg, PersistModel::Synch);
    RunResult ro = runWorkload(simO, o, dc);

    EXPECT_GT(rb.writeLat.mean(), ro.writeLat.mean() * 1.5)
        << "B " << rb.writeLat.mean() << " O " << ro.writeLat.mean();
    EXPECT_GT(ro.totalThroughput(), rb.totalThroughput());
}

TEST(ClusterOvsB, OffloadLessSensitiveToPersistencyModel)
{
    // Fig. 9: MINOS-O is much less sensitive to the persistency model
    // than MINOS-B. The contrast appears at the paper's scale (5 nodes,
    // 5 busy cores) where host-core queueing amplifies B's critical-path
    // persists.
    ClusterConfig cfg;
    cfg.numNodes = 5;
    cfg.numRecords = 1024;
    DriverConfig dc;
    dc.requestsPerNode = 300;
    dc.workersPerNode = 5;
    dc.ycsb.numRecords = cfg.numRecords;

    auto spread = [&](auto make_cluster) {
        double lo = 1e18, hi = 0;
        for (PersistModel m :
             {PersistModel::Synch, PersistModel::Strict,
              PersistModel::Event}) {
            sim::Simulator sim;
            auto cluster = make_cluster(sim, m);
            RunResult r = runWorkload(sim, *cluster, dc);
            lo = std::min(lo, r.writeLat.mean());
            hi = std::max(hi, r.writeLat.mean());
        }
        return hi / lo;
    };

    double spread_b = spread([&](sim::Simulator &sim, PersistModel m) {
        return std::make_unique<ClusterB>(sim, cfg, m);
    });
    double spread_o = spread([&](sim::Simulator &sim, PersistModel m) {
        return std::make_unique<ClusterO>(sim, cfg, m);
    });
    EXPECT_LT(spread_o, spread_b);
}

TEST(Fifo, VFifoSkipsObsoleteEntries)
{
    sim::Simulator sim;
    ClusterConfig cfg = smallConfig();
    ClusterO cluster(sim, cfg, PersistModel::Synch);
    // Drive concurrent conflicting writes so out-of-order entries occur;
    // the store must never go backward in timestamp.
    DriverConfig dc;
    dc.requestsPerNode = 120;
    dc.workersPerNode = 3;
    dc.ycsb.numRecords = 2;
    dc.ycsb.writeFraction = 1.0;
    runWorkload(sim, cluster, dc);
    for (Key k = 0; k < 2; ++k)
        expectConvergedO(cluster, k);
    // At least one node must have skipped an obsolete vFIFO entry or
    // cut an obsolete INV short under this much conflict.
    std::uint64_t skipped = 0;
    for (int n = 0; n < 3; ++n) {
        skipped += cluster.node(n).vfifo().skippedObsolete();
        skipped += cluster.node(n).obsoleteInvs();
    }
    EXPECT_GT(skipped, 0u);
}

TEST(Fifo, TinyFifoStillCorrect)
{
    // Fig. 13: a 1-entry FIFO is slower but must stay correct.
    sim::Simulator sim;
    ClusterConfig cfg = smallConfig(3, 16);
    cfg.vfifoEntries = 1;
    cfg.dfifoEntries = 1;
    ClusterO cluster(sim, cfg, PersistModel::Synch);
    DriverConfig dc;
    dc.requestsPerNode = 100;
    dc.workersPerNode = 3;
    dc.ycsb.numRecords = cfg.numRecords;
    RunResult res = runWorkload(sim, cluster, dc);
    EXPECT_EQ(res.writes + res.reads, 300u);
    for (Key k = 0; k < cfg.numRecords; ++k)
        expectConvergedO(cluster, k);
}

TEST(Fifo, UnlimitedFifoNotSlowerThanTiny)
{
    auto mean_with_size = [](int entries) {
        sim::Simulator sim;
        ClusterConfig cfg;
        cfg.numNodes = 5;
        cfg.numRecords = 64;
        cfg.vfifoEntries = entries;
        cfg.dfifoEntries = entries;
        ClusterO cluster(sim, cfg, PersistModel::Synch);
        DriverConfig dc;
        dc.requestsPerNode = 200;
        dc.workersPerNode = 5;
        dc.ycsb.numRecords = cfg.numRecords;
        return runWorkload(sim, cluster, dc).writeLat.mean();
    };
    double tiny = mean_with_size(1);
    double unlimited = mean_with_size(0);
    EXPECT_LE(unlimited, tiny * 1.05);
}

TEST(ScopeO, PersistScopeFlushesScope)
{
    sim::Simulator sim;
    ClusterConfig cfg = smallConfig();
    ClusterO cluster(sim, cfg, PersistModel::Scope);
    struct Scoped
    {
        static sim::Process
        run(ClusterO *c, OpStats *out)
        {
            net::ScopeId sc = 0x99;
            co_await c->clientWrite(0, 1, 10, sc);
            co_await c->clientWrite(0, 2, 20, sc);
            *out = co_await c->persistScope(0, sc);
        }
    };
    OpStats ps;
    sim.spawn(Scoped::run(&cluster, &ps));
    sim.run();
    EXPECT_GT(ps.latencyNs, 0);
    expectDurableO(cluster, 1);
    expectDurableO(cluster, 2);
}

namespace {

/** Determinism fingerprint of a seeded MINOS-O run. */
struct RunFingerprintO
{
    std::uint64_t eventsExecuted;
    Tick completionTick;
    std::uint64_t writeDigest;
    std::uint64_t readDigest;
    std::uint64_t writes, reads;

    bool operator==(const RunFingerprintO &) const = default;
};

RunFingerprintO
runSeededO(PersistModel model)
{
    sim::Simulator sim;
    ClusterConfig cfg = smallConfig(3, 32);
    ClusterO cluster(sim, cfg, model);
    DriverConfig dc;
    dc.requestsPerNode = 300;
    dc.workersPerNode = 3;
    dc.ycsb.numRecords = cfg.numRecords;
    dc.ycsb.seed = 2024;
    RunResult res = runWorkload(sim, cluster, dc);
    return {sim.eventsExecuted(), sim.now(), res.writeLat.digest(),
            res.readLat.digest(), res.writes, res.reads};
}

} // namespace

TEST_P(OModelTest, SeededRunsAreDeterministic)
{
    // Same guard as the MINOS-B variant, through the SmartNIC engine
    // (vFIFO/dFIFO drain loops are heavy ready-ring users).
    RunFingerprintO a = runSeededO(GetParam());
    RunFingerprintO b = runSeededO(GetParam());
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    EXPECT_EQ(a.completionTick, b.completionTick);
    EXPECT_TRUE(a == b);
}
