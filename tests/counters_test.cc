/**
 * @file
 * Message-complexity properties via the protocol counters: the paper's
 * algorithms have a precise per-write message budget (one INV + one VAL
 * per follower from the coordinator; one ACK-family response per
 * follower), which must hold exactly in conflict-free runs.
 */

#include <gtest/gtest.h>

#include "simproto/cluster_b.hh"
#include "simproto/driver.hh"
#include "snic/cluster_o.hh"

using namespace minos;
using namespace minos::simproto;
using kv::NodeId;

namespace {

sim::Process
nWrites(DdpCluster *c, NodeId node, int n)
{
    for (int i = 0; i < n; ++i)
        co_await c->clientWrite(node, static_cast<kv::Key>(i), 1, 0);
}

} // namespace

TEST(Counters, BaselineMessageBudgetPerWrite)
{
    sim::Simulator sim;
    ClusterConfig cfg;
    cfg.numNodes = 4;
    cfg.numRecords = 64;
    ClusterB cluster(sim, cfg, PersistModel::Synch);

    constexpr int writes = 20;
    sim.spawn(nWrites(&cluster, 0, writes)); // distinct keys: no conflict
    sim.run();

    const NodeCounters &coord = cluster.node(0).counters();
    EXPECT_EQ(coord.writesCoordinated, writes);
    EXPECT_EQ(coord.writesObsoleteCut, 0u);
    // <Lin,Synch>: per write, (N-1) INVs and (N-1) VALs out, (N-1) ACKs
    // back in.
    EXPECT_EQ(coord.invsSent, writes * 3u);
    EXPECT_EQ(coord.valsSent, writes * 3u);
    EXPECT_EQ(coord.acksReceived, writes * 3u);
    EXPECT_EQ(coord.persists, writes);

    for (int n = 1; n < 4; ++n) {
        const NodeCounters &f = cluster.node(n).counters();
        EXPECT_EQ(f.invsReceived, writes) << "node " << n;
        EXPECT_EQ(f.acksSent, writes) << "node " << n;
        EXPECT_EQ(f.valsReceived, writes) << "node " << n;
        EXPECT_EQ(f.invsObsolete, 0u) << "node " << n;
        EXPECT_EQ(f.persists, writes) << "node " << n;
        // Each INV snatches the (free) RDLock once.
        EXPECT_EQ(f.rdLockSnatches, writes) << "node " << n;
    }
}

TEST(Counters, StrictDoublesTheAckBudget)
{
    sim::Simulator sim;
    ClusterConfig cfg;
    cfg.numNodes = 3;
    cfg.numRecords = 64;
    ClusterB cluster(sim, cfg, PersistModel::Strict);
    constexpr int writes = 10;
    sim.spawn(nWrites(&cluster, 0, writes));
    sim.run();
    // Strict: each follower sends ACK_C and ACK_P per write.
    EXPECT_EQ(cluster.node(0).counters().acksReceived, writes * 2u * 2u);
    // And the coordinator sends VAL_C + VAL_P fan-outs.
    EXPECT_EQ(cluster.node(0).counters().valsSent, writes * 2u * 2u);
}

TEST(Counters, EventSkipsPersistencyMessages)
{
    sim::Simulator sim;
    ClusterConfig cfg;
    cfg.numNodes = 3;
    cfg.numRecords = 64;
    ClusterB cluster(sim, cfg, PersistModel::Event);
    constexpr int writes = 10;
    sim.spawn(nWrites(&cluster, 0, writes));
    sim.run();
    // Event: single ACK_C per follower per write; persists still happen
    // (in the background) on every node.
    EXPECT_EQ(cluster.node(0).counters().acksReceived, writes * 2u);
    EXPECT_EQ(cluster.node(0).counters().valsSent, writes * 2u);
    for (int n = 0; n < 3; ++n)
        EXPECT_EQ(cluster.node(n).counters().persists, writes)
            << "node " << n;
}

TEST(Counters, OffloadEngineCountsTheSameProtocolWork)
{
    sim::Simulator sim;
    ClusterConfig cfg;
    cfg.numNodes = 4;
    cfg.numRecords = 64;
    snic::ClusterO cluster(sim, cfg, PersistModel::Synch);
    constexpr int writes = 15;
    sim.spawn(nWrites(&cluster, 0, writes));
    sim.run();
    const auto &coord = cluster.node(0).counters();
    EXPECT_EQ(coord.writesCoordinated, writes);
    EXPECT_EQ(coord.invsSent, writes * 3u);
    EXPECT_EQ(coord.acksReceived, writes * 3u);
    for (int n = 1; n < 4; ++n) {
        EXPECT_EQ(cluster.node(n).counters().invsReceived, writes)
            << "node " << n;
        EXPECT_EQ(cluster.node(n).counters().acksSent, writes)
            << "node " << n;
    }
}

TEST(Counters, AggregationAndRendering)
{
    NodeCounters a, b;
    a.invsSent = 3;
    a.persists = 1;
    b.invsSent = 2;
    b.acksReceived = 7;
    a += b;
    EXPECT_EQ(a.invsSent, 5u);
    EXPECT_EQ(a.acksReceived, 7u);
    EXPECT_EQ(a.persists, 1u);
    std::string s = a.str();
    EXPECT_NE(s.find("INV 5"), std::string::npos);
    EXPECT_NE(s.find("persists 1"), std::string::npos);
}
