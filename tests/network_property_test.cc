/**
 * @file
 * Property-style tests of the fabric timing models: invariants that
 * must hold for arbitrary traffic patterns (monotonic arrivals,
 * bandwidth conservation, stage serialization), driven by randomized
 * but seeded workloads.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "sim/network.hh"
#include "sim/simulator.hh"

using namespace minos;
using namespace minos::sim;

class LinkPropertyTest : public ::testing::TestWithParam<std::uint64_t>
{
};

INSTANTIATE_TEST_SUITE_P(Seeds, LinkPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 7u, 42u));

TEST_P(LinkPropertyTest, ArrivalsAreMonotonicAndConserveBandwidth)
{
    Simulator sim;
    Rng rng(GetParam());
    const Tick latency = rng.nextInt(0, 1000);
    const double bw = 1e9 * static_cast<double>(rng.nextInt(1, 10));
    const Tick overhead = rng.nextInt(0, 400);
    Link link(sim, latency, bw, overhead);

    Tick prev_arrival = 0;
    Tick total_ser = 0;
    const int msgs = 500;
    for (int i = 0; i < msgs; ++i) {
        auto bytes = rng.nextUint(4096) + 1;
        Tick earliest = rng.nextInt(0, 50); // still >= now (= 0)
        Tick arrival = link.transferFrom(earliest, bytes);
        // Arrivals on one link never reorder.
        EXPECT_GE(arrival, prev_arrival);
        // Each message takes at least overhead + serialization + latency.
        Tick ser = overhead + serializationDelay(bytes, bw);
        EXPECT_GE(arrival, earliest + ser + latency);
        prev_arrival = arrival;
        total_ser += ser;
    }
    // Bandwidth conservation: the link was busy at least the sum of all
    // serialization times.
    EXPECT_GE(link.busyUntil(), total_ser);
    EXPECT_EQ(link.messagesTransferred(),
              static_cast<std::uint64_t>(msgs));
}

TEST_P(LinkPropertyTest, SerialStageNeverOverlaps)
{
    Rng rng(GetParam());
    SerialStage stage;
    Tick prev_done = 0;
    Tick total_service = 0;
    for (int i = 0; i < 1000; ++i) {
        Tick earliest = rng.nextInt(0, 2000);
        Tick service = rng.nextInt(1, 300);
        Tick done = stage.occupyFrom(earliest, service);
        EXPECT_GE(done, earliest + service);
        EXPECT_GE(done, prev_done + service); // strictly serial
        prev_done = done;
        total_service += service;
    }
    EXPECT_GE(stage.busyUntil(), total_service);
}

TEST(LinkProperty, InfiniteBandwidthOnlyLatency)
{
    Simulator sim;
    Link link(sim, 250, 0.0);
    EXPECT_EQ(link.transfer(1 << 20), 250);
    EXPECT_EQ(link.transfer(1), 250); // no serialization to queue behind
}

TEST(ZipfianProperty, FrequencyDecreasesWithRank)
{
    Rng rng(99);
    ZipfianKeys keys(1000, 0.99);
    std::vector<int> counts(1000, 0);
    const int n = 500'000;
    for (int i = 0; i < n; ++i)
        counts[static_cast<std::size_t>(keys.nextRank(rng))]++;
    // Aggregate adjacent decades: each decade of ranks must draw fewer
    // samples than the previous one.
    auto decade = [&](int lo, int hi) {
        int sum = 0;
        for (int r = lo; r < hi; ++r)
            sum += counts[static_cast<std::size_t>(r)];
        return sum;
    };
    EXPECT_GT(decade(0, 10), decade(10, 100));
    EXPECT_GT(decade(10, 100), decade(100, 1000) / 2);
    // Rank 0 is the single hottest rank.
    for (int r = 1; r < 1000; ++r)
        EXPECT_GE(counts[0], counts[static_cast<std::size_t>(r)])
            << "rank " << r;
}

TEST(CorePoolProperty, ThroughputBoundedByCores)
{
    // N cores, J jobs of C ticks each: the makespan can never beat
    // ceil(J/N)*C and never exceed J*C.
    for (int cores : {1, 2, 4, 8}) {
        Simulator sim;
        CorePool pool(sim, cores);
        const int jobs = 37;
        const Tick cost = 100;
        int done = 0;
        struct Worker
        {
            static Process
            run(CorePool *pool, Tick cost, int *done)
            {
                co_await pool->compute(cost);
                ++*done;
            }
        };
        for (int j = 0; j < jobs; ++j)
            sim.spawn(Worker::run(&pool, cost, &done));
        sim.run();
        EXPECT_EQ(done, jobs);
        Tick lower = (jobs + cores - 1) / cores * cost;
        EXPECT_GE(sim.now(), lower) << cores << " cores";
        EXPECT_LE(sim.now(), static_cast<Tick>(jobs) * cost)
            << cores << " cores";
    }
}
