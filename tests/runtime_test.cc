/**
 * @file
 * Unit tests for the loopback fabric and the recovery control plane.
 */

#include <gtest/gtest.h>

#include <thread>

#include "recovery/ctrl.hh"
#include "runtime/fabric.hh"

using namespace minos;
using namespace minos::runtime;
using namespace minos::recovery;

TEST(Envelope, DstAndSrcExtraction)
{
    net::Message m;
    m.src = 1;
    m.dst = 2;
    Envelope pe = m;
    EXPECT_EQ(envelopeSrc(pe), 1);
    EXPECT_EQ(envelopeDst(pe), 2);

    CtrlMsg c;
    c.src = 3;
    c.dst = 0;
    Envelope ce = c;
    EXPECT_EQ(envelopeSrc(ce), 3);
    EXPECT_EQ(envelopeDst(ce), 0);
}

TEST(FabricBasic, FifoPerDestination)
{
    Fabric fabric(2, std::chrono::nanoseconds(0));
    for (int i = 0; i < 5; ++i) {
        net::Message m;
        m.src = 0;
        m.dst = 1;
        m.key = static_cast<kv::Key>(i);
        fabric.send(m);
    }
    for (int i = 0; i < 5; ++i) {
        auto env = fabric.poll(1);
        ASSERT_TRUE(env.has_value());
        EXPECT_EQ(std::get<net::Message>(*env).key,
                  static_cast<kv::Key>(i));
    }
    EXPECT_FALSE(fabric.poll(1).has_value());
}

TEST(FabricBasic, IndependentQueuesPerNode)
{
    Fabric fabric(3, std::chrono::nanoseconds(0));
    net::Message to1, to2;
    to1.src = 0;
    to1.dst = 1;
    to2.src = 0;
    to2.dst = 2;
    fabric.send(to1);
    fabric.send(to2);
    EXPECT_TRUE(fabric.poll(1).has_value());
    EXPECT_TRUE(fabric.poll(2).has_value());
    EXPECT_FALSE(fabric.poll(0).has_value());
}

TEST(FabricBasic, DownLinkDropsBothDirections)
{
    Fabric fabric(2, std::chrono::nanoseconds(0));
    fabric.setLinkUp(0, false);
    net::Message from0, to0;
    from0.src = 0;
    from0.dst = 1;
    to0.src = 1;
    to0.dst = 0;
    fabric.send(from0);
    fabric.send(to0);
    EXPECT_EQ(fabric.dropped(), 2u);
    EXPECT_FALSE(fabric.poll(1).has_value());
    EXPECT_FALSE(fabric.poll(0).has_value());
}

TEST(FabricBasic, LinkDownClearsQueuedTraffic)
{
    Fabric fabric(2, std::chrono::hours(1)); // never deliverable
    net::Message m;
    m.src = 0;
    m.dst = 1;
    fabric.send(m);
    fabric.setLinkUp(1, false);
    EXPECT_EQ(fabric.dropped(), 1u);
    fabric.setLinkUp(1, true);
    EXPECT_FALSE(fabric.poll(1).has_value());
}

TEST(FabricBasic, ConcurrentSendersAllDeliver)
{
    Fabric fabric(2, std::chrono::nanoseconds(0));
    constexpr int threads = 8, per_thread = 500;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&fabric] {
            for (int i = 0; i < per_thread; ++i) {
                net::Message m;
                m.src = 0;
                m.dst = 1;
                fabric.send(m);
            }
        });
    }
    for (auto &t : pool)
        t.join();
    int received = 0;
    while (fabric.poll(1).has_value())
        ++received;
    EXPECT_EQ(received, threads * per_thread);
}

TEST(Ctrl, DesignatedNodeIsLowestLive)
{
    EXPECT_EQ(designatedNode(0b111, 3), 0);
    EXPECT_EQ(designatedNode(0b110, 3), 1);
    EXPECT_EQ(designatedNode(0b100, 3), 2);
    EXPECT_EQ(designatedNode(0b000, 3), -1);
}

TEST(Ctrl, NodeBitHelpers)
{
    EXPECT_EQ(nodeBit(0), 1u);
    EXPECT_EQ(nodeBit(5), 32u);
    EXPECT_TRUE(isLive(0b101, 0));
    EXPECT_FALSE(isLive(0b101, 1));
    EXPECT_TRUE(isLive(0b101, 2));
}
