/**
 * @file
 * End-to-end tests of the online protocol auditors (obs/audit.hh).
 *
 * Three properties, mirroring how the paper validates its checkers:
 *
 *  1. Soundness on healthy engines: full workload runs of MINOS-B and
 *     MINOS-O under every persistency model audit clean.
 *  2. Sensitivity: each deliberate protocol mutation (ClusterConfig::
 *     MutationHooks) trips the auditor built to catch that class of
 *     bug, and the violation carries a non-empty causal trace.
 *  3. Non-perturbation: attaching the audit bundle leaves the simulated
 *     results bit-identical (auditors observe, they never feed back).
 */

#include <gtest/gtest.h>

#include <string>

#include "obs/audit.hh"
#include "obs/recorder.hh"
#include "simproto/cluster_b.hh"
#include "simproto/driver.hh"
#include "snic/cluster_o.hh"

using namespace minos;
using namespace minos::obs;
using namespace minos::simproto;

namespace {

struct AuditRun
{
    FlightRecorder recorder{1 << 15};
    AuditBundle audit;
    RunResult result;
};

/** Knobs for one audited run (defaults = a healthy small cluster). */
struct RunOpts
{
    ClusterConfig::MutationHooks mutations{};
    int vfifoEntries = 5;
    /** Slow the durability path (exposes scope-flush races); 0 keeps
     *  the ClusterConfig default. */
    Tick persistNsPerKb = 0;
    int workersPerNode = 2;
    double writeFraction = 0.8;
};

/** Run a small closed-loop workload with the auditors attached. */
AuditRun
runAudited(bool offload, PersistModel model, const RunOpts &opts = {})
{
    AuditRun run;
    sim::Simulator sim;
    ClusterConfig cfg;
    cfg.numNodes = 3;
    cfg.numRecords = 16;
    cfg.vfifoEntries = opts.vfifoEntries;
    if (opts.persistNsPerKb > 0) {
        cfg.persistNsPerKb = opts.persistNsPerKb; // MINOS-B NVM
        cfg.dfifoWriteNs = opts.persistNsPerKb;   // MINOS-O durability
    }
    cfg.trace = &run.recorder;
    cfg.audit = &run.audit;
    cfg.mutations = opts.mutations;

    DriverConfig dc;
    dc.requestsPerNode = 80;
    dc.workersPerNode = opts.workersPerNode;
    dc.ycsb.numRecords = cfg.numRecords;
    dc.ycsb.writeFraction = opts.writeFraction;
    dc.ycsb.seed = 7;

    if (offload) {
        snic::ClusterO cluster(sim, cfg, model);
        run.result = runWorkload(sim, cluster, dc);
    } else {
        ClusterB cluster(sim, cfg, model);
        run.result = runWorkload(sim, cluster, dc);
    }
    run.audit.finish();
    return run;
}

/** True when some stored violation's rule id starts with @p prefix. */
bool
tripped(const AuditBundle &audit, const std::string &prefix)
{
    for (const Auditor *a : audit.auditors())
        for (const AuditViolation &v : a->violations())
            if (v.rule.rfind(prefix, 0) == 0)
                return true;
    return false;
}

/** Every stored violation must carry a rendered causal excerpt. */
void
expectTraces(const AuditBundle &audit)
{
    for (const Auditor *a : audit.auditors())
        for (const AuditViolation &v : a->violations())
            EXPECT_FALSE(v.trace.empty())
                << a->name() << " violation of " << v.rule
                << " has no causal trace: " << v.detail;
}

std::string
describe(bool offload, PersistModel model)
{
    return std::string(offload ? "MINOS-O" : "MINOS-B") + "/" +
           std::string(modelName(model));
}

} // namespace

// ---------------------------------------------------------------------
// 1. Soundness: healthy engines audit clean.
// ---------------------------------------------------------------------

class AuditModelTest : public ::testing::TestWithParam<PersistModel>
{
};

TEST_P(AuditModelTest, HealthyBaselineEngineAuditsClean)
{
    AuditRun run = runAudited(/*offload=*/false, GetParam());
    EXPECT_TRUE(run.audit.clean())
        << describe(false, GetParam()) << "\n"
        << run.audit.report();
    EXPECT_GT(run.audit.opsAudited(), 0u);
    EXPECT_GT(run.result.writes, 0u);
}

TEST_P(AuditModelTest, HealthyOffloadEngineAuditsClean)
{
    AuditRun run = runAudited(/*offload=*/true, GetParam());
    EXPECT_TRUE(run.audit.clean())
        << describe(true, GetParam()) << "\n"
        << run.audit.report();
    EXPECT_GT(run.audit.opsAudited(), 0u);
    EXPECT_GT(run.result.writes, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllModels, AuditModelTest,
                         ::testing::ValuesIn(allModels),
                         [](const auto &info) {
                             switch (info.param) {
                               case PersistModel::Synch:
                                 return "Synch";
                               case PersistModel::Strict:
                                 return "Strict";
                               case PersistModel::REnf:
                                 return "REnf";
                               case PersistModel::Event:
                                 return "Event";
                               case PersistModel::Scope:
                                 return "Scope";
                             }
                             return "Unknown";
                         });

// ---------------------------------------------------------------------
// 2. Sensitivity: each seeded mutation trips its auditor.
// ---------------------------------------------------------------------

TEST(AuditSensitivity, EarlyRdLockReleaseTripsConsistencyAuditor)
{
    for (bool offload : {false, true}) {
        SCOPED_TRACE(describe(offload, PersistModel::Synch));
        RunOpts opts;
        opts.mutations.releaseRdLockEarly = true;
        AuditRun run = runAudited(offload, PersistModel::Synch, opts);
        EXPECT_FALSE(run.audit.clean());
        EXPECT_TRUE(tripped(run.audit, "C3"))
            << run.audit.report(4);
        expectTraces(run.audit);
    }
}

TEST(AuditSensitivity, AckBeforePersistTripsPersistencyAuditor)
{
    // Strict has an explicit ACK_P that the mutated follower sends
    // before its dFIFO/NVM persist completes (breaks cond. 3a -> P1).
    for (bool offload : {false, true}) {
        SCOPED_TRACE(describe(offload, PersistModel::Strict));
        RunOpts opts;
        opts.mutations.ackBeforePersist = true;
        AuditRun run = runAudited(offload, PersistModel::Strict, opts);
        EXPECT_FALSE(run.audit.clean());
        EXPECT_TRUE(tripped(run.audit, "P1"))
            << run.audit.report(4);
        expectTraces(run.audit);
    }
}

TEST(AuditSensitivity, AckBeforePersistTripsScopeFlushRule)
{
    // Under <Lin, Scope> the same mutation acknowledges [PERSIST]sc
    // with scope entries still unflushed (breaks the scope rule P4).
    for (bool offload : {false, true}) {
        SCOPED_TRACE(describe(offload, PersistModel::Scope));
        RunOpts opts;
        opts.mutations.ackBeforePersist = true;
        // Slow durability so in-scope writes are genuinely unflushed
        // when the mutated follower acknowledges [PERSIST]sc; at the
        // default NVM speed the background persists win the race and
        // the skipped wait is invisible.
        opts.persistNsPerKb = 60'000;
        AuditRun run = runAudited(offload, PersistModel::Scope, opts);
        EXPECT_FALSE(run.audit.clean());
        EXPECT_TRUE(tripped(run.audit, "P4"))
            << run.audit.report(4);
        expectTraces(run.audit);
    }
}

TEST(AuditSensitivity, ShortPersistencyGateTripsPersistencyAuditor)
{
    // The coordinator fires its persistency gate one ACK_P short, so
    // glb_durableTS rises / VAL_P leaves before all ACK_Ps (P2/P6).
    for (bool offload : {false, true}) {
        SCOPED_TRACE(describe(offload, PersistModel::Strict));
        RunOpts opts;
        opts.mutations.dropOnePersistAck = true;
        AuditRun run = runAudited(offload, PersistModel::Strict, opts);
        EXPECT_FALSE(run.audit.clean());
        EXPECT_TRUE(tripped(run.audit, "P2") ||
                    tripped(run.audit, "P6"))
            << run.audit.report(4);
        expectTraces(run.audit);
    }
}

TEST(AuditSensitivity, DuplicateAckTripsConservationAuditor)
{
    for (bool offload : {false, true}) {
        SCOPED_TRACE(describe(offload, PersistModel::Synch));
        RunOpts opts;
        opts.mutations.duplicateAck = true;
        AuditRun run = runAudited(offload, PersistModel::Synch, opts);
        EXPECT_FALSE(run.audit.clean());
        EXPECT_TRUE(tripped(run.audit, "A2"))
            << run.audit.report(4);
        expectTraces(run.audit);
    }
}

TEST(AuditSensitivity, UncappedVfifoTripsFifoWatchdog)
{
    // MINOS-O only: with the admission bound ignored and a tiny vFIFO,
    // concurrent producers push the occupancy past the cap (F1).
    RunOpts opts;
    opts.mutations.ignoreFifoCap = true;
    opts.vfifoEntries = 1;
    opts.workersPerNode = 4;
    opts.writeFraction = 1.0;
    AuditRun run = runAudited(/*offload=*/true, PersistModel::Synch,
                              opts);
    EXPECT_FALSE(run.audit.clean());
    EXPECT_TRUE(tripped(run.audit, "F1")) << run.audit.report(4);
    expectTraces(run.audit);
}

// ---------------------------------------------------------------------
// 3. Non-perturbation: auditors observe, they never feed back.
// ---------------------------------------------------------------------

namespace {

struct Fingerprint
{
    std::uint64_t eventsExecuted = 0;
    Tick completionTick = 0;
    std::uint64_t writeDigest = 0;
    std::uint64_t writes = 0;
    std::uint64_t reads = 0;

    bool operator==(const Fingerprint &) const = default;
};

Fingerprint
fingerprint(bool offload, bool audited)
{
    FlightRecorder recorder{1 << 15};
    AuditBundle audit;
    sim::Simulator sim;
    ClusterConfig cfg;
    cfg.numNodes = 3;
    cfg.numRecords = 16;
    cfg.trace = &recorder;
    if (audited)
        cfg.audit = &audit;

    DriverConfig dc;
    dc.requestsPerNode = 120;
    dc.workersPerNode = 2;
    dc.ycsb.numRecords = cfg.numRecords;
    dc.ycsb.writeFraction = 0.8;
    dc.ycsb.seed = 11;

    RunResult res;
    if (offload) {
        snic::ClusterO cluster(sim, cfg, PersistModel::Strict);
        res = runWorkload(sim, cluster, dc);
    } else {
        ClusterB cluster(sim, cfg, PersistModel::Strict);
        res = runWorkload(sim, cluster, dc);
    }
    return {sim.eventsExecuted(), sim.now(), res.writeLat.digest(),
            res.writes, res.reads};
}

} // namespace

TEST(AuditPerturbation, AttachingAuditorsLeavesResultsBitIdentical)
{
    for (bool offload : {false, true}) {
        SCOPED_TRACE(offload ? "MINOS-O" : "MINOS-B");
        EXPECT_TRUE(fingerprint(offload, false) ==
                    fingerprint(offload, true));
    }
}

