/**
 * @file
 * Unit tests for the measurement helpers.
 */

#include <gtest/gtest.h>

#include "stats/stats.hh"

using namespace minos;
using namespace minos::stats;

TEST(LatencySeries, EmptySeriesIsZero)
{
    LatencySeries s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.p50(), 0);
    EXPECT_EQ(s.min(), 0);
    EXPECT_EQ(s.max(), 0);
}

TEST(LatencySeries, MeanMinMax)
{
    LatencySeries s;
    for (Tick t : {10, 20, 30, 40})
        s.add(t);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 25.0);
    EXPECT_EQ(s.min(), 10);
    EXPECT_EQ(s.max(), 40);
}

TEST(LatencySeries, Percentiles)
{
    LatencySeries s;
    for (Tick t = 1; t <= 100; ++t)
        s.add(101 - t); // insert descending to exercise the lazy sort
    EXPECT_EQ(s.p50(), 50);
    EXPECT_EQ(s.p99(), 99);
    EXPECT_EQ(s.percentile(100.0), 100);
    EXPECT_EQ(s.percentile(1.0), 1);
}

TEST(LatencySeries, MergeCombinesSamples)
{
    LatencySeries a, b;
    a.add(1);
    a.add(2);
    b.add(3);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Throughput, OpsPerSec)
{
    // 1000 ops in 1 ms of simulated time = 1M ops/s.
    EXPECT_DOUBLE_EQ(opsPerSec(1000, MS), 1e6);
    EXPECT_DOUBLE_EQ(opsPerSec(5, 0), 0.0);
}

TEST(Breakdown, Accumulates)
{
    Breakdown b;
    b.add(60.0, 40.0);
    b.add(80.0, 20.0);
    EXPECT_EQ(b.count, 2u);
    EXPECT_DOUBLE_EQ(b.meanComm(), 70.0);
    EXPECT_DOUBLE_EQ(b.meanComp(), 30.0);
    EXPECT_DOUBLE_EQ(b.meanTotal(), 100.0);
    EXPECT_DOUBLE_EQ(b.commFraction(), 0.7);
}

TEST(Breakdown, EmptyFractionIsZero)
{
    Breakdown b;
    EXPECT_DOUBLE_EQ(b.commFraction(), 0.0);
    EXPECT_DOUBLE_EQ(b.meanTotal(), 0.0);
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"model", "latency"});
    t.addRow({"<Lin,Synch>", "12.5"});
    t.addRow({"<Lin,Event>", "7"});
    std::string out = t.str();
    EXPECT_NE(out.find("model"), std::string::npos);
    EXPECT_NE(out.find("<Lin,Synch>"), std::string::npos);
    EXPECT_NE(out.find("12.5"), std::string::npos);
    // Header separator exists.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, FmtFixedPoint)
{
    EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

TEST(LogHistogram, BucketBoundaries)
{
    EXPECT_EQ(LogHistogram::bucketOf(0), 0);
    EXPECT_EQ(LogHistogram::bucketOf(1), 0);
    EXPECT_EQ(LogHistogram::bucketOf(2), 1);
    EXPECT_EQ(LogHistogram::bucketOf(3), 1);
    EXPECT_EQ(LogHistogram::bucketOf(4), 2);
    EXPECT_EQ(LogHistogram::bucketOf(1024), 10);
    EXPECT_EQ(LogHistogram::bucketLow(0), 0);
    EXPECT_EQ(LogHistogram::bucketLow(10), 1024);
}

TEST(LogHistogram, CountsAndMean)
{
    LogHistogram h;
    h.add(100);
    h.add(200);
    h.add(300);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 200.0);
    EXPECT_EQ(h.bucketCount(LogHistogram::bucketOf(100)), 1u);
}

TEST(LogHistogram, PercentileUpperBound)
{
    LogHistogram h;
    for (int i = 0; i < 99; ++i)
        h.add(100); // bucket [64, 128)
    h.add(100'000); // one outlier
    // p50 must sit in the 100ns bucket; p100 must cover the outlier.
    EXPECT_LT(h.percentileUpperBound(50.0), 256);
    EXPECT_GE(h.percentileUpperBound(100.0), 100'000);
    EXPECT_GE(h.percentileUpperBound(100.0),
              h.percentileUpperBound(50.0));
}

TEST(LogHistogram, EmptyIsZero)
{
    LogHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentileUpperBound(99.0), 0);
    EXPECT_TRUE(h.str().empty());
}

TEST(LogHistogram, MergeAddsBuckets)
{
    LogHistogram a, b;
    a.add(10);
    b.add(10);
    b.add(1000);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.bucketCount(LogHistogram::bucketOf(10)), 2u);
    EXPECT_EQ(a.bucketCount(LogHistogram::bucketOf(1000)), 1u);
}

TEST(LogHistogram, StrShowsNonEmptyBuckets)
{
    LogHistogram h;
    h.add(100);
    h.add(100);
    h.add(5000);
    std::string s = h.str();
    EXPECT_NE(s.find('#'), std::string::npos);
    EXPECT_NE(s.find("2"), std::string::npos);
}
