/**
 * @file
 * Unit tests for the discrete-event simulator core: event ordering,
 * coroutine processes, tasks, conditions, mailboxes, links, core pools.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/condition.hh"
#include "sim/network.hh"
#include "sim/process.hh"
#include "sim/simulator.hh"

using namespace minos;
using namespace minos::sim;

TEST(Simulator, StartsAtZero)
{
    Simulator sim;
    EXPECT_EQ(sim.now(), 0);
    EXPECT_EQ(sim.eventsExecuted(), 0u);
}

TEST(Simulator, ExecutesEventsInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(30, [&] { order.push_back(3); });
    sim.schedule(10, [&] { order.push_back(1); });
    sim.schedule(20, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, SameTickFifoOrder)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        sim.schedule(5, [&order, i] { order.push_back(i); });
    sim.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, NestedSchedulingAdvancesTime)
{
    Simulator sim;
    Tick seen = -1;
    sim.schedule(10, [&] {
        sim.after(15, [&] { seen = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(seen, 25);
}

TEST(Simulator, RunUntilStopsAtLimit)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(10, [&] { ++fired; });
    sim.schedule(100, [&] { ++fired; });
    EXPECT_FALSE(sim.runUntil(50));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), 50);
    EXPECT_TRUE(sim.runUntil(200));
    EXPECT_EQ(fired, 2);
}

namespace {

Process
delayProcess(Simulator &, Tick d, Tick *finished_at, Simulator *simp)
{
    co_await delay(d);
    *finished_at = simp->now();
}

} // namespace

TEST(Process, DelayAdvancesSimTime)
{
    Simulator sim;
    Tick finished = -1;
    sim.spawn(delayProcess(sim, 123, &finished, &sim));
    sim.run();
    EXPECT_EQ(finished, 123);
    EXPECT_EQ(sim.numLiveProcesses(), 0u);
}

namespace {

Process
chainedDelays(Simulator *simp, std::vector<Tick> *trace)
{
    for (int i = 0; i < 3; ++i) {
        co_await delay(10);
        trace->push_back(simp->now());
    }
}

} // namespace

TEST(Process, SequentialDelaysAccumulate)
{
    Simulator sim;
    std::vector<Tick> trace;
    sim.spawn(chainedDelays(&sim, &trace));
    sim.run();
    EXPECT_EQ(trace, (std::vector<Tick>{10, 20, 30}));
}

namespace {

Task<int>
subTask(Tick d)
{
    co_await delay(d);
    co_return 7;
}

Task<void>
voidSub(Tick d, int *out)
{
    co_await delay(d);
    *out += 1;
}

Process
taskCaller(Simulator *simp, int *result, Tick *t)
{
    int v = co_await subTask(40);
    *result = v;
    *t = simp->now();
    co_await voidSub(2, result);
}

} // namespace

TEST(Task, AwaitableSubroutinesReturnValues)
{
    Simulator sim;
    int result = 0;
    Tick t = -1;
    sim.spawn(taskCaller(&sim, &result, &t));
    sim.run();
    EXPECT_EQ(result, 8); // 7 from subTask, +1 from voidSub
    EXPECT_EQ(t, 40);
}

namespace {

Process
waiter(Condition *cond, bool *flag, Tick *woke_at, Simulator *simp)
{
    while (!*flag)
        co_await cond->wait();
    *woke_at = simp->now();
}

Process
notifier(Condition *cond, bool *flag)
{
    co_await delay(50);
    *flag = true;
    cond->notifyAll();
}

} // namespace

TEST(Condition, PredicateLoopWakesOnNotify)
{
    Simulator sim;
    Condition cond(sim);
    bool flag = false;
    Tick woke = -1;
    sim.spawn(waiter(&cond, &flag, &woke, &sim));
    sim.spawn(notifier(&cond, &flag));
    sim.run();
    EXPECT_EQ(woke, 50);
}

TEST(Condition, NotifyWithNoWaitersIsNoop)
{
    Simulator sim;
    Condition cond(sim);
    cond.notifyAll();
    sim.run();
    EXPECT_EQ(cond.numWaiters(), 0u);
}

namespace {

Process
producer(Mailbox<int> *mb)
{
    for (int i = 0; i < 5; ++i) {
        co_await delay(10);
        mb->send(i);
    }
}

Process
consumer(Mailbox<int> *mb, std::vector<int> *got)
{
    for (int i = 0; i < 5; ++i) {
        int v = co_await mb->recv();
        got->push_back(v);
    }
}

} // namespace

TEST(Mailbox, FifoDelivery)
{
    Simulator sim;
    Mailbox<int> mb(sim);
    std::vector<int> got;
    sim.spawn(consumer(&mb, &got));
    sim.spawn(producer(&mb));
    sim.run();
    EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Mailbox, SendBeforeRecvIsQueued)
{
    Simulator sim;
    Mailbox<int> mb(sim);
    mb.send(41);
    mb.send(42);
    EXPECT_EQ(mb.size(), 2u);
    std::vector<int> got;
    sim.spawn(consumer(&mb, &got)); // wants 5 items
    sim.spawn(producer(&mb));       // sends 5 more; consumer takes 5 total
    sim.run();
    ASSERT_GE(got.size(), 2u);
    EXPECT_EQ(got[0], 41);
    EXPECT_EQ(got[1], 42);
}

namespace {

Process
twoConsumers(Mailbox<int> *mb, std::vector<int> *got)
{
    int v = co_await mb->recv();
    got->push_back(v);
}

} // namespace

TEST(Mailbox, EachItemWakesExactlyOneReceiver)
{
    Simulator sim;
    Mailbox<int> mb(sim);
    std::vector<int> got;
    sim.spawn(twoConsumers(&mb, &got));
    sim.spawn(twoConsumers(&mb, &got));
    sim.schedule(5, [&] { mb.send(1); });
    sim.schedule(6, [&] { mb.send(2); });
    sim.run();
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(Simulator, TeardownReclaimsBlockedProcesses)
{
    // A process that waits forever must not leak when the simulator is
    // destroyed (ASan would catch the leak).
    auto sim = std::make_unique<Simulator>();
    Condition cond(*sim);
    bool flag = false;
    Tick woke = -1;
    sim->spawn(waiter(&cond, &flag, &woke, sim.get()));
    sim->run();
    EXPECT_EQ(sim->numLiveProcesses(), 1u);
    sim.reset(); // must destroy the suspended frame
    EXPECT_EQ(woke, -1);
}

TEST(Link, UncontendedTransferIsLatencyPlusSerialization)
{
    Simulator sim;
    // 1 GB/s => 1 byte/ns; 1024B message = 1024ns serialization.
    Link link(sim, 150, 1e9);
    Tick arrival = link.transfer(1024);
    EXPECT_EQ(arrival, 1024 + 150);
    EXPECT_EQ(link.bytesTransferred(), 1024u);
}

TEST(Link, BackToBackTransfersSerialize)
{
    Simulator sim;
    Link link(sim, 100, 1e9);
    Tick a1 = link.transfer(1000);
    Tick a2 = link.transfer(1000);
    EXPECT_EQ(a1, 1100);
    EXPECT_EQ(a2, 2100); // second waits for the first's serialization
}

TEST(Link, PerMessageOverheadIsCharged)
{
    Simulator sim;
    Link link(sim, 0, 0.0, 300); // infinite BW, 300ns per message
    EXPECT_EQ(link.transfer(1 << 20), 300);
    EXPECT_EQ(link.transfer(64), 600);
}

TEST(Link, PreviewDoesNotOccupy)
{
    Simulator sim;
    Link link(sim, 100, 1e9);
    Tick preview = link.previewArrival(1000);
    EXPECT_EQ(preview, 1100);
    EXPECT_EQ(link.busyUntil(), 0);
    EXPECT_EQ(link.transfer(1000), preview);
}

namespace {

Process
poolUser(CorePool *pool, Tick cost, std::vector<Tick> *done,
         Simulator *simp)
{
    co_await pool->compute(cost);
    done->push_back(simp->now());
}

} // namespace

TEST(CorePool, LimitsConcurrency)
{
    Simulator sim;
    CorePool pool(sim, 2);
    std::vector<Tick> done;
    for (int i = 0; i < 4; ++i)
        sim.spawn(poolUser(&pool, 100, &done, &sim));
    sim.run();
    ASSERT_EQ(done.size(), 4u);
    std::sort(done.begin(), done.end());
    // 2 cores, 4 jobs of 100: two finish at 100, two at 200.
    EXPECT_EQ(done[0], 100);
    EXPECT_EQ(done[1], 100);
    EXPECT_EQ(done[2], 200);
    EXPECT_EQ(done[3], 200);
    EXPECT_EQ(pool.freeCores(), 2);
}

TEST(CorePool, SingleCoreSerializesFifo)
{
    Simulator sim;
    CorePool pool(sim, 1);
    std::vector<Tick> done;
    for (int i = 0; i < 3; ++i)
        sim.spawn(poolUser(&pool, 10, &done, &sim));
    sim.run();
    EXPECT_EQ(done, (std::vector<Tick>{10, 20, 30}));
}

namespace {

Process
wgWorker(WaitGroup *wg, Tick d)
{
    co_await delay(d);
    wg->done();
}

Process
wgJoiner(WaitGroup *wg, Tick *joined_at, Simulator *simp)
{
    co_await wg->wait();
    *joined_at = simp->now();
}

} // namespace

TEST(WaitGroup, JoinsAllWorkers)
{
    Simulator sim;
    WaitGroup wg(sim);
    Tick joined = -1;
    wg.add(3);
    sim.spawn(wgWorker(&wg, 10));
    sim.spawn(wgWorker(&wg, 50));
    sim.spawn(wgWorker(&wg, 30));
    sim.spawn(wgJoiner(&wg, &joined, &sim));
    sim.run();
    EXPECT_EQ(joined, 50);
    EXPECT_EQ(wg.count(), 0u);
}
