/**
 * @file
 * Unit tests for the discrete-event simulator core: event ordering,
 * coroutine processes, tasks, conditions, mailboxes, links, core pools.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/condition.hh"
#include "sim/network.hh"
#include "sim/process.hh"
#include "sim/simulator.hh"

using namespace minos;
using namespace minos::sim;

TEST(Simulator, StartsAtZero)
{
    Simulator sim;
    EXPECT_EQ(sim.now(), 0);
    EXPECT_EQ(sim.eventsExecuted(), 0u);
}

TEST(Simulator, ExecutesEventsInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.schedule(30, [&] { order.push_back(3); });
    sim.schedule(10, [&] { order.push_back(1); });
    sim.schedule(20, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, SameTickFifoOrder)
{
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        sim.schedule(5, [&order, i] { order.push_back(i); });
    sim.run();
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, NestedSchedulingAdvancesTime)
{
    Simulator sim;
    Tick seen = -1;
    sim.schedule(10, [&] {
        sim.after(15, [&] { seen = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(seen, 25);
}

TEST(Simulator, RunUntilStopsAtLimit)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(10, [&] { ++fired; });
    sim.schedule(100, [&] { ++fired; });
    EXPECT_FALSE(sim.runUntil(50));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), 50);
    EXPECT_TRUE(sim.runUntil(200));
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, SameTickEventsFromPastBeatLaterRingEvents)
{
    // Exact (when, seq) order: an event scheduled *earlier* for tick 5
    // (sitting in the heap) must run before a same-tick event scheduled
    // *during* tick 5 (sitting in the ready ring).
    Simulator sim;
    std::vector<int> order;
    sim.schedule(5, [&] {
        order.push_back(0);
        sim.after(0, [&] { order.push_back(2); }); // ring, seq 2
    });
    sim.schedule(5, [&] { order.push_back(1); }); // heap, seq 1
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Simulator, CountersTrackRingAndHeapTraffic)
{
    Simulator sim;
    int fired = 0;
    sim.schedule(0, [&] { ++fired; });  // now == 0: ready ring
    sim.schedule(10, [&] { ++fired; }); // future: heap
    sim.schedule(10, [&] {              // future: heap
        sim.after(0, [&] { ++fired; }); // same-tick wakeup: ring
    });
    sim.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(sim.eventsExecuted(), 4u);
    EXPECT_EQ(sim.readyRingHits(), 2u);
    EXPECT_EQ(sim.heapPushes(), 2u);
    EXPECT_EQ(sim.peakHeapSize(), 2u);
    EXPECT_GE(sim.peakRingSize(), 1u);

    stats::EventCoreCounters c = sim.counters();
    EXPECT_EQ(c.eventsExecuted, 4u);
    EXPECT_EQ(c.readyRingHits, 2u);
    EXPECT_EQ(c.heapPushes, 2u);
    EXPECT_DOUBLE_EQ(c.ringHitRate(), 0.5);
    EXPECT_EQ(c, sim.counters());
}

TEST(Simulator, OversizedClosuresStillWork)
{
    // Closures beyond EventFn's inline buffer take the heap fallback.
    Simulator sim;
    std::array<std::uint64_t, 64> big{};
    big[0] = 7;
    big[63] = 35;
    std::uint64_t got = 0;
    static_assert(sizeof(big) > EventFn::inlineBytes);
    sim.schedule(3, [&got, big] { got = big[0] + big[63]; });
    sim.run();
    EXPECT_EQ(got, 42u);
}

TEST(Simulator, PendingEventsAreDestroyedAtTeardown)
{
    // Undispatched closures (ring and heap) must release their captures
    // when the simulator dies mid-run.
    auto owner = std::make_shared<int>(1);
    EXPECT_EQ(owner.use_count(), 1);
    {
        Simulator sim;
        sim.schedule(0, [keep = owner] {});
        sim.schedule(50, [keep = owner] {});
        EXPECT_EQ(owner.use_count(), 3);
        EXPECT_EQ(sim.pendingEvents(), 2u);
    }
    EXPECT_EQ(owner.use_count(), 1);
}

TEST(Simulator, DeterministicStormIsBitIdentical)
{
    // Guard against ready-ring/heap ordering drift: a pseudorandom
    // event storm (self-rescheduling chains mixing 0-delay wakeups and
    // timed events) must replay bit-identically.
    auto storm = [](std::uint64_t seed, std::vector<Tick> *trace,
                    std::uint64_t *executed) {
        Simulator sim;
        std::uint64_t budget = 5000;
        struct Chain
        {
            Simulator *sim;
            std::uint64_t *budget;
            std::vector<Tick> *trace;
            std::uint32_t rng;
            int id;

            void
            operator()()
            {
                trace->push_back(sim->now() * 64 + id);
                if (*budget == 0)
                    return;
                --*budget;
                rng = rng * 1664525u + 1013904223u;
                Tick d = (rng >> 8) % 4 == 0 ? (rng >> 8) % 97 : 0;
                sim->after(d, *this);
            }
        };
        for (int i = 0; i < 8; ++i)
            sim.after(static_cast<Tick>(i % 3),
                      Chain{&sim, &budget, trace,
                            static_cast<std::uint32_t>(seed + i), i});
        sim.run();
        *executed = sim.eventsExecuted();
    };

    std::vector<Tick> t1, t2;
    std::uint64_t e1 = 0, e2 = 0;
    storm(12345, &t1, &e1);
    storm(12345, &t2, &e2);
    EXPECT_EQ(e1, e2);
    EXPECT_EQ(t1, t2);

    std::vector<Tick> t3;
    std::uint64_t e3 = 0;
    storm(999, &t3, &e3);
    EXPECT_NE(t1, t3); // the seed actually matters
}

namespace {

Process
delayProcess(Simulator &, Tick d, Tick *finished_at, Simulator *simp)
{
    co_await delay(d);
    *finished_at = simp->now();
}

} // namespace

TEST(Process, DelayAdvancesSimTime)
{
    Simulator sim;
    Tick finished = -1;
    sim.spawn(delayProcess(sim, 123, &finished, &sim));
    sim.run();
    EXPECT_EQ(finished, 123);
    EXPECT_EQ(sim.numLiveProcesses(), 0u);
}

namespace {

Process
chainedDelays(Simulator *simp, std::vector<Tick> *trace)
{
    for (int i = 0; i < 3; ++i) {
        co_await delay(10);
        trace->push_back(simp->now());
    }
}

} // namespace

TEST(Process, SequentialDelaysAccumulate)
{
    Simulator sim;
    std::vector<Tick> trace;
    sim.spawn(chainedDelays(&sim, &trace));
    sim.run();
    EXPECT_EQ(trace, (std::vector<Tick>{10, 20, 30}));
}

namespace {

Task<int>
subTask(Tick d)
{
    co_await delay(d);
    co_return 7;
}

Task<void>
voidSub(Tick d, int *out)
{
    co_await delay(d);
    *out += 1;
}

Process
taskCaller(Simulator *simp, int *result, Tick *t)
{
    int v = co_await subTask(40);
    *result = v;
    *t = simp->now();
    co_await voidSub(2, result);
}

} // namespace

TEST(Task, AwaitableSubroutinesReturnValues)
{
    Simulator sim;
    int result = 0;
    Tick t = -1;
    sim.spawn(taskCaller(&sim, &result, &t));
    sim.run();
    EXPECT_EQ(result, 8); // 7 from subTask, +1 from voidSub
    EXPECT_EQ(t, 40);
}

namespace {

Process
waiter(Condition *cond, bool *flag, Tick *woke_at, Simulator *simp)
{
    while (!*flag)
        co_await cond->wait();
    *woke_at = simp->now();
}

Process
notifier(Condition *cond, bool *flag)
{
    co_await delay(50);
    *flag = true;
    cond->notifyAll();
}

} // namespace

TEST(Condition, PredicateLoopWakesOnNotify)
{
    Simulator sim;
    Condition cond(sim);
    bool flag = false;
    Tick woke = -1;
    sim.spawn(waiter(&cond, &flag, &woke, &sim));
    sim.spawn(notifier(&cond, &flag));
    sim.run();
    EXPECT_EQ(woke, 50);
}

TEST(Condition, NotifyWithNoWaitersIsNoop)
{
    Simulator sim;
    Condition cond(sim);
    cond.notifyAll();
    cond.notifyOne();
    sim.run();
    EXPECT_EQ(cond.numWaiters(), 0u);
}

namespace {

Process
orderedWaiter(Condition *cond, int id, std::vector<int> *woke)
{
    co_await cond->wait();
    woke->push_back(id);
}

} // namespace

TEST(Condition, NotifyOneWakesOldestWaiterOnly)
{
    Simulator sim;
    Condition cond(sim);
    std::vector<int> woke;
    for (int i = 0; i < 3; ++i)
        sim.spawn(orderedWaiter(&cond, i, &woke));
    sim.runUntil(0);
    ASSERT_EQ(cond.numWaiters(), 3u);

    cond.notifyOne();
    sim.runUntil(1);
    EXPECT_EQ(woke, (std::vector<int>{0})); // FIFO: oldest first
    EXPECT_EQ(cond.numWaiters(), 2u);

    cond.notifyOne();
    cond.notifyOne();
    sim.run();
    EXPECT_EQ(woke, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(cond.numWaiters(), 0u);
}

namespace {

Process
producer(Mailbox<int> *mb)
{
    for (int i = 0; i < 5; ++i) {
        co_await delay(10);
        mb->send(i);
    }
}

Process
consumer(Mailbox<int> *mb, std::vector<int> *got)
{
    for (int i = 0; i < 5; ++i) {
        int v = co_await mb->recv();
        got->push_back(v);
    }
}

} // namespace

TEST(Mailbox, FifoDelivery)
{
    Simulator sim;
    Mailbox<int> mb(sim);
    std::vector<int> got;
    sim.spawn(consumer(&mb, &got));
    sim.spawn(producer(&mb));
    sim.run();
    EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Mailbox, SendBeforeRecvIsQueued)
{
    Simulator sim;
    Mailbox<int> mb(sim);
    mb.send(41);
    mb.send(42);
    EXPECT_EQ(mb.size(), 2u);
    std::vector<int> got;
    sim.spawn(consumer(&mb, &got)); // wants 5 items
    sim.spawn(producer(&mb));       // sends 5 more; consumer takes 5 total
    sim.run();
    ASSERT_GE(got.size(), 2u);
    EXPECT_EQ(got[0], 41);
    EXPECT_EQ(got[1], 42);
}

namespace {

Process
twoConsumers(Mailbox<int> *mb, std::vector<int> *got)
{
    int v = co_await mb->recv();
    got->push_back(v);
}

} // namespace

TEST(Mailbox, EachItemWakesExactlyOneReceiver)
{
    Simulator sim;
    Mailbox<int> mb(sim);
    std::vector<int> got;
    sim.spawn(twoConsumers(&mb, &got));
    sim.spawn(twoConsumers(&mb, &got));
    sim.schedule(5, [&] { mb.send(1); });
    sim.schedule(6, [&] { mb.send(2); });
    sim.run();
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(Simulator, TeardownReclaimsBlockedProcesses)
{
    // A process that waits forever must not leak when the simulator is
    // destroyed (ASan would catch the leak).
    auto sim = std::make_unique<Simulator>();
    Condition cond(*sim);
    bool flag = false;
    Tick woke = -1;
    sim->spawn(waiter(&cond, &flag, &woke, sim.get()));
    sim->run();
    EXPECT_EQ(sim->numLiveProcesses(), 1u);
    sim.reset(); // must destroy the suspended frame
    EXPECT_EQ(woke, -1);
}

TEST(Link, UncontendedTransferIsLatencyPlusSerialization)
{
    Simulator sim;
    // 1 GB/s => 1 byte/ns; 1024B message = 1024ns serialization.
    Link link(sim, 150, 1e9);
    Tick arrival = link.transfer(1024);
    EXPECT_EQ(arrival, 1024 + 150);
    EXPECT_EQ(link.bytesTransferred(), 1024u);
}

TEST(Link, BackToBackTransfersSerialize)
{
    Simulator sim;
    Link link(sim, 100, 1e9);
    Tick a1 = link.transfer(1000);
    Tick a2 = link.transfer(1000);
    EXPECT_EQ(a1, 1100);
    EXPECT_EQ(a2, 2100); // second waits for the first's serialization
}

TEST(Link, PerMessageOverheadIsCharged)
{
    Simulator sim;
    Link link(sim, 0, 0.0, 300); // infinite BW, 300ns per message
    EXPECT_EQ(link.transfer(1 << 20), 300);
    EXPECT_EQ(link.transfer(64), 600);
}

TEST(Link, PreviewDoesNotOccupy)
{
    Simulator sim;
    Link link(sim, 100, 1e9);
    Tick preview = link.previewArrival(1000);
    EXPECT_EQ(preview, 1100);
    EXPECT_EQ(link.busyUntil(), 0);
    EXPECT_EQ(link.transfer(1000), preview);
}

namespace {

Process
poolUser(CorePool *pool, Tick cost, std::vector<Tick> *done,
         Simulator *simp)
{
    co_await pool->compute(cost);
    done->push_back(simp->now());
}

} // namespace

TEST(CorePool, LimitsConcurrency)
{
    Simulator sim;
    CorePool pool(sim, 2);
    std::vector<Tick> done;
    for (int i = 0; i < 4; ++i)
        sim.spawn(poolUser(&pool, 100, &done, &sim));
    sim.run();
    ASSERT_EQ(done.size(), 4u);
    std::sort(done.begin(), done.end());
    // 2 cores, 4 jobs of 100: two finish at 100, two at 200.
    EXPECT_EQ(done[0], 100);
    EXPECT_EQ(done[1], 100);
    EXPECT_EQ(done[2], 200);
    EXPECT_EQ(done[3], 200);
    EXPECT_EQ(pool.freeCores(), 2);
}

TEST(CorePool, SingleCoreSerializesFifo)
{
    Simulator sim;
    CorePool pool(sim, 1);
    std::vector<Tick> done;
    for (int i = 0; i < 3; ++i)
        sim.spawn(poolUser(&pool, 10, &done, &sim));
    sim.run();
    EXPECT_EQ(done, (std::vector<Tick>{10, 20, 30}));
}

namespace {

Process
tagUser(CorePool *pool, int id, std::vector<int> *order)
{
    co_await pool->acquire();
    order->push_back(id);
    co_await delay(10);
    pool->release();
}

} // namespace

TEST(CorePool, ReleaseHandsOffFifoWithoutHerd)
{
    // One freed core resumes exactly one waiter: waiters acquire in
    // arrival order, and each release produces a single wakeup event
    // instead of waking the whole herd.
    Simulator sim;
    CorePool pool(sim, 1);
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        sim.spawn(tagUser(&pool, i, &order));
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
    // 7 releases with a waiter present -> exactly 7 handoff wakeups;
    // with notifyAll it would have been 7+6+...+1 = 28.
    EXPECT_EQ(pool.freeCores(), 1);
}

namespace {

Process
wgWorker(WaitGroup *wg, Tick d)
{
    co_await delay(d);
    wg->done();
}

Process
wgJoiner(WaitGroup *wg, Tick *joined_at, Simulator *simp)
{
    co_await wg->wait();
    *joined_at = simp->now();
}

} // namespace

TEST(WaitGroup, JoinsAllWorkers)
{
    Simulator sim;
    WaitGroup wg(sim);
    Tick joined = -1;
    wg.add(3);
    sim.spawn(wgWorker(&wg, 10));
    sim.spawn(wgWorker(&wg, 50));
    sim.spawn(wgWorker(&wg, 30));
    sim.spawn(wgJoiner(&wg, &joined, &sim));
    sim.run();
    EXPECT_EQ(joined, 50);
    EXPECT_EQ(wg.count(), 0u);
}
