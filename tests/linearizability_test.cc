/**
 * @file
 * Tests of the linearizability history checker, plus the end-to-end
 * property it exists for: real concurrent histories collected from the
 * threaded MINOS-B runtime must be linearizable under every
 * <Lin, persistency> model.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <thread>

#include "check/linearizability.hh"
#include "proto/tnode.hh"

using namespace minos;
using namespace minos::check;
using Kind = HistoryOp::Kind;

namespace {

HistoryOp
op(Kind kind, Tick invoke, Tick response, kv::Value value)
{
    return HistoryOp{kind, invoke, response, value};
}

} // namespace

TEST(LinCheck, EmptyAndTrivialHistories)
{
    EXPECT_TRUE(checkLinearizable({}).linearizable);
    EXPECT_TRUE(checkLinearizable({op(Kind::Write, 0, 1, 5)})
                    .linearizable);
    EXPECT_TRUE(checkLinearizable({op(Kind::Read, 0, 1, 0)})
                    .linearizable); // initial value
}

TEST(LinCheck, SequentialReadAfterWrite)
{
    EXPECT_TRUE(checkLinearizable({
                                      op(Kind::Write, 0, 10, 7),
                                      op(Kind::Read, 20, 30, 7),
                                  })
                    .linearizable);
}

TEST(LinCheck, StaleReadAfterCompletedWriteIsRejected)
{
    // The write completed (response=10) strictly before the read began
    // (invoke=20), yet the read saw the initial value: the defining
    // linearizability violation.
    auto res = checkLinearizable({
        op(Kind::Write, 0, 10, 7),
        op(Kind::Read, 20, 30, 0),
    });
    EXPECT_FALSE(res.linearizable);
    EXPECT_FALSE(res.inconclusive);
}

TEST(LinCheck, ConcurrentReadMayGoEitherWay)
{
    // Read overlaps the write: both old and new values are legal.
    EXPECT_TRUE(checkLinearizable({
                                      op(Kind::Write, 0, 100, 7),
                                      op(Kind::Read, 50, 60, 0),
                                  })
                    .linearizable);
    EXPECT_TRUE(checkLinearizable({
                                      op(Kind::Write, 0, 100, 7),
                                      op(Kind::Read, 50, 60, 7),
                                  })
                    .linearizable);
}

TEST(LinCheck, ReadsCannotSwapOrder)
{
    // r1 sees the NEW value and completes before r2 begins; r2 then
    // sees the OLD value: forbidden (non-monotonic reads).
    auto res = checkLinearizable({
        op(Kind::Write, 0, 100, 7),
        op(Kind::Read, 10, 20, 7),
        op(Kind::Read, 30, 40, 0),
    });
    EXPECT_FALSE(res.linearizable);
}

TEST(LinCheck, ConcurrentWritesAnyOrder)
{
    // Two overlapping writes; later reads settle which one won.
    EXPECT_TRUE(checkLinearizable({
                                      op(Kind::Write, 0, 100, 1),
                                      op(Kind::Write, 0, 100, 2),
                                      op(Kind::Read, 200, 210, 1),
                                  })
                    .linearizable);
    EXPECT_TRUE(checkLinearizable({
                                      op(Kind::Write, 0, 100, 1),
                                      op(Kind::Write, 0, 100, 2),
                                      op(Kind::Read, 200, 210, 2),
                                  })
                    .linearizable);
}

TEST(LinCheck, LostUpdateIsRejected)
{
    // Both writes completed before the read, yet the read observes the
    // initial value.
    auto res = checkLinearizable({
        op(Kind::Write, 0, 10, 1),
        op(Kind::Write, 20, 30, 2),
        op(Kind::Read, 40, 50, 0),
    });
    EXPECT_FALSE(res.linearizable);
}

TEST(LinCheck, RealTimeOrderBetweenWritesRespected)
{
    // w1 (value 1) completes before w2 (value 2) begins; a read after
    // both must not see 1... unless nothing else wrote: seeing 1 would
    // order w2 before w1, violating real time.
    auto res = checkLinearizable({
        op(Kind::Write, 0, 10, 1),
        op(Kind::Write, 20, 30, 2),
        op(Kind::Read, 40, 50, 1),
    });
    EXPECT_FALSE(res.linearizable);
}

TEST(LinCheck, DuplicateWriteValuesAreInconclusive)
{
    auto res = checkLinearizable({
        op(Kind::Write, 0, 10, 5),
        op(Kind::Write, 20, 30, 5),
    });
    EXPECT_TRUE(res.inconclusive);
}

TEST(LinCheck, MalformedIntervalRejected)
{
    auto res = checkLinearizable({op(Kind::Write, 10, 5, 1)});
    EXPECT_FALSE(res.linearizable);
    EXPECT_FALSE(res.inconclusive);
}

// ---------------------------------------------------------------------
// End-to-end: histories from the real threaded runtime.
// ---------------------------------------------------------------------

class ThreadedLinTest
    : public ::testing::TestWithParam<proto::PersistModel>
{
};

INSTANTIATE_TEST_SUITE_P(AllModels, ThreadedLinTest,
                         ::testing::ValuesIn(simproto::allModels),
                         [](const auto &info) {
                             return std::string(
                                 simproto::shortModelName(info.param));
                         });

TEST_P(ThreadedLinTest, ConcurrentHistoryIsLinearizable)
{
    proto::ThreadedConfig cfg;
    cfg.numNodes = 3;
    cfg.model = GetParam();
    cfg.numRecords = 8;
    cfg.persistNsPerKb = 300;
    cfg.wireLatency = std::chrono::microseconds(1);
    proto::ThreadedCluster cluster(cfg);

    using Clock = std::chrono::steady_clock;
    const auto epoch = Clock::now();
    auto now_ns = [&] {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   Clock::now() - epoch)
            .count();
    };

    std::mutex mu;
    std::vector<HistoryOp> history;
    auto record = [&](Kind kind, Tick inv, Tick resp, kv::Value v) {
        std::lock_guard<std::mutex> guard(mu);
        history.push_back(HistoryOp{kind, inv, resp, v});
    };

    // Three client threads on distinct nodes: two writers (unique
    // values), one reader, all on key 0.
    std::vector<std::thread> clients;
    for (int t = 0; t < 2; ++t) {
        clients.emplace_back([&, t] {
            for (int i = 0; i < 8; ++i) {
                kv::Value v =
                    static_cast<kv::Value>(1000 * (t + 1) + i);
                Tick inv = now_ns();
                cluster.node(t).write(0, v);
                record(Kind::Write, inv, now_ns(), v);
            }
        });
    }
    clients.emplace_back([&] {
        for (int i = 0; i < 16; ++i) {
            Tick inv = now_ns();
            kv::Value v = cluster.node(2).read(0);
            record(Kind::Read, inv, now_ns(), v);
        }
    });
    for (auto &t : clients)
        t.join();

    ASSERT_LE(history.size(), 64u);
    auto res = checkLinearizable(history);
    EXPECT_FALSE(res.inconclusive) << res.explanation;
    EXPECT_TRUE(res.linearizable)
        << res.explanation << " (model "
        << simproto::shortModelName(GetParam()) << ")";
}
