/**
 * @file
 * Integration tests of the simulated MINOS-B cluster: protocol
 * correctness across all five <Lin, P> models, convergence invariants,
 * obsolete-write handling, read gating, and the workload driver.
 */

#include <gtest/gtest.h>

#include <memory>

#include "simproto/cluster_b.hh"
#include "simproto/driver.hh"

using namespace minos;
using namespace minos::simproto;
using kv::Key;
using kv::NodeId;
using kv::Timestamp;
using kv::Value;

namespace {

ClusterConfig
smallConfig(int nodes = 3, std::uint64_t records = 64)
{
    ClusterConfig cfg;
    cfg.numNodes = nodes;
    cfg.numRecords = records;
    return cfg;
}

/** Await a single cluster op from a fresh process. */
sim::Process
doWrite(DdpCluster *c, NodeId n, Key k, Value v, OpStats *out)
{
    *out = co_await c->clientWrite(n, k, v, 0);
}

sim::Process
doRead(DdpCluster *c, NodeId n, Key k, OpStats *out)
{
    *out = co_await c->clientRead(n, k);
}

sim::Process
writeThenRemoteRead(DdpCluster *c, NodeId wr_node, NodeId rd_node, Key k,
                    Value v, OpStats *write_out, OpStats *read_out)
{
    *write_out = co_await c->clientWrite(wr_node, k, v, 0);
    // Linearizability: once the write response returned, a subsequent
    // read anywhere must see it (or something newer).
    *read_out = co_await c->clientRead(rd_node, k);
}

/** Cluster-wide convergence invariants at quiescence. */
void
expectConverged(ClusterB &cluster, Key k)
{
    const ClusterConfig &cfg = cluster.config();
    const kv::Record &ref = cluster.node(0).record(k);
    for (int n = 0; n < cfg.numNodes; ++n) {
        const kv::Record &rec = cluster.node(static_cast<NodeId>(n))
                                    .record(k);
        EXPECT_TRUE(rec.rdLockFree()) << "node " << n << " key " << k;
        EXPECT_FALSE(rec.wrLock) << "node " << n << " key " << k;
        EXPECT_EQ(rec.value, ref.value) << "node " << n << " key " << k;
        EXPECT_EQ(rec.volatileTs, ref.volatileTs)
            << "node " << n << " key " << k;
        // Table I check 2a: when read-unlocked everywhere, volatileTS
        // and glb_volatileTS agree across all nodes.
        EXPECT_EQ(rec.glbVolatileTs, rec.volatileTs)
            << "node " << n << " key " << k;
    }
}

/** Durable state matches volatile state at quiescence. */
void
expectDurable(ClusterB &cluster, Key k)
{
    for (int n = 0; n < cluster.config().numNodes; ++n) {
        NodeB &node = cluster.node(static_cast<NodeId>(n));
        const kv::Record &rec = node.record(k);
        if (rec.volatileTs.isNone())
            continue; // never written
        auto db = node.durableDb();
        auto it = db.find(k);
        ASSERT_NE(it, db.end()) << "node " << n << " key " << k;
        EXPECT_EQ(it->second.ts, rec.volatileTs)
            << "node " << n << " key " << k;
        EXPECT_EQ(it->second.value, rec.value)
            << "node " << n << " key " << k;
    }
}

} // namespace

class ModelTest : public ::testing::TestWithParam<PersistModel>
{
};

INSTANTIATE_TEST_SUITE_P(AllModels, ModelTest,
                         ::testing::ValuesIn(allModels),
                         [](const auto &info) {
                             return std::string(
                                 shortModelName(info.param));
                         });

TEST_P(ModelTest, SingleWriteReplicatesEverywhere)
{
    sim::Simulator sim;
    ClusterB cluster(sim, smallConfig(), GetParam());
    OpStats st;
    sim.spawn(doWrite(&cluster, 0, 7, 1234, &st));
    sim.run();

    EXPECT_FALSE(st.obsolete);
    EXPECT_GT(st.latencyNs, 0);
    for (int n = 0; n < 3; ++n) {
        const kv::Record &rec = cluster.node(n).record(7);
        EXPECT_EQ(rec.value, 1234u) << "node " << n;
        EXPECT_EQ(rec.volatileTs, (Timestamp{0, 0})) << "node " << n;
    }
    expectConverged(cluster, 7);
}

TEST_P(ModelTest, WriteIsDurableEverywhereAtQuiescence)
{
    sim::Simulator sim;
    ClusterB cluster(sim, smallConfig(), GetParam());
    OpStats st;
    sim.spawn(doWrite(&cluster, 1, 3, 99, &st));
    sim.run();
    // Event/Scope persist in the background, but the sim has quiesced,
    // so even they must have drained... except Scope, whose scoped write
    // only persists when the scope is persisted (scope id 0 here gets a
    // background persist too in our implementation).
    expectDurable(cluster, 3);
    // Every node logged exactly one entry.
    for (int n = 0; n < 3; ++n)
        EXPECT_EQ(cluster.node(n).log().size(), 1u) << "node " << n;
}

TEST_P(ModelTest, RemoteReadAfterWriteSeesValue)
{
    sim::Simulator sim;
    ClusterB cluster(sim, smallConfig(), GetParam());
    OpStats wr, rd;
    sim.spawn(writeThenRemoteRead(&cluster, 0, 2, 11, 777, &wr, &rd));
    sim.run();
    EXPECT_EQ(rd.value, 777u);
    EXPECT_GE(rd.latencyNs, 0);
}

TEST_P(ModelTest, SequentialWritesLastValueWins)
{
    sim::Simulator sim;
    ClusterB cluster(sim, smallConfig(), GetParam());
    OpStats s1, s2, s3;
    struct Seq
    {
        static sim::Process
        run(DdpCluster *c, OpStats *a, OpStats *b, OpStats *d)
        {
            *a = co_await c->clientWrite(0, 5, 100, 0);
            *b = co_await c->clientWrite(1, 5, 200, 0);
            *d = co_await c->clientWrite(2, 5, 300, 0);
        }
    };
    sim.spawn(Seq::run(&cluster, &s1, &s2, &s3));
    sim.run();
    for (int n = 0; n < 3; ++n)
        EXPECT_EQ(cluster.node(n).record(5).value, 300u) << "node " << n;
    expectConverged(cluster, 5);
    expectDurable(cluster, 5);
    // Versions increase monotonically: 0 -> 1 -> 2.
    EXPECT_EQ(cluster.node(0).record(5).volatileTs,
              (Timestamp{2, 2}));
}

TEST_P(ModelTest, ConcurrentConflictingWritesConverge)
{
    sim::Simulator sim;
    ClusterB cluster(sim, smallConfig(), GetParam());
    // Several concurrent writers to the SAME key from different nodes:
    // snatching + obsoleteness machinery must keep replicas consistent.
    constexpr int writers = 3;
    OpStats st[writers];
    for (int w = 0; w < writers; ++w)
        sim.spawn(doWrite(&cluster, static_cast<NodeId>(w), 9,
                          1000u + static_cast<Value>(w), &st[w]));
    sim.run();
    expectConverged(cluster, 9);
    expectDurable(cluster, 9);
    // The winner is one of the written values.
    Value final = cluster.node(0).record(9).value;
    EXPECT_TRUE(final == 1000u || final == 1001u || final == 1002u);
    // No transaction left pending anywhere.
    for (int n = 0; n < 3; ++n)
        EXPECT_EQ(cluster.node(n).pendingTxns(), 0u) << "node " << n;
}

TEST_P(ModelTest, WorkloadRunConvergesAllKeys)
{
    sim::Simulator sim;
    ClusterConfig cfg = smallConfig(3, 32); // small DB forces conflicts
    ClusterB cluster(sim, cfg, GetParam());

    DriverConfig dc;
    dc.requestsPerNode = 200;
    dc.workersPerNode = 3;
    dc.ycsb.numRecords = cfg.numRecords;
    dc.ycsb.requestsPerNode = dc.requestsPerNode;

    RunResult res = runWorkload(sim, cluster, dc);
    EXPECT_EQ(res.writes + res.reads, 600u);
    EXPECT_GT(res.duration, 0);
    EXPECT_GT(res.writeLat.count(), 0u);
    EXPECT_GT(res.readLat.count(), 0u);
    for (Key k = 0; k < cfg.numRecords; ++k) {
        expectConverged(cluster, k);
        expectDurable(cluster, k);
    }
    for (int n = 0; n < 3; ++n)
        EXPECT_EQ(cluster.node(n).pendingTxns(), 0u) << "node " << n;
}

TEST_P(ModelTest, HotSingleKeyWorkloadProducesObsoletes)
{
    sim::Simulator sim;
    ClusterConfig cfg = smallConfig(3, 1); // one record: max conflict
    ClusterB cluster(sim, cfg, GetParam());

    DriverConfig dc;
    dc.requestsPerNode = 100;
    dc.workersPerNode = 3;
    dc.ycsb.numRecords = 1;
    dc.ycsb.writeFraction = 1.0;

    RunResult res = runWorkload(sim, cluster, dc);
    EXPECT_EQ(res.writes, 300u);
    // With everyone hammering one key, concurrent INVs must race and
    // some arrive already stale at followers.
    std::uint64_t follower_obsoletes = 0;
    for (int n = 0; n < 3; ++n)
        follower_obsoletes += cluster.node(n).obsoleteInvs();
    EXPECT_GT(follower_obsoletes, 0u);
    expectConverged(cluster, 0);
    expectDurable(cluster, 0);
}

TEST_P(ModelTest, CoordinatorObsoleteCutShort)
{
    // Exercise the coordinator's post-WRLock obsoleteness path (Fig. 2
    // lines 10/15-16): a remote INV with a newer timestamp must land
    // between TS_WR generation and the final check. The sim is
    // deterministic, so we sweep the start offset of the local write
    // until the race window is hit.
    bool hit = false;
    for (Tick offset = 0; offset <= 20000 && !hit; offset += 100) {
        sim::Simulator sim;
        ClusterConfig cfg = smallConfig();
        // Widen the generation->check window so the INV can sneak in.
        cfg.hostSyncNs = 3000;
        ClusterB cluster(sim, cfg, GetParam());

        // Node 1 primes the record (so versions are non-trivial), then
        // immediately writes again; node 0 writes after `offset`.
        struct Node1Writes
        {
            static sim::Process
            run(ClusterB *c, OpStats *out)
            {
                co_await c->clientWrite(1, 0, 1, 0);
                *out = co_await c->clientWrite(1, 0, 2, 0);
            }
        };
        struct Node0Write
        {
            static sim::Process
            run(ClusterB *c, Tick offset, OpStats *out)
            {
                co_await sim::delay(offset);
                *out = co_await c->clientWrite(0, 0, 3, 0);
            }
        };
        OpStats st0, st1;
        sim.spawn(Node1Writes::run(&cluster, &st1));
        sim.spawn(Node0Write::run(&cluster, offset, &st0));
        sim.run();
        if (st0.obsolete)
            hit = true;
        // Regardless of who won, replicas must converge.
        expectConverged(cluster, 0);
    }
    EXPECT_TRUE(hit)
        << "no start offset produced a coordinator-side obsolete write";
}

TEST_P(ModelTest, ScalesToMoreNodes)
{
    sim::Simulator sim;
    ClusterConfig cfg = smallConfig(6, 16);
    ClusterB cluster(sim, cfg, GetParam());
    DriverConfig dc;
    dc.requestsPerNode = 60;
    dc.workersPerNode = 2;
    dc.ycsb.numRecords = cfg.numRecords;
    RunResult res = runWorkload(sim, cluster, dc);
    EXPECT_EQ(res.writes + res.reads, 360u);
    for (Key k = 0; k < cfg.numRecords; ++k)
        expectConverged(cluster, k);
}

TEST(ClusterB, ReadOfUnwrittenKeyIsImmediate)
{
    sim::Simulator sim;
    ClusterB cluster(sim, smallConfig(), PersistModel::Synch);
    OpStats rd;
    sim.spawn(doRead(&cluster, 0, 0, &rd));
    sim.run();
    EXPECT_EQ(rd.value, 0u);
    // Just the request-processing + LLC read costs; no protocol stall.
    EXPECT_LT(rd.latencyNs, 1000);
}

TEST(ClusterB, WriteLatencyIncludesNetworkRoundTrip)
{
    sim::Simulator sim;
    ClusterConfig cfg = smallConfig();
    ClusterB cluster(sim, cfg, PersistModel::Synch);
    OpStats st;
    sim.spawn(doWrite(&cluster, 0, 1, 42, &st));
    sim.run();
    // At minimum: PCIe out+in both ways + NVM persist on both sides.
    EXPECT_GT(st.latencyNs, 2 * cfg.pcieLatencyNs + cfg.persistNsPerKb);
    EXPECT_GT(st.commNs, 0.0);
    EXPECT_GT(st.compNs, 0.0);
}

TEST(ClusterB, StricterModelsHaveHigherWriteLatency)
{
    // Fig. 4 shape: conservative persistency -> higher write latency.
    auto mean_write = [](PersistModel m) {
        sim::Simulator sim;
        ClusterConfig cfg = smallConfig(3, 128);
        ClusterB cluster(sim, cfg, m);
        DriverConfig dc;
        dc.requestsPerNode = 150;
        dc.workersPerNode = 3;
        dc.ycsb.numRecords = cfg.numRecords;
        return runWorkload(sim, cluster, dc).writeLat.mean();
    };
    double synch = mean_write(PersistModel::Synch);
    double strict = mean_write(PersistModel::Strict);
    double event = mean_write(PersistModel::Event);
    EXPECT_GT(strict, event);
    EXPECT_GT(synch, event);
}

TEST(ClusterB, ScopePersistFlushesScope)
{
    sim::Simulator sim;
    ClusterConfig cfg = smallConfig();
    ClusterB cluster(sim, cfg, PersistModel::Scope);
    struct Scoped
    {
        static sim::Process
        run(ClusterB *c, OpStats *persist_out)
        {
            net::ScopeId sc = 0x42;
            co_await c->clientWrite(0, 1, 10, sc);
            co_await c->clientWrite(0, 2, 20, sc);
            *persist_out = co_await c->persistScope(0, sc);
        }
    };
    OpStats ps;
    sim.spawn(Scoped::run(&cluster, &ps));
    sim.run();
    EXPECT_GT(ps.latencyNs, 0);
    // After [PERSIST]sc returned, both writes are durable on all nodes.
    expectDurable(cluster, 1);
    expectDurable(cluster, 2);
}

TEST(ClusterB, PersistScopeIsNoopForOtherModels)
{
    sim::Simulator sim;
    ClusterB cluster(sim, smallConfig(), PersistModel::Synch);
    OpStats ps;
    struct P
    {
        static sim::Process
        run(ClusterB *c, OpStats *out)
        {
            *out = co_await c->persistScope(0, 7);
        }
    };
    sim.spawn(P::run(&cluster, &ps));
    sim.run();
    EXPECT_EQ(ps.latencyNs, 0);
}

TEST(ClusterB, BatchingVariantStillCorrect)
{
    // Fig. 12's B+batch configuration must preserve protocol semantics.
    sim::Simulator sim;
    OffloadOptions opts;
    opts.batching = true;
    ClusterB cluster(sim, smallConfig(), PersistModel::Synch, opts);
    OpStats st;
    sim.spawn(doWrite(&cluster, 0, 4, 55, &st));
    sim.run();
    for (int n = 0; n < 3; ++n)
        EXPECT_EQ(cluster.node(n).record(4).value, 55u);
    expectConverged(cluster, 4);
}

TEST(ClusterB, CommunicationDominatesWriteLatency)
{
    // Paper §IV: communication is 51-73% of write latency at 5 nodes.
    sim::Simulator sim;
    ClusterConfig cfg = smallConfig(5, 1024);
    ClusterB cluster(sim, cfg, PersistModel::Synch);
    DriverConfig dc;
    dc.requestsPerNode = 200;
    dc.workersPerNode = 5;
    dc.ycsb.numRecords = cfg.numRecords;
    RunResult res = runWorkload(sim, cluster, dc);
    double frac = res.breakdown.commFraction();
    EXPECT_GT(frac, 0.35) << "comm fraction " << frac;
    EXPECT_LT(frac, 0.90) << "comm fraction " << frac;
}

namespace {

/** Everything a run produces that determinism must preserve. */
struct RunFingerprint
{
    std::uint64_t eventsExecuted;
    Tick completionTick;
    std::uint64_t writeDigest;
    std::uint64_t readDigest;
    std::uint64_t writes, reads, obsoletes;

    bool operator==(const RunFingerprint &) const = default;
};

RunFingerprint
runSeededB(PersistModel model)
{
    sim::Simulator sim;
    ClusterConfig cfg = smallConfig(3, 32);
    ClusterB cluster(sim, cfg, model);
    DriverConfig dc;
    dc.requestsPerNode = 300;
    dc.workersPerNode = 3;
    dc.ycsb.numRecords = cfg.numRecords;
    dc.ycsb.seed = 2024;
    RunResult res = runWorkload(sim, cluster, dc);
    return {sim.eventsExecuted(), sim.now(),
            res.writeLat.digest(),  res.readLat.digest(),
            res.writes,             res.reads,
            res.obsoleteWrites};
}

} // namespace

TEST_P(ModelTest, SeededRunsAreDeterministic)
{
    // Guards the ready-ring/heap event-core rewrite against ordering
    // drift: the same seeded configuration must replay identically,
    // down to the event count and every latency sample.
    RunFingerprint a = runSeededB(GetParam());
    RunFingerprint b = runSeededB(GetParam());
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    EXPECT_EQ(a.completionTick, b.completionTick);
    EXPECT_TRUE(a == b);
}
