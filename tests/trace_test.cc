/**
 * @file
 * Tests of the protocol event-trace infrastructure: ring semantics,
 * category filtering, and end-to-end integration with both engines.
 */

#include <gtest/gtest.h>

#include "sim/trace.hh"
#include "simproto/cluster_b.hh"
#include "simproto/driver.hh"
#include "snic/cluster_o.hh"

using namespace minos;
using namespace minos::sim;
using namespace minos::simproto;

TEST(TraceLog, RecordsInOrder)
{
    TraceLog log(16);
    log.record(10, TraceCategory::Protocol, 0, "a");
    log.record(20, TraceCategory::Message, 1, "b");
    log.record(30, TraceCategory::Lock, 2, "c");
    auto events = log.snapshot();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].text, "a");
    EXPECT_EQ(events[1].text, "b");
    EXPECT_EQ(events[2].text, "c");
    EXPECT_EQ(events[2].when, 30);
    EXPECT_EQ(events[2].node, 2);
}

TEST(TraceLog, RingOverwritesOldest)
{
    TraceLog log(4);
    for (int i = 0; i < 10; ++i)
        log.record(i, TraceCategory::Protocol, 0, std::to_string(i));
    auto events = log.snapshot();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events.front().text, "6"); // oldest retained
    EXPECT_EQ(events.back().text, "9");
    EXPECT_EQ(log.recorded(), 10u);
}

TEST(TraceLog, CategoryFiltering)
{
    TraceLog log(16);
    log.setEnabled(TraceCategory::Message, false);
    log.record(1, TraceCategory::Message, 0, "dropped");
    log.record(2, TraceCategory::Protocol, 0, "kept");
    auto events = log.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].text, "kept");
    EXPECT_FALSE(log.enabled(TraceCategory::Message));
    EXPECT_TRUE(log.enabled(TraceCategory::Protocol));
}

TEST(TraceLog, StrRendersReadableLines)
{
    TraceLog log(8);
    log.record(150, TraceCategory::Fifo, 3, "vFIFO skipped");
    std::string out = log.str();
    EXPECT_NE(out.find("150ns"), std::string::npos);
    EXPECT_NE(out.find("[fifo]"), std::string::npos);
    EXPECT_NE(out.find("node3"), std::string::npos);
    EXPECT_NE(out.find("vFIFO skipped"), std::string::npos);
}

TEST(TraceLog, ClearResets)
{
    TraceLog log(8);
    log.record(1, TraceCategory::Protocol, 0, "x");
    log.clear();
    EXPECT_TRUE(log.snapshot().empty());
    EXPECT_EQ(log.recorded(), 0u);
}

TEST(TraceIntegration, BaselineEngineEmitsProtocolEvents)
{
    sim::Simulator sim;
    TraceLog log(1 << 14);
    ClusterConfig cfg;
    cfg.numNodes = 3;
    cfg.numRecords = 4;
    cfg.trace = &log;
    ClusterB cluster(sim, cfg, PersistModel::Synch);

    DriverConfig dc;
    dc.requestsPerNode = 40;
    dc.workersPerNode = 2;
    dc.ycsb.numRecords = cfg.numRecords;
    dc.ycsb.writeFraction = 1.0;
    runWorkload(sim, cluster, dc);

    EXPECT_GT(log.recorded(), 0u);
    bool saw_fanout = false, saw_apply = false, saw_release = false;
    for (const auto &e : log.snapshot()) {
        saw_fanout |= e.text.find("INV fan-out") != std::string::npos;
        saw_apply |= e.text.find("applied") != std::string::npos;
        saw_release |=
            e.text.find("RDLock released") != std::string::npos;
    }
    EXPECT_TRUE(saw_fanout);
    EXPECT_TRUE(saw_apply);
    EXPECT_TRUE(saw_release);
    // Timestamps are non-decreasing.
    Tick prev = 0;
    for (const auto &e : log.snapshot()) {
        EXPECT_GE(e.when, prev);
        prev = e.when;
    }
}

TEST(TraceIntegration, OffloadEngineEmitsFifoEvents)
{
    sim::Simulator sim;
    TraceLog log(1 << 14);
    ClusterConfig cfg;
    cfg.numNodes = 3;
    cfg.numRecords = 2; // force conflicts -> vFIFO skips
    cfg.trace = &log;
    snic::ClusterO cluster(sim, cfg, PersistModel::Synch);

    DriverConfig dc;
    dc.requestsPerNode = 60;
    dc.workersPerNode = 3;
    dc.ycsb.numRecords = cfg.numRecords;
    dc.ycsb.writeFraction = 1.0;
    runWorkload(sim, cluster, dc);

    bool saw_broadcast = false, saw_enqueue = false;
    for (const auto &e : log.snapshot()) {
        saw_broadcast |=
            e.text.find("SNIC broadcast INV") != std::string::npos;
        saw_enqueue |=
            e.text.find("follower enqueued") != std::string::npos;
    }
    EXPECT_TRUE(saw_broadcast);
    EXPECT_TRUE(saw_enqueue);
}

TEST(TraceIntegration, DetachedTraceCostsNothing)
{
    // With no trace attached (the default), runs behave identically.
    sim::Simulator sim;
    ClusterConfig cfg;
    cfg.numNodes = 3;
    cfg.numRecords = 8;
    ASSERT_EQ(cfg.trace, nullptr);
    ClusterB cluster(sim, cfg, PersistModel::Synch);
    DriverConfig dc;
    dc.requestsPerNode = 20;
    dc.ycsb.numRecords = cfg.numRecords;
    RunResult res = runWorkload(sim, cluster, dc);
    EXPECT_EQ(res.writes + res.reads, 60u);
}
