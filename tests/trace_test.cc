/**
 * @file
 * Integration tests of the flight recorder and phase spans with both
 * protocol engines: typed protocol/lock/FIFO events show up where the
 * protocol says they must, every write phase is spanned, and a detached
 * recorder leaves the simulated results bit-identical (the observability
 * layer observes, it does not perturb).
 */

#include <gtest/gtest.h>

#include "obs/phase.hh"
#include "obs/recorder.hh"
#include "simproto/cluster_b.hh"
#include "simproto/driver.hh"
#include "snic/cluster_o.hh"

using namespace minos;
using namespace minos::obs;
using namespace minos::simproto;

namespace {

struct TraceRun
{
    FlightRecorder recorder{1 << 14};
    WritePhaseStats phases;
    RunResult result;
};

DriverConfig
smallDriver(const ClusterConfig &cfg, double write_fraction)
{
    DriverConfig dc;
    dc.requestsPerNode = 60;
    dc.workersPerNode = 2;
    dc.ycsb.numRecords = cfg.numRecords;
    dc.ycsb.writeFraction = write_fraction;
    return dc;
}

TraceRun
runB(int records = 8)
{
    TraceRun run;
    sim::Simulator sim;
    ClusterConfig cfg;
    cfg.numNodes = 3;
    cfg.numRecords = static_cast<std::uint64_t>(records);
    cfg.trace = &run.recorder;
    cfg.phases = &run.phases;
    ClusterB cluster(sim, cfg, PersistModel::Synch);
    run.result = runWorkload(sim, cluster, smallDriver(cfg, 1.0));
    return run;
}

TraceRun
runO(int records = 8)
{
    TraceRun run;
    sim::Simulator sim;
    ClusterConfig cfg;
    cfg.numNodes = 3;
    cfg.numRecords = static_cast<std::uint64_t>(records);
    cfg.trace = &run.recorder;
    cfg.phases = &run.phases;
    snic::ClusterO cluster(sim, cfg, PersistModel::Synch);
    run.result = runWorkload(sim, cluster, smallDriver(cfg, 1.0));
    return run;
}

bool
sawKind(const std::vector<Record> &events, EventKind kind)
{
    for (const auto &e : events)
        if (e.kind == kind)
            return true;
    return false;
}

TEST(TraceIntegration, BaselineEngineEmitsTypedProtocolEvents)
{
    TraceRun run = runB();
    EXPECT_GT(run.recorder.recorded(), 0u);
    auto events = run.recorder.snapshot();
    EXPECT_TRUE(sawKind(events, EventKind::InvFanout));
    EXPECT_TRUE(sawKind(events, EventKind::InvApplied));
    EXPECT_TRUE(sawKind(events, EventKind::RdLockReleased));

    // The sorted snapshot is non-decreasing in tick (the raw ring is
    // not, because SpanBegin records are laid retroactively).
    Tick prev = 0;
    for (const auto &e : run.recorder.sortedSnapshot()) {
        EXPECT_GE(e.when, prev);
        prev = e.when;
    }
}

TEST(TraceIntegration, OffloadEngineEmitsSnicEvents)
{
    TraceRun run = runO(/*records=*/2); // conflicts -> vFIFO skips
    auto events = run.recorder.snapshot();
    EXPECT_TRUE(sawKind(events, EventKind::SnicBroadcastInv));
    EXPECT_TRUE(sawKind(events, EventKind::FollowerEnqueued));
    EXPECT_TRUE(sawKind(events, EventKind::FifoDepth));
}

TEST(TraceIntegration, EveryWritePhaseIsSpannedOnBothEngines)
{
    for (bool offload : {false, true}) {
        TraceRun run = offload ? runO() : runB();
        SCOPED_TRACE(offload ? "MINOS-O" : "MINOS-B");

        bool begun[numPhases] = {};
        bool ended[numPhases] = {};
        for (const auto &e : run.recorder.snapshot()) {
            if (e.category != Category::Phase)
                continue;
            ASSERT_GE(e.a0, 0);
            ASSERT_LT(e.a0, numPhases);
            if (e.kind == EventKind::SpanBegin)
                begun[e.a0] = true;
            else if (e.kind == EventKind::SpanEnd)
                ended[e.a0] = true;
        }
        for (int p = 0; p < numPhases; ++p) {
            EXPECT_TRUE(begun[p])
                << "no SpanBegin for phase "
                << phaseName(static_cast<Phase>(p));
            EXPECT_TRUE(ended[p])
                << "no SpanEnd for phase "
                << phaseName(static_cast<Phase>(p));
        }

        // The aggregated per-phase series are populated too, and
        // coordinator phases have one sample per coordinated write.
        EXPECT_FALSE(run.phases.empty());
        for (Phase p : {Phase::LockWait, Phase::InvFanout,
                        Phase::Persist, Phase::Val})
            EXPECT_GT(run.phases.series(p).count(), 0u)
                << phaseName(p);
        EXPECT_EQ(run.phases.series(Phase::LockWait).count(),
                  run.phases.series(Phase::Val).count());
    }
}

TEST(TraceIntegration, PhaseStatsAloneWorkWithoutRecorder)
{
    // --phases without --trace-out: cfg.phases set, cfg.trace null.
    sim::Simulator sim;
    ClusterConfig cfg;
    cfg.numNodes = 3;
    cfg.numRecords = 8;
    WritePhaseStats phases;
    cfg.phases = &phases;
    ClusterB cluster(sim, cfg, PersistModel::Synch);
    runWorkload(sim, cluster, smallDriver(cfg, 1.0));
    EXPECT_FALSE(phases.empty());
    EXPECT_FALSE(phases.table().empty());
}

TEST(TraceIntegration, DetachedRecorderDoesNotPerturbResults)
{
    // Identical config and seed, once bare and once fully instrumented:
    // the simulated-time results must match exactly.
    auto bare = [] {
        sim::Simulator sim;
        ClusterConfig cfg;
        cfg.numNodes = 3;
        cfg.numRecords = 8;
        EXPECT_EQ(cfg.trace, nullptr);
        EXPECT_EQ(cfg.phases, nullptr);
        ClusterB cluster(sim, cfg, PersistModel::Synch);
        return runWorkload(sim, cluster, smallDriver(cfg, 1.0));
    }();
    TraceRun traced = runB();

    EXPECT_EQ(bare.writes, traced.result.writes);
    EXPECT_EQ(bare.reads, traced.result.reads);
    EXPECT_EQ(bare.duration, traced.result.duration);
    ASSERT_EQ(bare.writeLat.count(), traced.result.writeLat.count());
    EXPECT_EQ(bare.writeLat.samples(), traced.result.writeLat.samples());
}

} // namespace
