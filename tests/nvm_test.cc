/**
 * @file
 * Unit tests for the NVM timing model and the durable log.
 */

#include <gtest/gtest.h>

#include <thread>

#include "nvm/log.hh"
#include "nvm/model.hh"

using namespace minos;
using namespace minos::nvm;
using minos::kv::Timestamp;

TEST(NvmModel, DefaultTableIIValue)
{
    NvmModel nvm;
    EXPECT_EQ(nvm.nsPerKb(), 1295);
    EXPECT_EQ(nvm.persistLatency(1024), 1295);
}

TEST(NvmModel, ScalesLinearly)
{
    NvmModel nvm(1000);
    EXPECT_EQ(nvm.persistLatency(2048), 2000);
    EXPECT_EQ(nvm.persistLatency(512), 500);
    EXPECT_EQ(nvm.persistLatency(0), 0);
    // Tiny persists still cost at least one tick.
    EXPECT_GE(nvm.persistLatency(1), 1);
}

TEST(NvmModel, SweepValuesFromFig14)
{
    // Fig. 14 sweeps 100ns .. 100us per KB.
    EXPECT_EQ(NvmModel(100).persistLatency(1024), 100);
    EXPECT_EQ(NvmModel(100'000).persistLatency(1024), 100'000);
}

TEST(DurableLog, AppendAssignsSequentialIndices)
{
    DurableLog log;
    EXPECT_EQ(log.append({1, 10, {0, 0}}), 0u);
    EXPECT_EQ(log.append({2, 20, {0, 1}}), 1u);
    EXPECT_EQ(log.size(), 2u);
    EXPECT_EQ(log.entryAt(0).key, 1u);
    EXPECT_EQ(log.entryAt(1).value, 20u);
}

TEST(DurableLog, ApplyInOrder)
{
    DurableLog log;
    log.append({1, 10, Timestamp{0, 0}});
    log.append({1, 11, Timestamp{1, 0}});
    log.append({2, 20, Timestamp{0, 1}});
    DurableDb db;
    EXPECT_EQ(log.applyTo(db), 3u);
    EXPECT_EQ(db[1].value, 11u);
    EXPECT_EQ(db[1].ts, (Timestamp{1, 0}));
    EXPECT_EQ(db[2].value, 20u);
}

TEST(DurableLog, OutOfOrderEntriesFilteredOnApply)
{
    // §V-B.4: the log may contain out-of-order (hence obsolete) entries;
    // they are checked for obsoleteness when applied to the durable DB.
    DurableLog log;
    log.append({7, 100, Timestamp{5, 1}}); // newest first
    log.append({7, 99, Timestamp{4, 0}});  // obsolete
    log.append({7, 98, Timestamp{5, 0}});  // obsolete (tie-break on node)
    DurableDb db;
    EXPECT_EQ(log.applyTo(db), 1u);
    EXPECT_EQ(db[7].value, 100u);
    EXPECT_EQ(db[7].ts, (Timestamp{5, 1}));
}

TEST(DurableLog, ApplyFromSuffix)
{
    DurableLog log;
    log.append({1, 10, Timestamp{0, 0}});
    log.append({1, 11, Timestamp{1, 0}});
    log.append({1, 12, Timestamp{2, 0}});
    DurableDb db;
    EXPECT_EQ(log.applyTo(db, 2), 1u);
    EXPECT_EQ(db[1].value, 12u);
}

TEST(DurableLog, EntriesSinceForRecoveryShipping)
{
    DurableLog log;
    for (int i = 0; i < 5; ++i)
        log.append({static_cast<kv::Key>(i), 0u,
                    Timestamp{i, 0}});
    auto suffix = log.entriesSince(3);
    ASSERT_EQ(suffix.size(), 2u);
    EXPECT_EQ(suffix[0].key, 3u);
    EXPECT_EQ(suffix[1].key, 4u);
    EXPECT_TRUE(log.entriesSince(5).empty());
    EXPECT_TRUE(log.entriesSince(99).empty());
}

TEST(DurableLog, ApplyEntriesSkipsStaleAgainstExistingDb)
{
    DurableDb db;
    db[3] = DurableRecord{55, Timestamp{10, 0}};
    std::vector<LogEntry> shipped = {
        {3, 44, Timestamp{9, 4}},  // stale vs db
        {3, 66, Timestamp{11, 0}}, // fresh
        {4, 77, Timestamp{1, 0}},  // new key
    };
    EXPECT_EQ(applyEntries(db, shipped), 2u);
    EXPECT_EQ(db[3].value, 66u);
    EXPECT_EQ(db[4].value, 77u);
}

TEST(DurableLog, ConcurrentAppendsAllLand)
{
    DurableLog log;
    constexpr int threads = 8, per_thread = 500;
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&log, t] {
            for (int i = 0; i < per_thread; ++i)
                log.append({static_cast<kv::Key>(t), 1u,
                            Timestamp{i, t}});
        });
    }
    for (auto &th : pool)
        th.join();
    EXPECT_EQ(log.size(),
              static_cast<std::size_t>(threads * per_thread));
    // Replay: per key the max version must win.
    DurableDb db;
    log.applyTo(db);
    for (int t = 0; t < threads; ++t)
        EXPECT_EQ(db[static_cast<kv::Key>(t)].ts,
                  (Timestamp{per_thread - 1, t}));
}

TEST(DurableLog, ClearEmptiesLog)
{
    DurableLog log;
    log.append({1, 2, Timestamp{0, 0}});
    log.clear();
    EXPECT_EQ(log.size(), 0u);
    EXPECT_EQ(log.compactedThrough(), 0u);
}

TEST(DurableLogCompaction, PreservesApplyResult)
{
    DurableLog log;
    for (int i = 0; i < 10; ++i)
        log.append({static_cast<kv::Key>(i % 3),
                    static_cast<kv::Value>(100 + i), Timestamp{i, 0}});
    DurableDb before;
    log.applyTo(before);

    log.compact(6);
    EXPECT_EQ(log.compactedThrough(), 6u);
    EXPECT_EQ(log.size(), 10u); // global indices keep counting

    DurableDb after;
    log.applyTo(after);
    ASSERT_EQ(after.size(), before.size());
    for (const auto &[k, rec] : before) {
        EXPECT_EQ(after[k].value, rec.value) << "key " << k;
        EXPECT_EQ(after[k].ts, rec.ts) << "key " << k;
    }
}

TEST(DurableLogCompaction, SnapshotKeepsNewestPerKey)
{
    DurableLog log;
    log.append({5, 1, Timestamp{0, 0}});
    log.append({5, 2, Timestamp{1, 0}});
    log.append({5, 3, Timestamp{2, 0}});
    log.compact(3);
    // The snapshot holds one entry per key: the newest.
    auto shipped = log.exportSince(0);
    ASSERT_EQ(shipped.size(), 1u);
    EXPECT_EQ(shipped[0].value, 3u);
    EXPECT_EQ(shipped[0].ts, (Timestamp{2, 0}));
}

TEST(DurableLogCompaction, ExportCombinesSnapshotAndSuffix)
{
    DurableLog log;
    log.append({1, 10, Timestamp{0, 0}});
    log.append({2, 20, Timestamp{0, 1}});
    log.compact(2);
    log.append({1, 11, Timestamp{1, 0}});

    auto shipped = log.exportSince(0);
    EXPECT_EQ(shipped.size(), 3u); // 2 snapshot keys + 1 suffix entry
    DurableDb db;
    applyEntries(db, shipped);
    EXPECT_EQ(db[1].value, 11u);
    EXPECT_EQ(db[2].value, 20u);

    // A suffix-only export skips the snapshot.
    auto suffix = log.exportSince(2);
    ASSERT_EQ(suffix.size(), 1u);
    EXPECT_EQ(suffix[0].value, 11u);
}

TEST(DurableLogCompaction, AppendsContinueAfterCompaction)
{
    DurableLog log;
    log.append({1, 10, Timestamp{0, 0}});
    log.compact(1);
    EXPECT_EQ(log.append({1, 11, Timestamp{1, 0}}), 1u);
    EXPECT_EQ(log.entryAt(1).value, 11u);
    EXPECT_TRUE(log.entriesSince(2).empty());
}

TEST(DurableLogCompaction, IdempotentAndPartial)
{
    DurableLog log;
    for (int i = 0; i < 4; ++i)
        log.append({static_cast<kv::Key>(i), 1u, Timestamp{i, 0}});
    log.compact(2);
    log.compact(2); // no-op
    log.compact(1); // already past; no-op
    EXPECT_EQ(log.compactedThrough(), 2u);
    log.compact(4);
    EXPECT_EQ(log.compactedThrough(), 4u);
    DurableDb db;
    log.applyTo(db);
    EXPECT_EQ(db.size(), 4u);
}
