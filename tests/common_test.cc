/**
 * @file
 * Unit tests for common utilities: RNG determinism, distributions,
 * units.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/random.hh"
#include "common/units.hh"

using namespace minos;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, NextUintRespectsBound)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextUint(17), 17u);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(4);
    for (int i = 0; i < 10000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, NextIntCoversInclusiveRange)
{
    Rng rng(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        auto v = rng.nextInt(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= (v == -2);
        saw_hi |= (v == 2);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(UniformKeys, RoughlyFlat)
{
    Rng rng(11);
    UniformKeys keys(10);
    std::map<std::uint64_t, int> counts;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        counts[keys.next(rng)]++;
    EXPECT_EQ(counts.size(), 10u);
    for (auto &[k, c] : counts) {
        EXPECT_GT(c, n / 10 * 0.9);
        EXPECT_LT(c, n / 10 * 1.1);
    }
}

TEST(ZipfianKeys, RanksAreSkewed)
{
    Rng rng(12);
    ZipfianKeys keys(1000, 0.99);
    std::map<std::uint64_t, int> counts;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        counts[keys.nextRank(rng)]++;
    // Rank 0 must be by far the hottest; top-10 ranks >> uniform share.
    int top = counts[0];
    EXPECT_GT(top, n / 20); // rank 0 alone > 5% of draws
    int top10 = 0;
    for (std::uint64_t r = 0; r < 10; ++r)
        top10 += counts[r];
    EXPECT_GT(top10, n / 5); // top-10 > 20%
}

TEST(ZipfianKeys, ScrambleSpreadsHotKeys)
{
    Rng rng(13);
    ZipfianKeys keys(1000, 0.99);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 100000; ++i)
        counts[keys.next(rng)]++;
    // The hottest scrambled key should NOT be key 0 in general, and all
    // keys must stay inside the key space.
    for (auto &[k, c] : counts)
        EXPECT_LT(k, 1000u);
    // There is still one dominant key somewhere.
    int max_count = 0;
    for (auto &[k, c] : counts)
        max_count = std::max(max_count, c);
    EXPECT_GT(max_count, 5000);
}

TEST(ZipfianKeys, SingleKeyDegenerate)
{
    Rng rng(14);
    ZipfianKeys keys(1, 0.5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(keys.next(rng), 0u);
}

TEST(Fnv1a, KnownDistinctValues)
{
    EXPECT_NE(fnv1aHash64(0), fnv1aHash64(1));
    EXPECT_NE(fnv1aHash64(1), fnv1aHash64(2));
    EXPECT_EQ(fnv1aHash64(42), fnv1aHash64(42));
}

TEST(Units, SerializationDelayBasics)
{
    // 1 GB/s = 1 byte per ns.
    EXPECT_EQ(serializationDelay(1000, 1e9), 1000);
    // Rounds up partial ns.
    EXPECT_EQ(serializationDelay(1, 1e9), 1);
    EXPECT_EQ(serializationDelay(3, 2e9), 2); // 1.5ns -> 2
    // Zero/infinite bandwidth yields zero delay.
    EXPECT_EQ(serializationDelay(1000, 0.0), 0);
}

TEST(Units, Constants)
{
    EXPECT_EQ(US, 1000);
    EXPECT_EQ(MS, 1000 * 1000);
    EXPECT_EQ(SEC, 1000 * 1000 * 1000);
    EXPECT_EQ(KiB, 1024u);
}
