/**
 * @file
 * Unit tests for the YCSB-style generator and the DeathStar Login model.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/deathstar.hh"
#include "workload/ycsb.hh"

using namespace minos;
using namespace minos::workload;

TEST(Ycsb, DeterministicPerNodeStreams)
{
    YcsbConfig cfg;
    cfg.numRecords = 1000;
    YcsbGenerator a(cfg, 2), b(cfg, 2), c(cfg, 3);
    auto sa = a.stream(100), sb = b.stream(100), sc = c.stream(100);
    EXPECT_EQ(sa, sb);
    EXPECT_NE(sa, sc);
}

TEST(Ycsb, WriteFractionRespected)
{
    YcsbConfig cfg;
    cfg.numRecords = 1000;
    for (double frac : {0.2, 0.5, 0.8, 1.0}) {
        cfg.writeFraction = frac;
        YcsbGenerator gen(cfg, 0);
        int writes = 0;
        const int n = 20000;
        for (int i = 0; i < n; ++i)
            writes += (gen.next().type == OpType::Write);
        EXPECT_NEAR(static_cast<double>(writes) / n, frac, 0.02)
            << "fraction " << frac;
    }
}

TEST(Ycsb, AllReadsWhenFractionZero)
{
    YcsbConfig cfg;
    cfg.numRecords = 10;
    cfg.writeFraction = 0.0;
    YcsbGenerator gen(cfg, 0);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(gen.next().type, OpType::Read);
}

TEST(Ycsb, KeysInRange)
{
    YcsbConfig cfg;
    cfg.numRecords = 37;
    for (auto dist : {KeyDist::Zipfian, KeyDist::Uniform}) {
        cfg.dist = dist;
        YcsbGenerator gen(cfg, 1);
        for (int i = 0; i < 5000; ++i)
            EXPECT_LT(gen.next().key, 37u);
    }
}

TEST(Ycsb, WriteValuesAreUniquePerNode)
{
    YcsbConfig cfg;
    cfg.numRecords = 100;
    cfg.writeFraction = 1.0;
    YcsbGenerator g0(cfg, 0), g1(cfg, 1);
    std::set<kv::Value> values;
    for (int i = 0; i < 1000; ++i) {
        values.insert(g0.next().value);
        values.insert(g1.next().value);
    }
    // Two nodes x 1000 writes: all payload tokens distinct.
    EXPECT_EQ(values.size(), 2000u);
}

TEST(Ycsb, TinyDatabaseFromFig14)
{
    // Fig. 14 sweeps the DB down to 10 records; the generator must cope.
    YcsbConfig cfg;
    cfg.numRecords = 10;
    YcsbGenerator gen(cfg, 0);
    auto ops = gen.stream(1000);
    for (const auto &op : ops)
        EXPECT_LT(op.key, 10u);
}

TEST(YcsbPresets, StandardMixes)
{
    auto a = ycsbPreset('A');
    EXPECT_DOUBLE_EQ(a.writeFraction, 0.5);
    EXPECT_DOUBLE_EQ(a.rmwFraction, 0.0);
    auto b = ycsbPreset('B');
    EXPECT_DOUBLE_EQ(b.writeFraction, 0.05);
    auto c = ycsbPreset('c'); // case-insensitive
    EXPECT_DOUBLE_EQ(c.writeFraction, 0.0);
    auto f = ycsbPreset('F');
    EXPECT_DOUBLE_EQ(f.writeFraction, 0.0);
    EXPECT_DOUBLE_EQ(f.rmwFraction, 0.5);
}

TEST(YcsbPresets, WorkloadFGeneratesRmwMix)
{
    YcsbConfig cfg = ycsbPreset('F');
    cfg.numRecords = 100;
    YcsbGenerator gen(cfg, 0);
    int reads = 0, writes = 0, rmws = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        switch (gen.next().type) {
          case OpType::Read: ++reads; break;
          case OpType::Write: ++writes; break;
          case OpType::ReadModifyWrite: ++rmws; break;
        }
    }
    EXPECT_EQ(writes, 0);
    EXPECT_NEAR(static_cast<double>(rmws) / n, 0.5, 0.02);
    EXPECT_NEAR(static_cast<double>(reads) / n, 0.5, 0.02);
}

TEST(YcsbPresets, RmwOpsCarryPayload)
{
    YcsbConfig cfg = ycsbPreset('F');
    cfg.numRecords = 10;
    YcsbGenerator gen(cfg, 1);
    for (int i = 0; i < 1000; ++i) {
        Op op = gen.next();
        if (op.type == OpType::ReadModifyWrite) {
            EXPECT_NE(op.value, 0u);
        }
    }
}

TEST(DeathStar, SpecsMatchPaperSetup)
{
    auto social = socialNetworkLogin();
    auto media = mediaMicroservicesLogin();
    EXPECT_EQ(social.app, "Social");
    EXPECT_EQ(media.app, "Media");
    EXPECT_EQ(social.function, "Login");
    EXPECT_EQ(media.function, "Login");
    // Paper §VIII-C: 500us node-to-node RTT.
    EXPECT_EQ(social.rttNs, 500 * US);
    EXPECT_EQ(media.rttNs, 500 * US);
    EXPECT_GT(social.numSets, 0);
    EXPECT_GT(social.numGets, 0);
    // Social Network touches more state than Media.
    EXPECT_GE(social.numSets + social.numGets,
              media.numSets + media.numGets);
}

TEST(DeathStar, InvocationOpsMatchSpec)
{
    auto spec = socialNetworkLogin();
    Rng rng(9);
    UniformKeys keys(500);
    std::uint64_t next_value = 100;
    auto ops = invocationOps(spec, keys, rng, next_value);
    ASSERT_EQ(ops.size(),
              static_cast<std::size_t>(spec.numGets + spec.numSets));
    int gets = 0, sets = 0;
    for (const auto &op : ops) {
        if (op.type == OpType::Read)
            ++gets;
        else
            ++sets;
        EXPECT_LT(op.key, 500u);
    }
    EXPECT_EQ(gets, spec.numGets);
    EXPECT_EQ(sets, spec.numSets);
    // next_value advanced once per SET.
    EXPECT_EQ(next_value, 100u + static_cast<std::uint64_t>(spec.numSets));
}
