/**
 * @file
 * Shared helpers for the per-figure benchmark harnesses.
 *
 * Each bench binary registers its experiment points as google-benchmark
 * cases (Iterations(1) — the simulator is deterministic, repetition adds
 * nothing), reports the simulated metrics as counters, and finally
 * prints the paper-shaped table for the figure it regenerates.
 *
 * Absolute numbers are not expected to match the paper (the substrate is
 * a calibrated simulator, not the authors' testbed); the *shape* — who
 * wins, by what factor, where crossovers fall — is the reproduction
 * target. See EXPERIMENTS.md.
 */

#ifndef MINOS_BENCH_BENCH_UTIL_HH
#define MINOS_BENCH_BENCH_UTIL_HH

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "simproto/cluster_b.hh"
#include "simproto/driver.hh"
#include "snic/cluster_o.hh"
#include "stats/stats.hh"

namespace minos::bench {

/** Requests per node for workload-driven figures (env-overridable). */
inline std::uint64_t
benchRequestsPerNode(std::uint64_t dflt = 1000)
{
    if (const char *env = std::getenv("MINOS_BENCH_REQS"))
        return std::strtoull(env, nullptr, 10);
    return dflt;
}

/** Paper-default cluster configuration (Tables II/III). */
inline simproto::ClusterConfig
paperConfig(int nodes = 5)
{
    simproto::ClusterConfig cfg;
    cfg.numNodes = nodes;
    cfg.numRecords = 100'000;
    return cfg;
}

/** Paper-default YCSB driver configuration (§VII). */
inline simproto::DriverConfig
paperDriver(const simproto::ClusterConfig &cfg,
            double write_fraction = 0.5)
{
    simproto::DriverConfig dc;
    dc.requestsPerNode = benchRequestsPerNode();
    dc.workersPerNode = cfg.hostCores;
    dc.ycsb.numRecords = cfg.numRecords;
    dc.ycsb.writeFraction = write_fraction;
    return dc;
}

/** Run one MINOS-B experiment point. */
inline simproto::RunResult
runB(const simproto::ClusterConfig &cfg, simproto::PersistModel model,
     const simproto::DriverConfig &dc,
     simproto::OffloadOptions opts = simproto::OffloadOptions::minosB())
{
    sim::Simulator sim;
    simproto::ClusterB cluster(sim, cfg, model, opts);
    return simproto::runWorkload(sim, cluster, dc);
}

/** Run one MINOS-O experiment point. */
inline simproto::RunResult
runO(const simproto::ClusterConfig &cfg, simproto::PersistModel model,
     const simproto::DriverConfig &dc,
     simproto::OffloadOptions opts = simproto::OffloadOptions::minosO())
{
    sim::Simulator sim;
    snic::ClusterO cluster(sim, cfg, model, opts);
    return simproto::runWorkload(sim, cluster, dc);
}

/**
 * RegisterBenchmark shim: the packaged google-benchmark predates the
 * std::string overload, so convert here (the library copies the name).
 */
template <typename Fn>
inline ::benchmark::internal::Benchmark *
minosRegisterBench(const std::string &name, Fn &&fn)
{
    return ::benchmark::RegisterBenchmark(name.c_str(),
                                          std::forward<Fn>(fn));
}

/** Print the figure banner before the table. */
inline void
printBanner(const char *figure, const char *what)
{
    std::printf("\n=== %s: %s ===\n", figure, what);
    std::printf("(simulated machine, Tables II/III parameters; "
                "shape-level reproduction)\n\n");
}

/**
 * The bench process's metrics registry: every experiment point records
 * its results here (recordRunMetrics), and the bench prints the whole
 * blob once at exit (printMetricsBlob) so trajectory tooling gets one
 * uniform machine-readable line per bench.
 */
inline obs::MetricsRegistry &
metricsRegistry()
{
    static obs::MetricsRegistry reg;
    return reg;
}

/** Record one workload run's metrics under "<point>." . */
inline void
recordRunMetrics(const std::string &point,
                 const simproto::RunResult &res)
{
    simproto::registerRunMetrics(metricsRegistry(), point + ".", res);
}

/** Record one microservice run's metrics under "<point>." . */
inline void
recordMicroMetrics(const std::string &point,
                   const simproto::MicroserviceResult &res)
{
    auto &reg = metricsRegistry();
    if (!res.e2eLat.empty())
        reg.histogram(point + ".e2e_lat_ns", res.e2eLat);
    obs::registerEventCore(reg, point + ".sim.", res.eventCore);
}

/** Print the accumulated metrics blob (one line, grep-able). */
inline void
printMetricsBlob(const char *bench)
{
    std::printf("\nMINOS_METRICS %s %s\n", bench,
                metricsRegistry().json().c_str());
}

} // namespace minos::bench

#endif // MINOS_BENCH_BENCH_UTIL_HH
