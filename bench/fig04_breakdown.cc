/**
 * @file
 * Figure 4: average MINOS-B write-transaction latency broken into
 * communication and computation time, per <consistency, persistency>
 * model (paper §IV).
 *
 * Expected shape: stricter persistency -> higher total latency (driven
 * by computation: persists in the critical path); communication is the
 * largest contributor at 51-73% of each model's write time.
 */

#include "bench_util.hh"

using namespace minos;
using namespace minos::bench;
using namespace minos::simproto;

namespace {

struct Fig4Row
{
    PersistModel model;
    double commUs;
    double compUs;
};

std::vector<Fig4Row> rows;

void
runPoint(benchmark::State &state, PersistModel model)
{
    for (auto _ : state) {
        ClusterConfig cfg = paperConfig();
        DriverConfig dc = paperDriver(cfg);
        RunResult res = runB(cfg, model, dc);
        state.counters["comm_ns"] = res.breakdown.meanComm();
        state.counters["comp_ns"] = res.breakdown.meanComp();
        state.counters["comm_frac"] = res.breakdown.commFraction();
        recordRunMetrics(std::string("fig04.") +
                             std::string(shortModelName(model)),
                         res);
        rows.push_back(Fig4Row{model, res.breakdown.meanComm() / 1e3,
                               res.breakdown.meanComp() / 1e3});
    }
}

void
printTable()
{
    printBanner("Figure 4",
                "MINOS-B write latency: communication vs computation");
    stats::Table table({"model", "comm (us)", "comp (us)", "total (us)",
                        "comm %"});
    for (const auto &r : rows) {
        double total = r.commUs + r.compUs;
        table.addRow({std::string(modelName(r.model)),
                      stats::Table::fmt(r.commUs),
                      stats::Table::fmt(r.compUs),
                      stats::Table::fmt(total),
                      stats::Table::fmt(100.0 * r.commUs / total, 1)});
    }
    std::printf("%s\n", table.str().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    for (PersistModel m : allModels) {
        minosRegisterBench(
            std::string("Fig04/") + std::string(shortModelName(m)),
            [m](benchmark::State &st) { runPoint(st, m); })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTable();
    printMetricsBlob("fig04");
    return 0;
}
