/**
 * @file
 * Tables II & III: the simulated-machine parameter set, printed for the
 * record, plus genuine microbenchmarks of the substrate primitives the
 * protocols lean on (timestamp packing/CAS, zipfian generation,
 * hashtable lookup, durable-log append, simulator event throughput).
 */

#include "bench_util.hh"

#include "kv/hashtable.hh"
#include "nvm/log.hh"

using namespace minos;
using namespace minos::bench;

namespace {

void
printParameterTables()
{
    simproto::ClusterConfig cfg = paperConfig();
    printBanner("Tables II/III", "simulated system parameters");
    stats::Table t({"parameter", "value"});
    t.addRow({"nodes (default)", std::to_string(cfg.numNodes)});
    t.addRow({"host cores / SNIC cores",
              std::to_string(cfg.hostCores) + " / " +
                  std::to_string(cfg.snicCores)});
    t.addRow({"host / SNIC sync latency",
              std::to_string(cfg.hostSyncNs) + " / " +
                  std::to_string(cfg.snicSyncNs) + " ns"});
    t.addRow({"PCIe latency / BW",
              std::to_string(cfg.pcieLatencyNs) + " ns / 6.25 GB/s"});
    t.addRow({"network latency / BW",
              std::to_string(cfg.netLatencyNs) + " ns / 7 GB/s"});
    t.addRow({"send one INV / one ACK",
              std::to_string(cfg.sendInvNs) + " / " +
                  std::to_string(cfg.sendAckNs) + " ns"});
    t.addRow({"inter-message gap (no bcast)",
              std::to_string(cfg.interMsgGapNs) + " ns"});
    t.addRow({"vFIFO / dFIFO write (1KB)",
              std::to_string(cfg.vfifoWriteNs) + " / " +
                  std::to_string(cfg.dfifoWriteNs) + " ns"});
    t.addRow({"vFIFO / dFIFO entries",
              std::to_string(cfg.vfifoEntries) + " / " +
                  std::to_string(cfg.dfifoEntries)});
    t.addRow({"emulated NVM persist (1KB)",
              std::to_string(cfg.persistNsPerKb) + " ns"});
    t.addRow({"record size",
              std::to_string(cfg.recordBytes) + " B"});
    t.addRow({"records per node", std::to_string(cfg.numRecords)});
    std::printf("%s\n", t.str().c_str());
}

void
timestampPack(benchmark::State &state)
{
    kv::Timestamp ts{123456, 7};
    std::uint64_t acc = 0;
    for (auto _ : state) {
        acc += ts.pack();
        ts.version += 1;
        benchmark::DoNotOptimize(acc);
    }
}

void
timestampRaise(benchmark::State &state)
{
    kv::AtomicRecord rec;
    std::int64_t v = 0;
    for (auto _ : state) {
        kv::AtomicRecord::raiseTs(rec.volatileTs,
                                  kv::Timestamp{v++, 0});
    }
}

void
zipfianNext(benchmark::State &state)
{
    Rng rng(1);
    ZipfianKeys keys(100'000);
    std::uint64_t acc = 0;
    for (auto _ : state) {
        acc += keys.next(rng);
        benchmark::DoNotOptimize(acc);
    }
}

void
hashtableFind(benchmark::State &state)
{
    kv::HashTable table(1 << 16);
    for (kv::Key k = 0; k < 100'000; ++k)
        table.getOrCreate(k);
    Rng rng(2);
    for (auto _ : state) {
        auto *rec = table.find(rng.nextUint(100'000));
        benchmark::DoNotOptimize(rec);
    }
}

void
logAppend(benchmark::State &state)
{
    nvm::DurableLog log;
    std::int64_t v = 0;
    for (auto _ : state)
        log.append({static_cast<kv::Key>(v % 1024), 1,
                    kv::Timestamp{v++, 0}});
}

void
simulatorEvents(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulator sim;
        for (int i = 0; i < 10'000; ++i)
            sim.after(i, [] {});
        sim.run();
        benchmark::DoNotOptimize(sim.eventsExecuted());
        // The run is deterministic, so the last iteration's counters
        // stand for all of them in the metrics blob.
        obs::registerEventCore(metricsRegistry(), "micro.sim.",
                               sim.counters());
    }
    state.SetItemsProcessed(state.iterations() * 10'000);
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    minosRegisterBench("Micro/timestamp_pack", timestampPack);
    minosRegisterBench("Micro/timestamp_raise_cas",
                                 timestampRaise);
    minosRegisterBench("Micro/zipfian_next", zipfianNext);
    minosRegisterBench("Micro/hashtable_find", hashtableFind);
    minosRegisterBench("Micro/log_append", logAppend);
    minosRegisterBench("Micro/sim_10k_events",
                                 simulatorEvents)
        ->Unit(benchmark::kMillisecond);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printParameterTables();
    printMetricsBlob("tables");
    return 0;
}
