/**
 * @file
 * Leaderless vs leader-based (paper §I/§II-A): the DDP protocols target
 * leaderless systems because they "deliver higher performance and are
 * scalable" compared to designs where one leader coordinates every
 * write. This harness quantifies that claim with the identical protocol
 * engine in both roles.
 *
 * Expected shape: leader-based write throughput plateaus near one
 * node's coordination capacity as the cluster grows, while the
 * leaderless engine keeps scaling; non-leader writes also pay a
 * forwarding round trip in latency.
 */

#include "bench_util.hh"

#include "simproto/cluster_leader.hh"

using namespace minos;
using namespace minos::bench;
using namespace minos::simproto;

namespace {

struct Point
{
    bool leaderless;
    int nodes;
    double writeLat;
    double writeTput;
};

std::vector<Point> points;

void
runPoint(benchmark::State &state, bool leaderless, int nodes)
{
    for (auto _ : state) {
        ClusterConfig cfg = paperConfig(nodes);
        DriverConfig dc = paperDriver(cfg);
        dc.requestsPerNode = benchRequestsPerNode(600);
        sim::Simulator sim;
        RunResult res;
        if (leaderless) {
            ClusterB cluster(sim, cfg, PersistModel::Synch);
            res = runWorkload(sim, cluster, dc);
        } else {
            ClusterLeader cluster(sim, cfg, PersistModel::Synch);
            res = runWorkload(sim, cluster, dc);
        }
        recordRunMetrics(std::string("leader.") +
                             (leaderless ? "leaderless.n" : "leader.n") +
                             std::to_string(nodes),
                         res);
        points.push_back(Point{leaderless, nodes, res.writeLat.mean(),
                               res.writeThroughput()});
        state.counters["write_lat_ns"] = res.writeLat.mean();
        state.counters["write_tput"] = res.writeThroughput();
    }
}

const Point *
find(bool leaderless, int nodes)
{
    for (const auto &p : points)
        if (p.leaderless == leaderless && p.nodes == nodes)
            return &p;
    return nullptr;
}

void
printTable()
{
    printBanner("Leaderless vs leader-based",
                "write latency / throughput, <Lin,Synch>, 50/50, "
                "normalized to leader-based @ 2 nodes");
    const Point *base = find(false, 2);
    MINOS_ASSERT(base, "baseline point missing");
    stats::Table t({"design", "metric", "2", "4", "6", "8"});
    for (bool leaderless : {false, true}) {
        std::vector<std::string> lat = {
            leaderless ? "leaderless (MINOS-B)" : "leader-based",
            "latency"};
        std::vector<std::string> tput = {"", "throughput"};
        for (int n : {2, 4, 6, 8}) {
            const Point *p = find(leaderless, n);
            lat.push_back(stats::Table::fmt(p->writeLat /
                                            base->writeLat));
            tput.push_back(stats::Table::fmt(p->writeTput /
                                             base->writeTput));
        }
        t.addRow(lat);
        t.addRow(tput);
    }
    std::printf("%s\n", t.str().c_str());
    const Point *l8 = find(false, 8);
    const Point *f8 = find(true, 8);
    std::printf("At 8 nodes the leaderless design delivers %.2fx the "
                "leader-based write throughput.\n",
                f8->writeTput / l8->writeTput);
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    for (bool leaderless : {false, true}) {
        for (int nodes : {2, 4, 6, 8}) {
            std::string name =
                std::string("Leader/") +
                (leaderless ? "leaderless/n" : "leader/n") +
                std::to_string(nodes);
            minosRegisterBench(name,
                               [leaderless, nodes](
                                   benchmark::State &st) {
                                   runPoint(st, leaderless, nodes);
                               })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTable();
    printMetricsBlob("leader");
    return 0;
}
