/**
 * @file
 * Extension experiment: the standard YCSB core workloads (A
 * update-heavy, B read-mostly, C read-only, F read-modify-write) on
 * MINOS-B vs MINOS-O. The paper evaluates parameterized mixes (Fig. 9);
 * this harness covers the named industry presets, including RMW, which
 * stresses the read-lock/write interaction.
 *
 * Expected shape: MINOS-O wins everywhere writes exist; the gap closes
 * as the workload becomes read-dominated (reads are local in both
 * engines) and vanishes for workload C.
 */

#include "bench_util.hh"

using namespace minos;
using namespace minos::bench;
using namespace minos::simproto;

namespace {

struct Point
{
    char workload;
    bool offload;
    double writeLat, readLat, tput;
};

std::vector<Point> points;

void
runPoint(benchmark::State &state, char wl, bool offload)
{
    for (auto _ : state) {
        ClusterConfig cfg = paperConfig();
        DriverConfig dc;
        dc.requestsPerNode = benchRequestsPerNode();
        dc.workersPerNode = cfg.hostCores;
        dc.ycsb = workload::ycsbPreset(wl);
        dc.ycsb.numRecords = cfg.numRecords;
        RunResult res = offload
                            ? runO(cfg, PersistModel::Synch, dc)
                            : runB(cfg, PersistModel::Synch, dc);
        recordRunMetrics(std::string("ycsb.") + std::string(1, wl) +
                             (offload ? ".o" : ".b"),
                         res);
        points.push_back(Point{wl, offload, res.writeLat.mean(),
                               res.readLat.mean(),
                               res.totalThroughput()});
        state.counters["tput"] = res.totalThroughput();
    }
}

const Point *
find(char wl, bool offload)
{
    for (const auto &p : points)
        if (p.workload == wl && p.offload == offload)
            return &p;
    return nullptr;
}

void
printTable()
{
    printBanner("YCSB core workloads (extension)",
                "A/B/C/F on MINOS-B vs MINOS-O, <Lin,Synch>, 5 nodes");
    stats::Table t({"workload", "engine", "write lat (us)",
                    "read lat (us)", "tput (Mops/s)", "O/B tput"});
    for (char wl : {'A', 'B', 'C', 'F'}) {
        const Point *b = find(wl, false);
        const Point *o = find(wl, true);
        for (bool off : {false, true}) {
            const Point *p = off ? o : b;
            t.addRow({std::string(1, wl), off ? "O" : "B",
                      p->writeLat > 0
                          ? stats::Table::fmt(p->writeLat / 1e3)
                          : "-",
                      stats::Table::fmt(p->readLat / 1e3),
                      stats::Table::fmt(p->tput / 1e6),
                      off ? stats::Table::fmt(o->tput / b->tput) : ""});
        }
    }
    std::printf("%s\n", t.str().c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    for (char wl : {'A', 'B', 'C', 'F'}) {
        for (bool off : {false, true}) {
            std::string name = std::string("Ycsb/") +
                               std::string(1, wl) +
                               (off ? "/O" : "/B");
            minosRegisterBench(name,
                               [wl, off](benchmark::State &st) {
                                   runPoint(st, wl, off);
                               })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTable();
    printMetricsBlob("ycsb");
    return 0;
}
