/**
 * @file
 * Figure 12: impact of the MINOS-O optimizations on average write
 * latency under a 100%-write <Lin,Synch> workload, normalized to
 * MINOS-B. Configurations:
 *   B, B+bcast, B+batch, Combined (offload+coherence+no-WRLock),
 *   Combined+bcast, Combined+batch, MINOS-O (all).
 *
 * Expected shape: bcast/batch alone have no noticeable effect;
 * Combined cuts write latency by ~43%; Combined+bcast is about the
 * same as Combined; Combined+batch is *slower* than Combined (the SNIC
 * must unpack the batch per destination); MINOS-O (all three) is best,
 * ~50% below MINOS-B.
 */

#include "bench_util.hh"

using namespace minos;
using namespace minos::bench;
using namespace minos::simproto;

namespace {

struct Config
{
    const char *name;
    bool offload;
    bool batching;
    bool broadcast;
};

const std::vector<Config> configs = {
    {"MINOS-B", false, false, false},
    {"B+bcast", false, false, true},
    {"B+batch", false, true, false},
    {"Offl+Coh+WRLock (Combined)", true, false, false},
    {"Combined+bcast", true, false, true},
    {"Combined+batch", true, true, false},
    {"MINOS-O (all)", true, true, true},
};

std::vector<double> latencies(configs.size(), 0.0);

void
runPoint(benchmark::State &state, std::size_t idx)
{
    const Config &c = configs[idx];
    for (auto _ : state) {
        ClusterConfig cfg = paperConfig();
        DriverConfig dc = paperDriver(cfg, /*write_fraction=*/1.0);
        OffloadOptions opts;
        opts.offload = c.offload;
        opts.batching = c.batching;
        opts.broadcast = c.broadcast;
        RunResult res = c.offload
                            ? runO(cfg, PersistModel::Synch, dc, opts)
                            : runB(cfg, PersistModel::Synch, dc, opts);
        recordRunMetrics(std::string("fig12.cfg") + std::to_string(idx),
                         res);
        latencies[idx] = res.writeLat.mean();
        state.counters["write_lat_ns"] = res.writeLat.mean();
    }
}

void
printTable()
{
    printBanner("Figure 12",
                "MINOS-O optimization ablation, write latency "
                "normalized to MINOS-B (<Lin,Synch>, 100% writes)");
    stats::Table t({"configuration", "norm. write latency",
                    "reduction vs B"});
    double base = latencies[0];
    for (std::size_t i = 0; i < configs.size(); ++i) {
        t.addRow({configs[i].name,
                  stats::Table::fmt(latencies[i] / base),
                  stats::Table::fmt(100.0 * (1.0 - latencies[i] / base),
                                    1) +
                      "%"});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("Paper shape: Combined ~-43%%; Combined+batch slower "
                "than Combined; MINOS-O ~-51%%.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    for (std::size_t i = 0; i < configs.size(); ++i) {
        minosRegisterBench(
            std::string("Fig12/") + configs[i].name,
            [i](benchmark::State &st) { runPoint(st, i); })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTable();
    printMetricsBlob("fig12");
    return 0;
}
