/**
 * @file
 * Figure 11: end-to-end latency of the DeathStarBench UserService.Login
 * function (Social Network and Media Microservices) on MINOS-B vs
 * MINOS-O, per model, on a 16-node cluster with a 500 us node-to-node
 * round trip. Normalization: B <Lin,Synch> Social.
 *
 * Expected shape: MINOS-O reduces the end-to-end latency across the
 * board, by ~35% on average.
 */

#include "bench_util.hh"

using namespace minos;
using namespace minos::bench;
using namespace minos::simproto;

namespace {

struct Point
{
    PersistModel model;
    bool offload;
    std::string app;
    double e2e;
};

std::vector<Point> points;

void
runPoint(benchmark::State &state, PersistModel model, bool offload,
         const workload::FunctionSpec &spec)
{
    for (auto _ : state) {
        ClusterConfig cfg = paperConfig(16);
        MicroserviceConfig mc;
        mc.invocationsPerNode = 15;
        mc.workersPerNode = 2;
        mc.numRecords = cfg.numRecords;

        sim::Simulator sim;
        MicroserviceResult res = [&] {
            if (offload) {
                snic::ClusterO cluster(sim, cfg, model);
                return runMicroservice(sim, cluster, spec, mc);
            }
            ClusterB cluster(sim, cfg, model);
            return runMicroservice(sim, cluster, spec, mc);
        }();
        recordMicroMetrics(std::string("fig11.") +
                               std::string(shortModelName(model)) +
                               (offload ? ".o." : ".b.") + spec.app,
                           res);
        points.push_back(
            Point{model, offload, spec.app, res.e2eLat.mean()});
        state.counters["e2e_us"] = res.e2eLat.mean() / 1e3;
    }
}

const Point *
find(PersistModel m, bool off, const std::string &app)
{
    for (const auto &p : points)
        if (p.model == m && p.offload == off && p.app == app)
            return &p;
    return nullptr;
}

void
printTable()
{
    const Point *base = find(PersistModel::Synch, false, "Social");
    MINOS_ASSERT(base, "baseline point missing");

    printBanner("Figure 11",
                "end-to-end Login latency, normalized to B "
                "<Lin,Synch> Social (16 nodes, 500us RTT)");
    stats::Table t({"model", "Social B", "Social O", "Media B",
                    "Media O"});
    double reduction = 0;
    int n = 0;
    for (PersistModel m : allModels) {
        std::vector<std::string> row = {std::string(modelName(m))};
        for (const char *app : {"Social", "Media"}) {
            const Point *b = find(m, false, app);
            const Point *o = find(m, true, app);
            row.push_back(stats::Table::fmt(b->e2e / base->e2e));
            row.push_back(stats::Table::fmt(o->e2e / base->e2e));
            reduction += 1.0 - o->e2e / b->e2e;
            ++n;
        }
        t.addRow(row);
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("Average end-to-end latency reduction: %.1f%% "
                "(paper: ~35%%)\n",
                100.0 * reduction / n);
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    const auto social = workload::socialNetworkLogin();
    const auto media = workload::mediaMicroservicesLogin();
    for (PersistModel m : allModels) {
        for (bool off : {false, true}) {
            for (const auto &spec : {social, media}) {
                std::string name = std::string("Fig11/") +
                                   std::string(shortModelName(m)) +
                                   (off ? "/O/" : "/B/") + spec.app;
                minosRegisterBench(
                    name,
                    [m, off, spec](benchmark::State &st) {
                        runPoint(st, m, off, spec);
                    })
                    ->Iterations(1)
                    ->Unit(benchmark::kMillisecond);
            }
        }
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTable();
    printMetricsBlob("fig11");
    return 0;
}
