/**
 * @file
 * Real-time microbenchmarks of the threaded MINOS-B runtime (the §IV
 * "distributed machine"): blocking client write/read cost per model on
 * a 3-node in-process cluster with real thread concurrency. Unlike the
 * figure harnesses, these measure actual wall-clock time, so
 * google-benchmark's repetition machinery applies.
 */

#include <benchmark/benchmark.h>

#include "proto/tnode.hh"

using namespace minos;
using namespace minos::proto;

namespace {

ThreadedConfig
benchConfig(PersistModel model)
{
    ThreadedConfig cfg;
    cfg.numNodes = 3;
    cfg.model = model;
    cfg.numRecords = 1024;
    cfg.persistNsPerKb = 300; // keep the emulated persist short
    cfg.wireLatency = std::chrono::microseconds(1);
    return cfg;
}

void
threadedWrite(benchmark::State &state, PersistModel model)
{
    ThreadedCluster cluster(benchConfig(model));
    kv::Key key = 0;
    for (auto _ : state) {
        cluster.node(0).write(key, 1);
        key = (key + 1) % 512;
    }
    state.SetItemsProcessed(state.iterations());
}

void
threadedRead(benchmark::State &state)
{
    ThreadedCluster cluster(benchConfig(PersistModel::Synch));
    cluster.node(0).write(7, 42);
    for (auto _ : state) {
        auto v = cluster.node(1).read(7);
        benchmark::DoNotOptimize(v);
    }
    state.SetItemsProcessed(state.iterations());
}

void
threadedConflictingWriters(benchmark::State &state)
{
    // Two client threads on different nodes hammering one key: measures
    // snatch/WRLock contention end to end.
    ThreadedCluster cluster(benchConfig(PersistModel::Synch));
    std::atomic<bool> stop{false};
    std::thread rival([&] {
        while (!stop.load(std::memory_order_acquire))
            cluster.node(1).write(0, 2);
    });
    for (auto _ : state)
        cluster.node(0).write(0, 1);
    stop.store(true, std::memory_order_release);
    rival.join();
    state.SetItemsProcessed(state.iterations());
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    for (PersistModel m : simproto::allModels) {
        benchmark::RegisterBenchmark(
            (std::string("Threaded/write/") +
             std::string(simproto::shortModelName(m)))
                .c_str(),
            [m](benchmark::State &st) { threadedWrite(st, m); })
            ->Unit(benchmark::kMicrosecond)
            ->MinTime(0.2);
    }
    benchmark::RegisterBenchmark("Threaded/read", threadedRead)
        ->Unit(benchmark::kMicrosecond)
        ->MinTime(0.2);
    benchmark::RegisterBenchmark("Threaded/conflicting_writers",
                                 threadedConflictingWriters)
        ->Unit(benchmark::kMicrosecond)
        ->MinTime(0.2);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
