/**
 * @file
 * Raw event-throughput microbenchmark for the simulator's event core.
 *
 * Measures events/sec on three workload shapes:
 *  - timer_heavy: many outstanding timers, pseudorandom future delays
 *    (stresses the timed heap);
 *  - wakeup_heavy: `after(0, ...)` self-rescheduling chains — the
 *    condition/mailbox wakeup pattern (stresses the ready ring);
 *  - mixed: a 50/50 blend of the two;
 * plus coro_wakeup, a Condition ping-pong between coroutine processes
 * exercising the dedicated coroutine-resume representation.
 *
 * Each closure carries a 64-byte payload, mirroring the protocol
 * layers' message-delivery closures (node pointer + net::Message).
 *
 * Every workload runs on two engines:
 *  - legacy: a faithful replica of the pre-rewrite core
 *    (std::function events in a std::priority_queue, copy-out pop);
 *  - event_core: the production sim::Simulator (EventFn + ready ring +
 *    4-ary move-out heap).
 *
 * A global operator new/delete hook counts allocations; the bench
 * FAILS (exit 1) if the event core allocates during steady-state
 * dispatch of the three closure workloads. Output is a single JSON
 * object on stdout (see bench/README.md), so future PRs can track the
 * perf trajectory machine-readably. `MINOS_BENCH_EVENTS` scales the
 * per-workload event count (default 1,000,000).
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <queue>
#include <string>
#include <vector>

#include "common/units.hh"
#include "sim/condition.hh"
#include "sim/process.hh"
#include "sim/simulator.hh"

using minos::Tick;

// ---------------------------------------------------------------------
// Allocation-counting hook
// ---------------------------------------------------------------------

namespace {

std::uint64_t g_allocs = 0;
std::uint64_t g_frees = 0;
std::uint64_t g_allocBytes = 0;

struct AllocSnapshot
{
    std::uint64_t allocs, frees, bytes;
};

AllocSnapshot
allocSnapshot()
{
    return {g_allocs, g_frees, g_allocBytes};
}

} // namespace

void *
operator new(std::size_t n)
{
    ++g_allocs;
    g_allocBytes += n;
    if (void *p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void
operator delete(void *p) noexcept
{
    if (p) {
        ++g_frees;
        std::free(p);
    }
}

void
operator delete(void *p, std::size_t) noexcept
{
    ::operator delete(p);
}

void
operator delete[](void *p) noexcept
{
    ::operator delete(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    ::operator delete(p);
}

namespace {

// ---------------------------------------------------------------------
// Engines
// ---------------------------------------------------------------------

/** Replica of the pre-rewrite event core (the comparison baseline). */
class LegacyEngine
{
  public:
    static constexpr const char *name = "legacy";

    Tick now() const { return now_; }

    void
    after(Tick delay, std::function<void()> fn)
    {
        q_.push(Ev{now_ + delay, seq_++, std::move(fn)});
    }

    void
    run()
    {
        while (!q_.empty()) {
            // Copy-out pop, exactly as the old Simulator::run() did.
            Ev ev = q_.top();
            q_.pop();
            now_ = ev.when;
            ev.fn();
        }
    }

  private:
    struct Ev
    {
        Tick when;
        std::uint64_t seq;
        std::function<void()> fn;

        bool
        operator>(const Ev &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Ev, std::vector<Ev>, std::greater<>> q_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
};

/** The production event core. */
class ModernEngine
{
  public:
    static constexpr const char *name = "event_core";

    Tick now() const { return sim_.now(); }

    void
    after(Tick delay, minos::sim::EventFn fn)
    {
        sim_.after(delay, std::move(fn));
    }

    void run() { sim_.run(); }

    minos::sim::Simulator &sim() { return sim_; }

  private:
    minos::sim::Simulator sim_;
};

// ---------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------

/** Mirrors the size of a message-delivery capture (ptr + Message). */
struct Payload
{
    std::uint64_t words[8] = {1, 2, 3, 4, 5, 6, 7, 8};
};

enum class Shape
{
    TimerHeavy,
    WakeupHeavy,
    Mixed,
};

/**
 * A self-rescheduling event chain. Each firing consumes its payload
 * (checksummed into *sink so nothing is optimized away) and, while the
 * shared budget lasts, schedules its successor per the workload shape.
 */
template <typename Engine>
struct Chain
{
    Engine *eng;
    std::uint64_t *budget;
    std::uint64_t *sink;
    std::uint32_t rng;
    Shape shape;
    Payload payload;

    std::uint32_t
    next()
    {
        rng = rng * 1664525u + 1013904223u;
        return rng >> 8;
    }

    Tick
    nextDelay()
    {
        switch (shape) {
        case Shape::TimerHeavy:
            return 1 + static_cast<Tick>(next() % 1000);
        case Shape::WakeupHeavy:
            return 0;
        case Shape::Mixed:
            return (next() & 1)
                       ? 0
                       : 1 + static_cast<Tick>(next() % 1000);
        }
        return 0;
    }

    void
    operator()()
    {
        *sink += payload.words[0] + payload.words[7];
        if (*budget == 0)
            return;
        --*budget;
        Chain c = *this;
        ++c.payload.words[0];
        Tick d = c.nextDelay();
        eng->after(d, std::move(c));
    }
};

/** One measured run; the engine must be pre-warmed by the caller. */
template <typename Engine>
struct Measurement
{
    double ns = 0;
    std::uint64_t events = 0;
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t allocBytes = 0;
};

template <typename Engine>
Measurement<Engine>
runClosureWorkload(Engine &eng, Shape shape, std::uint64_t events,
                   int chains, std::uint64_t *sink)
{
    std::uint64_t budget = events;
    for (int i = 0; i < chains; ++i) {
        Chain<Engine> c{&eng, &budget, sink,
                        0x9e3779b9u + static_cast<std::uint32_t>(i),
                        shape, Payload{}};
        Tick d = c.nextDelay();
        eng.after(d, std::move(c));
    }

    AllocSnapshot before = allocSnapshot();
    auto t0 = std::chrono::steady_clock::now();
    eng.run();
    auto t1 = std::chrono::steady_clock::now();
    AllocSnapshot after = allocSnapshot();

    Measurement<Engine> m;
    m.ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
    m.events = events + static_cast<std::uint64_t>(chains);
    m.allocs = after.allocs - before.allocs;
    m.frees = after.frees - before.frees;
    m.allocBytes = after.bytes - before.bytes;
    return m;
}

// ---------------------------------------------------------------------
// Coroutine ping-pong (event_core only): raw resume representation
// ---------------------------------------------------------------------

minos::sim::Process
player(minos::sim::Condition *my, minos::sim::Condition *other,
       bool *token, bool mine, std::uint64_t *budget,
       std::uint64_t *sink)
{
    for (;;) {
        while (*token != mine)
            co_await my->wait();
        if (*budget == 0) {
            *token = !mine;
            other->notifyAll();
            break;
        }
        --*budget;
        *sink += *budget;
        *token = !mine;
        other->notifyAll();
    }
}

Measurement<ModernEngine>
runCoroWorkload(ModernEngine &eng, std::uint64_t events,
                std::uint64_t *sink)
{
    auto &sim = eng.sim();
    minos::sim::Condition a(sim), b(sim);
    bool token = true;
    std::uint64_t budget = events / 2; // two wakeup events per exchange
    std::uint64_t executedBefore = sim.eventsExecuted();
    sim.spawn(player(&a, &b, &token, true, &budget, sink));
    sim.spawn(player(&b, &a, &token, false, &budget, sink));

    AllocSnapshot before = allocSnapshot();
    auto t0 = std::chrono::steady_clock::now();
    sim.run();
    auto t1 = std::chrono::steady_clock::now();
    AllocSnapshot after = allocSnapshot();

    Measurement<ModernEngine> m;
    m.ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
    m.events = sim.eventsExecuted() - executedBefore;
    m.allocs = after.allocs - before.allocs;
    m.frees = after.frees - before.frees;
    m.allocBytes = after.bytes - before.bytes;
    return m;
}

// ---------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------

const char *
shapeName(Shape s)
{
    switch (s) {
    case Shape::TimerHeavy:
        return "timer_heavy";
    case Shape::WakeupHeavy:
        return "wakeup_heavy";
    case Shape::Mixed:
        return "mixed";
    }
    return "?";
}

template <typename Engine>
std::string
resultJson(const char *workload, const char *engine,
           const Measurement<Engine> &m)
{
    char buf[512];
    double eps = m.ns > 0 ? static_cast<double>(m.events) * 1e9 / m.ns
                          : 0.0;
    std::snprintf(buf, sizeof buf,
                  "    {\"workload\":\"%s\",\"engine\":\"%s\","
                  "\"events\":%llu,\"wall_ns\":%.0f,"
                  "\"events_per_sec\":%.0f,\"allocs\":%llu,"
                  "\"frees\":%llu,\"alloc_bytes\":%llu}",
                  workload, engine,
                  static_cast<unsigned long long>(m.events), m.ns, eps,
                  static_cast<unsigned long long>(m.allocs),
                  static_cast<unsigned long long>(m.frees),
                  static_cast<unsigned long long>(m.allocBytes));
    return buf;
}

} // namespace

int
main()
{
    std::uint64_t events = 1'000'000;
    if (const char *env = std::getenv("MINOS_BENCH_EVENTS")) {
        // Unparseable or zero values keep the default rather than
        // silently benchmarking nothing.
        if (std::uint64_t n = std::strtoull(env, nullptr, 10))
            events = n;
    }
    // Outstanding chains: timer_heavy keeps a deep heap, wakeup_heavy a
    // busy ring.
    const int timerChains = 4096;
    const int wakeupChains = 64;

    std::uint64_t sink = 0;
    std::vector<std::string> results;
    double legacyEps[3] = {0, 0, 0};
    double modernEps[3] = {0, 0, 0};
    std::uint64_t modernAllocs[3] = {0, 0, 0};
    const Shape shapes[3] = {Shape::TimerHeavy, Shape::WakeupHeavy,
                             Shape::Mixed};

    for (int i = 0; i < 3; ++i) {
        Shape shape = shapes[i];
        int chains =
            shape == Shape::WakeupHeavy ? wakeupChains : timerChains;

        {
            LegacyEngine eng;
            // Warm containers, then measure on the same engine.
            runClosureWorkload(eng, shape, events / 10, chains, &sink);
            auto m = runClosureWorkload(eng, shape, events, chains,
                                        &sink);
            legacyEps[i] =
                static_cast<double>(m.events) * 1e9 / m.ns;
            results.push_back(
                resultJson(shapeName(shape), LegacyEngine::name, m));
        }
        {
            ModernEngine eng;
            runClosureWorkload(eng, shape, events / 10, chains, &sink);
            auto m = runClosureWorkload(eng, shape, events, chains,
                                        &sink);
            modernEps[i] =
                static_cast<double>(m.events) * 1e9 / m.ns;
            modernAllocs[i] = m.allocs;
            results.push_back(
                resultJson(shapeName(shape), ModernEngine::name, m));
        }
    }

    // Dedicated coroutine-resume path (no legacy equivalent: the old
    // core had no raw-resume representation at all).
    ModernEngine coroEng;
    runCoroWorkload(coroEng, events / 10, &sink);
    auto coro = runCoroWorkload(coroEng, events, &sink);
    results.push_back(
        resultJson("coro_wakeup", ModernEngine::name, coro));
    auto counters = coroEng.sim().counters();

    bool zeroAlloc = modernAllocs[0] == 0 && modernAllocs[1] == 0 &&
                     modernAllocs[2] == 0;

    std::printf("{\n  \"bench\": \"sim_core\",\n");
    std::printf("  \"events_per_workload\": %llu,\n",
                static_cast<unsigned long long>(events));
    std::printf("  \"results\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i)
        std::printf("%s%s\n", results[i].c_str(),
                    i + 1 < results.size() ? "," : "");
    std::printf("  ],\n");
    std::printf("  \"speedup\": {");
    for (int i = 0; i < 3; ++i)
        std::printf("%s\"%s\": %.2f", i ? ", " : "",
                    shapeName(shapes[i]),
                    modernEps[i] / legacyEps[i]);
    std::printf("},\n");
    std::printf("  \"event_core_counters\": %s,\n",
                counters.json().c_str());
    std::printf("  \"steady_state_zero_alloc\": %s,\n",
                zeroAlloc ? "true" : "false");
    std::printf("  \"checksum\": %llu\n}\n",
                static_cast<unsigned long long>(sink));

    if (!zeroAlloc) {
        std::fprintf(stderr,
                     "sim_core: FAIL: event core allocated during "
                     "steady-state dispatch\n");
        return 1;
    }
    return 0;
}
