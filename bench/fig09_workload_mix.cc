/**
 * @file
 * Figure 9: normalized latency and throughput of writes (a) and reads
 * (b) for MINOS-B and MINOS-O, per model, with 20/50/80/100% write
 * (read) mixes. Normalization: MINOS-B <Lin,Synch> at the 50% mix.
 *
 * Expected shape: MINOS-O cuts write/read latency ~2-3x and raises
 * throughput ~2-3x across all models and mixes, and is much less
 * sensitive to the persistency model than MINOS-B.
 */

#include "bench_util.hh"

using namespace minos;
using namespace minos::bench;
using namespace minos::simproto;

namespace {

struct Point
{
    PersistModel model;
    bool offload;
    int writePct;
    double writeLat, readLat, writeTput, readTput;
};

std::vector<Point> points;

void
runPoint(benchmark::State &state, PersistModel model, bool offload,
         int write_pct)
{
    for (auto _ : state) {
        ClusterConfig cfg = paperConfig();
        DriverConfig dc = paperDriver(cfg, write_pct / 100.0);
        RunResult res =
            offload ? runO(cfg, model, dc) : runB(cfg, model, dc);
        recordRunMetrics(std::string("fig09.") +
                             std::string(shortModelName(model)) +
                             (offload ? ".o.w" : ".b.w") +
                             std::to_string(write_pct),
                         res);
        Point p;
        p.model = model;
        p.offload = offload;
        p.writePct = write_pct;
        p.writeLat = res.writeLat.mean();
        p.readLat = res.readLat.mean();
        p.writeTput = res.writeThroughput();
        p.readTput = res.readThroughput();
        points.push_back(p);
        state.counters["write_lat_ns"] = p.writeLat;
        state.counters["read_lat_ns"] = p.readLat;
        state.counters["write_tput"] = p.writeTput;
        state.counters["read_tput"] = p.readTput;
    }
}

const Point *
find(PersistModel m, bool offload, int pct)
{
    for (const auto &p : points)
        if (p.model == m && p.offload == offload && p.writePct == pct)
            return &p;
    return nullptr;
}

void
printTable()
{
    const Point *base = find(PersistModel::Synch, false, 50);
    MINOS_ASSERT(base, "baseline point missing");

    printBanner("Figure 9(a)",
                "normalized write latency / throughput (base: "
                "B <Lin,Synch> 50% writes)");
    stats::Table wt({"model", "engine", "20%", "50%", "80%", "100%"});
    for (PersistModel m : allModels) {
        for (bool off : {false, true}) {
            std::vector<std::string> lat_row = {
                std::string(modelName(m)), off ? "O lat" : "B lat"};
            std::vector<std::string> tput_row = {"", off ? "O tput"
                                                         : "B tput"};
            for (int pct : {20, 50, 80, 100}) {
                const Point *p = find(m, off, pct);
                lat_row.push_back(
                    stats::Table::fmt(p->writeLat / base->writeLat));
                tput_row.push_back(
                    stats::Table::fmt(p->writeTput / base->writeTput));
            }
            wt.addRow(lat_row);
            wt.addRow(tput_row);
        }
    }
    std::printf("%s\n", wt.str().c_str());

    printBanner("Figure 9(b)",
                "normalized read latency / throughput (base: "
                "B <Lin,Synch> 50% reads)");
    stats::Table rt({"model", "engine", "20%", "50%", "80%", "100%"});
    // Read percentages mirror the write ones: X% reads = (100-X)% writes,
    // except 100% reads which we run as write fraction 0.
    for (PersistModel m : allModels) {
        for (bool off : {false, true}) {
            std::vector<std::string> lat_row = {
                std::string(modelName(m)), off ? "O lat" : "B lat"};
            std::vector<std::string> tput_row = {"", off ? "O tput"
                                                         : "B tput"};
            for (int read_pct : {20, 50, 80, 100}) {
                const Point *p = find(m, off, 100 - read_pct);
                lat_row.push_back(stats::Table::fmt(
                    p->readLat / base->readLat));
                tput_row.push_back(stats::Table::fmt(
                    p->readTput / base->readTput));
            }
            rt.addRow(lat_row);
            rt.addRow(tput_row);
        }
    }
    std::printf("%s\n", rt.str().c_str());

    // Headline averages (paper: O's write/read latency 2.1x/2.2x lower;
    // throughput 2.3x higher).
    double lat_ratio = 0, tput_ratio = 0;
    int n = 0;
    for (PersistModel m : allModels) {
        for (int pct : {20, 50, 80}) { // mixes with both ops present
            const Point *b = find(m, false, pct);
            const Point *o = find(m, true, pct);
            lat_ratio += b->writeLat / o->writeLat;
            tput_ratio += (b->writeTput + b->readTput) > 0
                              ? (o->writeTput + o->readTput) /
                                    (b->writeTput + b->readTput)
                              : 0;
            ++n;
        }
    }
    std::printf("Average write-latency reduction (B/O): %.2fx "
                "(paper: ~2.1x)\n",
                lat_ratio / n);
    std::printf("Average throughput gain (O/B): %.2fx (paper: ~2.3x)\n",
                tput_ratio / n);
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    for (PersistModel m : allModels) {
        for (bool off : {false, true}) {
            for (int pct : {0, 20, 50, 80, 100}) {
                std::string name =
                    std::string("Fig09/") +
                    std::string(shortModelName(m)) +
                    (off ? "/O/w" : "/B/w") + std::to_string(pct);
                minosRegisterBench(
                    name,
                    [m, off, pct](benchmark::State &st) {
                        runPoint(st, m, off, pct);
                    })
                    ->Iterations(1)
                    ->Unit(benchmark::kMillisecond);
            }
        }
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTable();
    printMetricsBlob("fig09");
    return 0;
}
