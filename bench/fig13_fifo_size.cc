/**
 * @file
 * Figure 13: sensitivity of MINOS-O's average write latency to the
 * vFIFO/dFIFO size (1, 2, 3, 4, 5, 100 entries), normalized to
 * unlimited entries. <Lin,Synch>, 50/50 mix.
 *
 * Expected shape: 1-2 entries cost extra latency (arriving INV bursts
 * stall on enqueue); with 3-5 entries the latency is essentially the
 * same as with unlimited entries.
 */

#include "bench_util.hh"

using namespace minos;
using namespace minos::bench;
using namespace minos::simproto;

namespace {

// 0 encodes "unlimited".
const std::vector<int> sizes = {1, 2, 3, 4, 5, 100, 0};

std::vector<double> latencies(sizes.size(), 0.0);

void
runPoint(benchmark::State &state, std::size_t idx)
{
    for (auto _ : state) {
        ClusterConfig cfg = paperConfig();
        cfg.vfifoEntries = sizes[idx];
        cfg.dfifoEntries = sizes[idx];
        DriverConfig dc = paperDriver(cfg);
        RunResult res = runO(cfg, PersistModel::Synch, dc);
        recordRunMetrics(std::string("fig13.entries") +
                             (sizes[idx] == 0
                                  ? std::string("_unlimited")
                                  : std::to_string(sizes[idx])),
                         res);
        latencies[idx] = res.writeLat.mean();
        state.counters["write_lat_ns"] = res.writeLat.mean();
    }
}

void
printTable()
{
    printBanner("Figure 13",
                "MINOS-O write latency vs FIFO size, normalized to "
                "unlimited entries (<Lin,Synch>, 50/50)");
    stats::Table t({"vFIFO/dFIFO entries", "norm. write latency"});
    double unlimited = latencies.back();
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        std::string label =
            sizes[i] == 0 ? "unlimited" : std::to_string(sizes[i]);
        t.addRow({label, stats::Table::fmt(latencies[i] / unlimited)});
    }
    std::printf("%s\n", t.str().c_str());
    std::printf("Paper shape: 3-5 entries attain (approximately) the "
                "unlimited-FIFO latency.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        std::string label =
            sizes[i] == 0 ? "unlimited" : std::to_string(sizes[i]);
        minosRegisterBench(
            std::string("Fig13/entries_") + label,
            [i](benchmark::State &st) { runPoint(st, i); })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTable();
    printMetricsBlob("fig13");
    return 0;
}
