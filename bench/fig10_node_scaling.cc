/**
 * @file
 * Figure 10: normalized latency and throughput of writes (a) and reads
 * (b) for MINOS-B and MINOS-O at 2/4/6/8/10 nodes (50/50 zipfian mix).
 * Normalization: MINOS-B <Lin,Synch> at 2 nodes.
 *
 * Expected shape: as nodes increase, MINOS-B's latency grows quickly
 * and throughput stays roughly flat; MINOS-O's throughput scales with
 * node count while latency grows only modestly (writes) or not at all
 * (reads).
 */

#include "bench_util.hh"

using namespace minos;
using namespace minos::bench;
using namespace minos::simproto;

namespace {

const std::vector<int> nodeCounts = {2, 4, 6, 8, 10};

struct Point
{
    PersistModel model;
    bool offload;
    int nodes;
    double writeLat, readLat, writeTput, readTput;
};

std::vector<Point> points;

void
runPoint(benchmark::State &state, PersistModel model, bool offload,
         int nodes)
{
    for (auto _ : state) {
        ClusterConfig cfg = paperConfig(nodes);
        DriverConfig dc = paperDriver(cfg);
        dc.requestsPerNode = benchRequestsPerNode(600);
        RunResult res =
            offload ? runO(cfg, model, dc) : runB(cfg, model, dc);
        recordRunMetrics(std::string("fig10.") +
                             std::string(shortModelName(model)) +
                             (offload ? ".o.n" : ".b.n") +
                             std::to_string(nodes),
                         res);
        points.push_back(Point{model, offload, nodes,
                               res.writeLat.mean(), res.readLat.mean(),
                               res.writeThroughput(),
                               res.readThroughput()});
        state.counters["write_lat_ns"] = res.writeLat.mean();
        state.counters["total_tput"] = res.totalThroughput();
    }
}

const Point *
find(PersistModel m, bool off, int nodes)
{
    for (const auto &p : points)
        if (p.model == m && p.offload == off && p.nodes == nodes)
            return &p;
    return nullptr;
}

void
printTable()
{
    const Point *base = find(PersistModel::Synch, false, 2);
    MINOS_ASSERT(base, "baseline point missing");

    auto emit = [&](const char *title, auto lat_of, auto tput_of,
                    double lat_base, double tput_base) {
        printBanner("Figure 10", title);
        stats::Table t({"model", "engine", "2", "4", "6", "8", "10"});
        for (PersistModel m : allModels) {
            for (bool off : {false, true}) {
                std::vector<std::string> lat_row = {
                    std::string(modelName(m)), off ? "O lat" : "B lat"};
                std::vector<std::string> tput_row = {
                    "", off ? "O tput" : "B tput"};
                for (int n : nodeCounts) {
                    const Point *p = find(m, off, n);
                    lat_row.push_back(
                        stats::Table::fmt(lat_of(p) / lat_base));
                    tput_row.push_back(
                        stats::Table::fmt(tput_of(p) / tput_base));
                }
                t.addRow(lat_row);
                t.addRow(tput_row);
            }
        }
        std::printf("%s\n", t.str().c_str());
    };

    emit("(a) writes, normalized to B <Lin,Synch> @ 2 nodes",
         [](const Point *p) { return p->writeLat; },
         [](const Point *p) { return p->writeTput; }, base->writeLat,
         base->writeTput);
    emit("(b) reads, normalized to B <Lin,Synch> @ 2 nodes",
         [](const Point *p) { return p->readLat; },
         [](const Point *p) { return p->readTput; }, base->readLat,
         base->readTput);

    // Headline averages (paper: write/read latency 2.3x/3.1x lower for
    // O; throughput 2.4x higher).
    double wlat = 0, rlat = 0, tput = 0;
    int n = 0;
    for (PersistModel m : allModels) {
        for (int nodes : nodeCounts) {
            const Point *b = find(m, false, nodes);
            const Point *o = find(m, true, nodes);
            wlat += b->writeLat / o->writeLat;
            rlat += o->readLat > 0 ? b->readLat / o->readLat : 0;
            tput += (o->writeTput + o->readTput) /
                    (b->writeTput + b->readTput);
            ++n;
        }
    }
    std::printf("Average write-latency reduction (B/O): %.2fx "
                "(paper: ~2.3x)\n",
                wlat / n);
    std::printf("Average read-latency reduction (B/O): %.2fx "
                "(paper: ~3.1x)\n",
                rlat / n);
    std::printf("Average throughput gain (O/B): %.2fx (paper: ~2.4x)\n",
                tput / n);
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    for (PersistModel m : allModels) {
        for (bool off : {false, true}) {
            for (int nodes : nodeCounts) {
                std::string name = std::string("Fig10/") +
                                   std::string(shortModelName(m)) +
                                   (off ? "/O/n" : "/B/n") +
                                   std::to_string(nodes);
                minosRegisterBench(
                    name,
                    [m, off, nodes](benchmark::State &st) {
                        runPoint(st, m, off, nodes);
                    })
                    ->Iterations(1)
                    ->Unit(benchmark::kMillisecond);
            }
        }
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTable();
    printMetricsBlob("fig10");
    return 0;
}
