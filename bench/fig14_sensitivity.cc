/**
 * @file
 * Figure 14: write-transaction speedup of MINOS-O over MINOS-B under
 * (i) persist latency from 100 ns to 100 us per KB (Optane cache line
 * to SSD block), (ii) zipfian vs uniform keys, and (iii) database sizes
 * from 10 to 100 K records. <Lin,Synch>, 50/50 mix.
 *
 * Expected shape: speedups everywhere; they grow with the persist
 * latency (avg ~2.2x across the sweep) and sit around ~2x for both key
 * distributions and all database sizes.
 */

#include "bench_util.hh"

using namespace minos;
using namespace minos::bench;
using namespace minos::simproto;

namespace {

struct Point
{
    std::string group;
    std::string label;
    double speedup;
};

std::vector<Point> points;

double
speedupFor(const ClusterConfig &cfg, const DriverConfig &dc,
           const std::string &point)
{
    RunResult rb = runB(cfg, PersistModel::Synch, dc);
    RunResult ro = runO(cfg, PersistModel::Synch, dc);
    recordRunMetrics("fig14." + point + ".b", rb);
    recordRunMetrics("fig14." + point + ".o", ro);
    return rb.writeLat.mean() / ro.writeLat.mean();
}

void
persistPoint(benchmark::State &state, Tick ns_per_kb)
{
    for (auto _ : state) {
        ClusterConfig cfg = paperConfig();
        // Sweep the host NVM only: Table III fixes the SmartNIC dFIFO
        // at its own 1295 ns/KB write latency, which is exactly why the
        // offload benefit grows with slower host durable media.
        cfg.persistNsPerKb = ns_per_kb;
        DriverConfig dc = paperDriver(cfg);
        double s = speedupFor(cfg, dc,
                              "persist" + std::to_string(ns_per_kb));
        points.push_back({"persist latency",
                          std::to_string(ns_per_kb) + " ns/KB", s});
        state.counters["speedup"] = s;
    }
}

void
distPoint(benchmark::State &state, workload::KeyDist dist)
{
    for (auto _ : state) {
        ClusterConfig cfg = paperConfig();
        DriverConfig dc = paperDriver(cfg);
        dc.ycsb.dist = dist;
        double s = speedupFor(cfg, dc,
                              dist == workload::KeyDist::Zipfian
                                  ? "zipfian"
                                  : "uniform");
        points.push_back(
            {"key distribution",
             dist == workload::KeyDist::Zipfian ? "zipfian" : "uniform",
             s});
        state.counters["speedup"] = s;
    }
}

void
dbSizePoint(benchmark::State &state, std::uint64_t records)
{
    for (auto _ : state) {
        ClusterConfig cfg = paperConfig();
        cfg.numRecords = records;
        DriverConfig dc = paperDriver(cfg);
        dc.ycsb.numRecords = records;
        double s = speedupFor(cfg, dc, "db" + std::to_string(records));
        points.push_back(
            {"database size", std::to_string(records) + " records", s});
        state.counters["speedup"] = s;
    }
}

void
printTable()
{
    printBanner("Figure 14",
                "MINOS-O speedup over MINOS-B for write transactions "
                "(<Lin,Synch>, 50/50)");
    stats::Table t({"group", "setting", "speedup (x)"});
    for (const auto &p : points)
        t.addRow({p.group, p.label, stats::Table::fmt(p.speedup)});
    std::printf("%s\n", t.str().c_str());
    std::printf("Paper shape: speedup grows with persist latency "
                "(avg ~2.2x); ~2x for both distributions and all DB "
                "sizes.\n");
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    for (Tick ns : {Tick{100}, Tick{1295}, Tick{10000}, Tick{100000}}) {
        minosRegisterBench(
            std::string("Fig14/persist_") + std::to_string(ns) + "ns",
            [ns](benchmark::State &st) { persistPoint(st, ns); })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    for (auto dist :
         {workload::KeyDist::Zipfian, workload::KeyDist::Uniform}) {
        minosRegisterBench(
            std::string("Fig14/dist_") +
                (dist == workload::KeyDist::Zipfian ? "zipfian"
                                                    : "uniform"),
            [dist](benchmark::State &st) { distPoint(st, dist); })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    for (std::uint64_t recs : {10ull, 1000ull, 100000ull}) {
        minosRegisterBench(
            std::string("Fig14/db_") + std::to_string(recs),
            [recs](benchmark::State &st) { dbSizePoint(st, recs); })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printTable();
    printMetricsBlob("fig14");
    return 0;
}
