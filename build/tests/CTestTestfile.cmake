# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/kv_test[1]_include.cmake")
include("/root/repo/build/tests/nvm_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/simproto_test[1]_include.cmake")
include("/root/repo/build/tests/snic_test[1]_include.cmake")
include("/root/repo/build/tests/proto_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/check_test[1]_include.cmake")
include("/root/repo/build/tests/flags_test[1]_include.cmake")
include("/root/repo/build/tests/sweep_test[1]_include.cmake")
include("/root/repo/build/tests/network_property_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/fifo_test[1]_include.cmake")
include("/root/repo/build/tests/linearizability_test[1]_include.cmake")
include("/root/repo/build/tests/counters_test[1]_include.cmake")
