# Empty dependencies file for fifo_test.
# This may be replaced when dependencies are built.
