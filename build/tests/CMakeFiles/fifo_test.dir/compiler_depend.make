# Empty compiler generated dependencies file for fifo_test.
# This may be replaced when dependencies are built.
