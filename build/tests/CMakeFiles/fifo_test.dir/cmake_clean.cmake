file(REMOVE_RECURSE
  "CMakeFiles/fifo_test.dir/fifo_test.cc.o"
  "CMakeFiles/fifo_test.dir/fifo_test.cc.o.d"
  "fifo_test"
  "fifo_test.pdb"
  "fifo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fifo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
