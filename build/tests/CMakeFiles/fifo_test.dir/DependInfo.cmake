
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fifo_test.cc" "tests/CMakeFiles/fifo_test.dir/fifo_test.cc.o" "gcc" "tests/CMakeFiles/fifo_test.dir/fifo_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/snic/CMakeFiles/minos_snic.dir/DependInfo.cmake"
  "/root/repo/build/src/simproto/CMakeFiles/minos_simproto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/minos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nvm/CMakeFiles/minos_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/minos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/minos_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/minos_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/minos_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/minos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
