
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/linearizability_test.cc" "tests/CMakeFiles/linearizability_test.dir/linearizability_test.cc.o" "gcc" "tests/CMakeFiles/linearizability_test.dir/linearizability_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/check/CMakeFiles/minos_check.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/minos_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/minos_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/minos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/recovery/CMakeFiles/minos_recovery.dir/DependInfo.cmake"
  "/root/repo/build/src/nvm/CMakeFiles/minos_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/minos_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/minos_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
