file(REMOVE_RECURSE
  "CMakeFiles/snic_test.dir/snic_test.cc.o"
  "CMakeFiles/snic_test.dir/snic_test.cc.o.d"
  "snic_test"
  "snic_test.pdb"
  "snic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
