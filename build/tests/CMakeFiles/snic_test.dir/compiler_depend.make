# Empty compiler generated dependencies file for snic_test.
# This may be replaced when dependencies are built.
