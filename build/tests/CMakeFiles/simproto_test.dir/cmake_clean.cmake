file(REMOVE_RECURSE
  "CMakeFiles/simproto_test.dir/simproto_test.cc.o"
  "CMakeFiles/simproto_test.dir/simproto_test.cc.o.d"
  "simproto_test"
  "simproto_test.pdb"
  "simproto_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simproto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
