# Empty compiler generated dependencies file for simproto_test.
# This may be replaced when dependencies are built.
