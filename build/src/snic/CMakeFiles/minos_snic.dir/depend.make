# Empty dependencies file for minos_snic.
# This may be replaced when dependencies are built.
