file(REMOVE_RECURSE
  "CMakeFiles/minos_snic.dir/cluster_o.cc.o"
  "CMakeFiles/minos_snic.dir/cluster_o.cc.o.d"
  "CMakeFiles/minos_snic.dir/fifo.cc.o"
  "CMakeFiles/minos_snic.dir/fifo.cc.o.d"
  "CMakeFiles/minos_snic.dir/node_o.cc.o"
  "CMakeFiles/minos_snic.dir/node_o.cc.o.d"
  "libminos_snic.a"
  "libminos_snic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minos_snic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
