file(REMOVE_RECURSE
  "libminos_snic.a"
)
