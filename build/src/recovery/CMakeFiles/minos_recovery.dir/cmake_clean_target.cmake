file(REMOVE_RECURSE
  "libminos_recovery.a"
)
