# Empty dependencies file for minos_recovery.
# This may be replaced when dependencies are built.
