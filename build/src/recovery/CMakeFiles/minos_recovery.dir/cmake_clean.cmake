file(REMOVE_RECURSE
  "CMakeFiles/minos_recovery.dir/ctrl.cc.o"
  "CMakeFiles/minos_recovery.dir/ctrl.cc.o.d"
  "libminos_recovery.a"
  "libminos_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minos_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
