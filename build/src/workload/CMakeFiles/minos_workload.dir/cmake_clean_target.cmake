file(REMOVE_RECURSE
  "libminos_workload.a"
)
