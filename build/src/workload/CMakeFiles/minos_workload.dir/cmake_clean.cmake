file(REMOVE_RECURSE
  "CMakeFiles/minos_workload.dir/deathstar.cc.o"
  "CMakeFiles/minos_workload.dir/deathstar.cc.o.d"
  "CMakeFiles/minos_workload.dir/ycsb.cc.o"
  "CMakeFiles/minos_workload.dir/ycsb.cc.o.d"
  "libminos_workload.a"
  "libminos_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minos_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
