# Empty compiler generated dependencies file for minos_workload.
# This may be replaced when dependencies are built.
