# Empty dependencies file for minos_net.
# This may be replaced when dependencies are built.
