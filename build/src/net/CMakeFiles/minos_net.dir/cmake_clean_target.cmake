file(REMOVE_RECURSE
  "libminos_net.a"
)
