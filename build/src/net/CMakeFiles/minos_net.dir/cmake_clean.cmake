file(REMOVE_RECURSE
  "CMakeFiles/minos_net.dir/message.cc.o"
  "CMakeFiles/minos_net.dir/message.cc.o.d"
  "libminos_net.a"
  "libminos_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minos_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
