file(REMOVE_RECURSE
  "CMakeFiles/minos_check.dir/checker.cc.o"
  "CMakeFiles/minos_check.dir/checker.cc.o.d"
  "CMakeFiles/minos_check.dir/linearizability.cc.o"
  "CMakeFiles/minos_check.dir/linearizability.cc.o.d"
  "libminos_check.a"
  "libminos_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minos_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
