# Empty compiler generated dependencies file for minos_check.
# This may be replaced when dependencies are built.
