file(REMOVE_RECURSE
  "libminos_check.a"
)
