file(REMOVE_RECURSE
  "CMakeFiles/minos_nvm.dir/log.cc.o"
  "CMakeFiles/minos_nvm.dir/log.cc.o.d"
  "libminos_nvm.a"
  "libminos_nvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minos_nvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
