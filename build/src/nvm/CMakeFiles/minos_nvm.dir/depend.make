# Empty dependencies file for minos_nvm.
# This may be replaced when dependencies are built.
