file(REMOVE_RECURSE
  "libminos_nvm.a"
)
