# Empty dependencies file for minos_common.
# This may be replaced when dependencies are built.
