file(REMOVE_RECURSE
  "libminos_common.a"
)
