file(REMOVE_RECURSE
  "CMakeFiles/minos_common.dir/flags.cc.o"
  "CMakeFiles/minos_common.dir/flags.cc.o.d"
  "CMakeFiles/minos_common.dir/logging.cc.o"
  "CMakeFiles/minos_common.dir/logging.cc.o.d"
  "CMakeFiles/minos_common.dir/random.cc.o"
  "CMakeFiles/minos_common.dir/random.cc.o.d"
  "libminos_common.a"
  "libminos_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minos_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
