file(REMOVE_RECURSE
  "libminos_sim.a"
)
