# Empty compiler generated dependencies file for minos_sim.
# This may be replaced when dependencies are built.
