file(REMOVE_RECURSE
  "CMakeFiles/minos_sim.dir/network.cc.o"
  "CMakeFiles/minos_sim.dir/network.cc.o.d"
  "CMakeFiles/minos_sim.dir/simulator.cc.o"
  "CMakeFiles/minos_sim.dir/simulator.cc.o.d"
  "CMakeFiles/minos_sim.dir/trace.cc.o"
  "CMakeFiles/minos_sim.dir/trace.cc.o.d"
  "libminos_sim.a"
  "libminos_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minos_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
