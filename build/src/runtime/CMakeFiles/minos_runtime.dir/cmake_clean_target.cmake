file(REMOVE_RECURSE
  "libminos_runtime.a"
)
