# Empty compiler generated dependencies file for minos_runtime.
# This may be replaced when dependencies are built.
