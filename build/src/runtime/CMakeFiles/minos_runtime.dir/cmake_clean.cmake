file(REMOVE_RECURSE
  "CMakeFiles/minos_runtime.dir/fabric.cc.o"
  "CMakeFiles/minos_runtime.dir/fabric.cc.o.d"
  "libminos_runtime.a"
  "libminos_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minos_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
