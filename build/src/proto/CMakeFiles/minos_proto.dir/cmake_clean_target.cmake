file(REMOVE_RECURSE
  "libminos_proto.a"
)
