file(REMOVE_RECURSE
  "CMakeFiles/minos_proto.dir/tnode.cc.o"
  "CMakeFiles/minos_proto.dir/tnode.cc.o.d"
  "libminos_proto.a"
  "libminos_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minos_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
