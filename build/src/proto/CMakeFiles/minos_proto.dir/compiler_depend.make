# Empty compiler generated dependencies file for minos_proto.
# This may be replaced when dependencies are built.
