# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("kv")
subdirs("nvm")
subdirs("net")
subdirs("stats")
subdirs("workload")
subdirs("simproto")
subdirs("snic")
subdirs("recovery")
subdirs("runtime")
subdirs("proto")
subdirs("check")
