# Empty compiler generated dependencies file for minos_stats.
# This may be replaced when dependencies are built.
