file(REMOVE_RECURSE
  "libminos_stats.a"
)
