file(REMOVE_RECURSE
  "CMakeFiles/minos_stats.dir/stats.cc.o"
  "CMakeFiles/minos_stats.dir/stats.cc.o.d"
  "libminos_stats.a"
  "libminos_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minos_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
