file(REMOVE_RECURSE
  "libminos_kv.a"
)
