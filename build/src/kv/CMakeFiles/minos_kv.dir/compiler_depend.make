# Empty compiler generated dependencies file for minos_kv.
# This may be replaced when dependencies are built.
