file(REMOVE_RECURSE
  "CMakeFiles/minos_kv.dir/hashtable.cc.o"
  "CMakeFiles/minos_kv.dir/hashtable.cc.o.d"
  "libminos_kv.a"
  "libminos_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minos_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
