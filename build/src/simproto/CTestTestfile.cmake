# CMake generated Testfile for 
# Source directory: /root/repo/src/simproto
# Build directory: /root/repo/build/src/simproto
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
