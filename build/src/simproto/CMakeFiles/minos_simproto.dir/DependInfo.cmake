
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simproto/cluster_b.cc" "src/simproto/CMakeFiles/minos_simproto.dir/cluster_b.cc.o" "gcc" "src/simproto/CMakeFiles/minos_simproto.dir/cluster_b.cc.o.d"
  "/root/repo/src/simproto/cluster_leader.cc" "src/simproto/CMakeFiles/minos_simproto.dir/cluster_leader.cc.o" "gcc" "src/simproto/CMakeFiles/minos_simproto.dir/cluster_leader.cc.o.d"
  "/root/repo/src/simproto/counters.cc" "src/simproto/CMakeFiles/minos_simproto.dir/counters.cc.o" "gcc" "src/simproto/CMakeFiles/minos_simproto.dir/counters.cc.o.d"
  "/root/repo/src/simproto/driver.cc" "src/simproto/CMakeFiles/minos_simproto.dir/driver.cc.o" "gcc" "src/simproto/CMakeFiles/minos_simproto.dir/driver.cc.o.d"
  "/root/repo/src/simproto/node_b.cc" "src/simproto/CMakeFiles/minos_simproto.dir/node_b.cc.o" "gcc" "src/simproto/CMakeFiles/minos_simproto.dir/node_b.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/minos_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/minos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/minos_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/nvm/CMakeFiles/minos_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/minos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/minos_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/minos_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
