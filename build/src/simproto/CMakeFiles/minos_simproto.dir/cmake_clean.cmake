file(REMOVE_RECURSE
  "CMakeFiles/minos_simproto.dir/cluster_b.cc.o"
  "CMakeFiles/minos_simproto.dir/cluster_b.cc.o.d"
  "CMakeFiles/minos_simproto.dir/cluster_leader.cc.o"
  "CMakeFiles/minos_simproto.dir/cluster_leader.cc.o.d"
  "CMakeFiles/minos_simproto.dir/counters.cc.o"
  "CMakeFiles/minos_simproto.dir/counters.cc.o.d"
  "CMakeFiles/minos_simproto.dir/driver.cc.o"
  "CMakeFiles/minos_simproto.dir/driver.cc.o.d"
  "CMakeFiles/minos_simproto.dir/node_b.cc.o"
  "CMakeFiles/minos_simproto.dir/node_b.cc.o.d"
  "libminos_simproto.a"
  "libminos_simproto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minos_simproto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
