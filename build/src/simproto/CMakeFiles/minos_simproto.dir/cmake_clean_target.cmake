file(REMOVE_RECURSE
  "libminos_simproto.a"
)
