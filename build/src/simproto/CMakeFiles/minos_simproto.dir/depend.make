# Empty dependencies file for minos_simproto.
# This may be replaced when dependencies are built.
