file(REMOVE_RECURSE
  "CMakeFiles/fig09_workload_mix.dir/fig09_workload_mix.cc.o"
  "CMakeFiles/fig09_workload_mix.dir/fig09_workload_mix.cc.o.d"
  "fig09_workload_mix"
  "fig09_workload_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_workload_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
