# Empty dependencies file for fig09_workload_mix.
# This may be replaced when dependencies are built.
