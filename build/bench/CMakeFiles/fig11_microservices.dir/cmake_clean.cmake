file(REMOVE_RECURSE
  "CMakeFiles/fig11_microservices.dir/fig11_microservices.cc.o"
  "CMakeFiles/fig11_microservices.dir/fig11_microservices.cc.o.d"
  "fig11_microservices"
  "fig11_microservices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_microservices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
