# Empty compiler generated dependencies file for fig11_microservices.
# This may be replaced when dependencies are built.
