file(REMOVE_RECURSE
  "CMakeFiles/threaded_runtime.dir/threaded_runtime.cc.o"
  "CMakeFiles/threaded_runtime.dir/threaded_runtime.cc.o.d"
  "threaded_runtime"
  "threaded_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threaded_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
