# Empty compiler generated dependencies file for threaded_runtime.
# This may be replaced when dependencies are built.
