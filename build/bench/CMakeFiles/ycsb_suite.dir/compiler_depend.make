# Empty compiler generated dependencies file for ycsb_suite.
# This may be replaced when dependencies are built.
