file(REMOVE_RECURSE
  "CMakeFiles/ycsb_suite.dir/ycsb_suite.cc.o"
  "CMakeFiles/ycsb_suite.dir/ycsb_suite.cc.o.d"
  "ycsb_suite"
  "ycsb_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ycsb_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
