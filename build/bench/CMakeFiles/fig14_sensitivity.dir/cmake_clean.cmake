file(REMOVE_RECURSE
  "CMakeFiles/fig14_sensitivity.dir/fig14_sensitivity.cc.o"
  "CMakeFiles/fig14_sensitivity.dir/fig14_sensitivity.cc.o.d"
  "fig14_sensitivity"
  "fig14_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
