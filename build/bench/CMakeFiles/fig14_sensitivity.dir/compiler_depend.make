# Empty compiler generated dependencies file for fig14_sensitivity.
# This may be replaced when dependencies are built.
