# Empty dependencies file for tables_micro.
# This may be replaced when dependencies are built.
