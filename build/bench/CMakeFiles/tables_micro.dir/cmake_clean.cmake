file(REMOVE_RECURSE
  "CMakeFiles/tables_micro.dir/tables_micro.cc.o"
  "CMakeFiles/tables_micro.dir/tables_micro.cc.o.d"
  "tables_micro"
  "tables_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tables_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
