# Empty dependencies file for leader_baseline.
# This may be replaced when dependencies are built.
