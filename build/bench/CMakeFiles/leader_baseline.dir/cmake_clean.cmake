file(REMOVE_RECURSE
  "CMakeFiles/leader_baseline.dir/leader_baseline.cc.o"
  "CMakeFiles/leader_baseline.dir/leader_baseline.cc.o.d"
  "leader_baseline"
  "leader_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leader_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
