file(REMOVE_RECURSE
  "CMakeFiles/fig13_fifo_size.dir/fig13_fifo_size.cc.o"
  "CMakeFiles/fig13_fifo_size.dir/fig13_fifo_size.cc.o.d"
  "fig13_fifo_size"
  "fig13_fifo_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_fifo_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
