# Empty compiler generated dependencies file for fig13_fifo_size.
# This may be replaced when dependencies are built.
