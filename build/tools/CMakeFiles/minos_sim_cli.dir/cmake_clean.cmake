file(REMOVE_RECURSE
  "CMakeFiles/minos_sim_cli.dir/minos_sim.cc.o"
  "CMakeFiles/minos_sim_cli.dir/minos_sim.cc.o.d"
  "minos-sim"
  "minos-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minos_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
