# Empty compiler generated dependencies file for minos_sim_cli.
# This may be replaced when dependencies are built.
