file(REMOVE_RECURSE
  "CMakeFiles/minos_check_cli.dir/minos_check_tool.cc.o"
  "CMakeFiles/minos_check_cli.dir/minos_check_tool.cc.o.d"
  "minos-check"
  "minos-check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minos_check_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
