# Empty dependencies file for minos_check_cli.
# This may be replaced when dependencies are built.
