# Empty compiler generated dependencies file for model_check.
# This may be replaced when dependencies are built.
