file(REMOVE_RECURSE
  "CMakeFiles/model_check.dir/model_check.cpp.o"
  "CMakeFiles/model_check.dir/model_check.cpp.o.d"
  "model_check"
  "model_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
