/**
 * @file
 * Quickstart: build a simulated 5-node MINOS cluster, write and read a
 * few records through the DDP protocols, and print what happened.
 *
 *   $ ./examples/quickstart
 *
 * This exercises the core public API: pick an engine (MINOS-B runs the
 * protocols on the host CPUs, MINOS-O offloads them to the SmartNIC
 * model), pick a <Lin, persistency> model, then issue client writes and
 * reads from any node — the system is leaderless.
 */

#include <cstdio>

#include "simproto/cluster_b.hh"
#include "snic/cluster_o.hh"

using namespace minos;
using namespace minos::simproto;

namespace {

sim::Process
demo(sim::Simulator *sim, DdpCluster *cluster, const char *engine)
{
    std::printf("--- %s, %s ---\n", engine,
                std::string(modelName(cluster->model())).c_str());

    // Any node can coordinate a write (leaderless, paper §II-A).
    OpStats w1 = co_await cluster->clientWrite(/*node=*/0, /*key=*/42,
                                               /*value=*/1001, 0);
    std::printf("  write key=42 val=1001 via node 0: %ld ns%s\n",
                w1.latencyNs, w1.obsolete ? " (obsolete)" : "");

    OpStats w2 = co_await cluster->clientWrite(3, 42, 1002, 0);
    std::printf("  write key=42 val=1002 via node 3: %ld ns\n",
                w2.latencyNs);

    // Reads are always served locally (all records are replicated).
    for (kv::NodeId n = 0; n < cluster->numNodes(); ++n) {
        OpStats r = co_await cluster->clientRead(n, 42);
        std::printf("  read  key=42 at node %d -> %llu (%ld ns)\n", n,
                    static_cast<unsigned long long>(r.value),
                    r.latencyNs);
    }
    std::printf("  simulated time elapsed: %.2f us\n\n",
                static_cast<double>(sim->now()) / 1e3);
}

} // namespace

int
main()
{
    ClusterConfig cfg; // Table II/III defaults: 5 nodes, 100K records

    {
        sim::Simulator sim;
        ClusterB baseline(sim, cfg, PersistModel::Synch);
        sim.spawn(demo(&sim, &baseline, "MINOS-B (host CPUs)"));
        sim.run();
    }
    {
        sim::Simulator sim;
        snic::ClusterO offload(sim, cfg, PersistModel::Synch);
        sim.spawn(demo(&sim, &offload, "MINOS-O (SmartNIC offload)"));
        sim.run();
    }
    std::printf("Done. Try other persistency models: Synch, Strict, "
                "REnf, Event, Scope.\n");
    return 0;
}
