/**
 * @file
 * Failure detection and recovery (paper §III-E) on the threaded
 * MINOS-B runtime: write, disconnect a node, watch the timeout detector
 * shrink the cluster, keep writing, then reconnect the node and watch
 * log shipping catch it up.
 *
 *   $ ./examples/failure_recovery
 */

#include <chrono>
#include <cstdio>
#include <thread>

#include "proto/tnode.hh"

using namespace minos;
using namespace minos::proto;

namespace {

void
printLiveness(ThreadedCluster &cluster)
{
    for (int n = 0; n < cluster.config().numNodes; ++n) {
        std::printf("  node %d live-mask: 0x%llx\n", n,
                    static_cast<unsigned long long>(
                        cluster.node(n).liveMask()));
    }
}

} // namespace

int
main()
{
    ThreadedConfig cfg;
    cfg.numNodes = 3;
    cfg.model = PersistModel::Synch;
    cfg.numRecords = 64;
    cfg.ackTimeout = std::chrono::milliseconds(50);
    ThreadedCluster cluster(cfg);

    std::printf("1. normal operation: write key=1 via node 0\n");
    cluster.node(0).write(1, 100);
    std::printf("   node 2 reads key=1 -> %llu\n",
                static_cast<unsigned long long>(
                    cluster.node(2).read(1)));

    std::printf("2. disconnecting node 2 (crash injection)\n");
    cluster.failNode(2);

    std::printf("3. next write times out on node 2, declares it "
                "failed, and completes\n");
    cluster.node(0).write(1, 200);
    cluster.node(1).write(2, 300);
    printLiveness(cluster);

    std::printf("4. reconnecting node 2: JoinReq -> designated node "
                "ships its log -> replay\n");
    cluster.healAndRejoin(2);
    // Give the control plane a moment to ship and replay.
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    while (std::chrono::steady_clock::now() < deadline) {
        const auto *r1 = cluster.node(2).record(1);
        const auto *r2 = cluster.node(2).record(2);
        if (r1 && r2 && r1->value.load() == 200 &&
            r2->value.load() == 300)
            break;
        std::this_thread::yield();
    }
    std::printf("   node 2 caught up: key=1 -> %llu, key=2 -> %llu\n",
                static_cast<unsigned long long>(
                    cluster.node(2).read(1)),
                static_cast<unsigned long long>(
                    cluster.node(2).read(2)));
    printLiveness(cluster);

    std::printf("5. new writes replicate to the rejoined node again\n");
    cluster.node(0).write(3, 400);
    std::printf("   node 2 reads key=3 -> %llu\n",
                static_cast<unsigned long long>(
                    cluster.node(2).read(3)));

    auto db = cluster.node(2).durableDb();
    std::printf("6. node 2 durable state: key1=%llu key2=%llu "
                "key3=%llu (all recovered)\n",
                static_cast<unsigned long long>(db[1].value),
                static_cast<unsigned long long>(db[2].value),
                static_cast<unsigned long long>(db[3].value));
    return 0;
}
