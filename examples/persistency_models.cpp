/**
 * @file
 * Compare the five <Lin, persistency> DDP models side by side on both
 * engines: run the paper's default YCSB mix on a 5-node cluster and
 * print per-model write/read latency and throughput.
 *
 *   $ ./examples/persistency_models
 */

#include <cstdio>

#include "simproto/cluster_b.hh"
#include "simproto/driver.hh"
#include "snic/cluster_o.hh"
#include "stats/stats.hh"

using namespace minos;
using namespace minos::simproto;

int
main()
{
    ClusterConfig cfg;
    DriverConfig dc;
    dc.requestsPerNode = 1000;
    dc.ycsb.numRecords = cfg.numRecords;

    stats::Table table({"model", "engine", "write lat (us)",
                        "read lat (us)", "throughput (Mops/s)",
                        "obsolete writes"});

    for (PersistModel m : allModels) {
        for (bool offload : {false, true}) {
            sim::Simulator sim;
            RunResult res;
            if (offload) {
                snic::ClusterO cluster(sim, cfg, m);
                res = runWorkload(sim, cluster, dc);
            } else {
                ClusterB cluster(sim, cfg, m);
                res = runWorkload(sim, cluster, dc);
            }
            table.addRow({std::string(modelName(m)),
                          offload ? "MINOS-O" : "MINOS-B",
                          stats::Table::fmt(res.writeLat.mean() / 1e3),
                          stats::Table::fmt(res.readLat.mean() / 1e3),
                          stats::Table::fmt(res.totalThroughput() / 1e6),
                          std::to_string(res.obsoleteWrites)});
        }
    }

    std::printf("5 nodes, 50%%/50%% zipfian YCSB, %llu requests/node "
                "(paper §VII defaults)\n\n%s\n",
                static_cast<unsigned long long>(dc.requestsPerNode),
                table.str().c_str());
    std::printf("Stricter persistency costs more on MINOS-B; MINOS-O "
                "is largely insensitive to the model (paper Fig. 9).\n");
    return 0;
}
