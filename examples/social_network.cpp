/**
 * @file
 * Microservice scenario (paper §VIII-C): the DeathStarBench
 * UserService.Login function of the Social Network and Media
 * Microservices applications, running its GET/SET sequence through
 * MINOS on a 16-node cluster with a 500 us datacenter round trip.
 *
 *   $ ./examples/social_network
 */

#include <cstdio>

#include "simproto/cluster_b.hh"
#include "simproto/driver.hh"
#include "snic/cluster_o.hh"

using namespace minos;
using namespace minos::simproto;

int
main()
{
    ClusterConfig cfg;
    cfg.numNodes = 16;

    MicroserviceConfig mc;
    mc.invocationsPerNode = 10;
    mc.workersPerNode = 2;
    mc.numRecords = cfg.numRecords;

    stats::Table table({"application", "engine", "mean e2e (us)",
                        "p99 e2e (us)"});

    for (const auto &spec : {workload::socialNetworkLogin(),
                             workload::mediaMicroservicesLogin()}) {
        double b_mean = 0;
        for (bool offload : {false, true}) {
            sim::Simulator sim;
            MicroserviceResult res;
            if (offload) {
                snic::ClusterO cluster(sim, cfg, PersistModel::Synch);
                res = runMicroservice(sim, cluster, spec, mc);
            } else {
                ClusterB cluster(sim, cfg, PersistModel::Synch);
                res = runMicroservice(sim, cluster, spec, mc);
            }
            if (!offload)
                b_mean = res.e2eLat.mean();
            table.addRow({spec.app + " " + spec.function,
                          offload ? "MINOS-O" : "MINOS-B",
                          stats::Table::fmt(res.e2eLat.mean() / 1e3),
                          stats::Table::fmt(
                              static_cast<double>(res.e2eLat.p99()) /
                              1e3)});
            if (offload) {
                std::printf("%s: offload cuts end-to-end latency by "
                            "%.1f%%\n",
                            spec.app.c_str(),
                            100.0 *
                                (1.0 - res.e2eLat.mean() / b_mean));
            }
        }
    }

    std::printf("\n16 nodes, <Lin,Synch>, 500us service RTT "
                "(paper Fig. 11 setup)\n\n%s\n",
                table.str().c_str());
    return 0;
}
