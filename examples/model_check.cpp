/**
 * @file
 * Protocol verification (paper §VI): exhaustively model-check the
 * Table I correctness conditions for every <Lin, persistency> model
 * with two conflicting writers on three nodes, and demonstrate that the
 * checker catches a deliberately broken protocol.
 *
 *   $ ./examples/model_check
 */

#include <cstdio>

#include "check/checker.hh"
#include "stats/stats.hh"

using namespace minos;
using namespace minos::check;

int
main()
{
    stats::Table table({"model", "states", "transitions",
                        "final states", "violations"});

    for (auto model : simproto::allModels) {
        CheckConfig cfg;
        cfg.model = model;
        cfg.numNodes = 3;
        cfg.writers = {0, 1}; // two concurrent conflicting writes
        CheckResult res = checkModel(cfg);
        table.addRow({std::string(simproto::modelName(model)),
                      std::to_string(res.statesExplored),
                      std::to_string(res.transitions),
                      std::to_string(res.finalStates),
                      std::to_string(res.violations.size())});
    }

    std::printf("Table I verification: 3 nodes, 2 conflicting "
                "writers, adversarial message reordering\n\n%s\n",
                table.str().c_str());

    // Negative control: a protocol that releases the RDLock before the
    // ACKs arrive must be flagged.
    CheckConfig buggy;
    buggy.model = simproto::PersistModel::Synch;
    buggy.numNodes = 2;
    buggy.writers = {0};
    buggy.bugReleaseRdLockEarly = true;
    CheckResult res = checkModel(buggy);
    std::printf("negative control (early RDLock release): %zu "
                "violation(s) found, e.g.\n  %s: %s\n",
                res.violations.size(),
                res.violations.empty()
                    ? "(none)"
                    : res.violations.front().invariant.c_str(),
                res.violations.empty()
                    ? ""
                    : res.violations.front().detail.c_str());
    return res.violations.empty() ? 1 : 0;
}
