#!/usr/bin/env python3
"""Bench-regression pipeline for the MINOS simulator.

Two subcommands:

  collect  — run a pinned matrix of `minos-sim` configurations and write
             one JSON document with the tracked metrics per config.
  compare  — diff a freshly collected document against the committed
             baseline (BENCH_seed.json) with direction-aware relative
             thresholds; exit 1 on regression.

The simulator is seeded and discrete-event, so every tracked metric is
bit-reproducible for a given source tree: a non-zero delta always means
the code changed behavior, never that the machine was noisy. Wall-clock
time is deliberately NOT tracked. The default threshold still allows
small intentional shifts; when a change legitimately moves the numbers
further, regenerate the baseline with
`bench_compare.py collect --out BENCH_seed.json` and commit it alongside
the change that explains it.
"""

import argparse
import json
import subprocess
import sys

# The pinned benchmark matrix: small enough for CI, wide enough to cover
# both engines and the protocol corners (split ACKs, scoped persists).
MATRIX = [
    ("b_synch", ["--engine=b", "--model=synch"]),
    ("b_strict", ["--engine=b", "--model=strict"]),
    ("o_synch", ["--engine=o", "--model=synch"]),
    ("o_strict", ["--engine=o", "--model=strict"]),
    ("o_scope", ["--engine=o", "--model=scope"]),
]

COMMON_FLAGS = ["--requests=500", "--records=1000", "--seed=42"]

# Tracked metrics: (json pointer, direction). Direction "up" = higher is
# better (fail on drops), "down" = lower is better (fail on increases),
# "pin" = any drift beyond the threshold fails in either direction
# (simulator-efficiency guards from the zero-allocation event core).
METRICS = [
    ("gauges/run.write_tput_ops", "up"),
    ("gauges/run.total_tput_ops", "up"),
    ("gauges/run.duration_ns", "down"),
    ("histograms/run.write_lat_ns/p50", "down"),
    ("histograms/run.write_lat_ns/p95", "down"),
    ("histograms/run.write_lat_ns/p99", "down"),
    ("histograms/run.read_lat_ns/p50", "down"),
    ("counters/run.sim.events_executed", "pin"),
    ("counters/run.sim.heap_pushes", "pin"),
    ("gauges/run.sim.ring_hit_rate", "up"),
]


def lookup(doc, pointer):
    node = doc
    for part in pointer.split("/"):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def collect(args):
    out = {}
    for name, flags in MATRIX:
        cmd = ([args.sim] + flags + COMMON_FLAGS +
               ["--metrics-out", args.tmp])
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
        with open(args.tmp) as f:
            doc = json.load(f)
        metrics = {}
        for pointer, _ in METRICS:
            value = lookup(doc, pointer)
            if value is None:
                sys.exit(f"{name}: metric {pointer} missing from "
                         f"{args.tmp}")
            metrics[pointer] = value
        out[name] = metrics
        print(f"collected {name}", file=sys.stderr)
    with open(args.out, "w") as f:
        json.dump(out, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {args.out}", file=sys.stderr)


def compare(args):
    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.current) as f:
        cur = json.load(f)

    directions = dict(METRICS)
    failures = []
    rows = []
    for name in sorted(base):
        if name not in cur:
            failures.append(f"{name}: missing from {args.current}")
            continue
        for pointer, base_value in sorted(base[name].items()):
            cur_value = cur[name].get(pointer)
            if cur_value is None:
                failures.append(f"{name}/{pointer}: missing")
                continue
            if base_value == 0:
                delta = 0.0 if cur_value == 0 else float("inf")
            else:
                delta = (cur_value - base_value) / abs(base_value)
            direction = directions.get(pointer, "pin")
            if direction == "up":
                bad = delta < -args.threshold
            elif direction == "down":
                bad = delta > args.threshold
            else:
                bad = abs(delta) > args.threshold
            rows.append((name, pointer, base_value, cur_value,
                         delta, bad))
            if bad:
                failures.append(
                    f"{name}/{pointer}: {base_value} -> {cur_value} "
                    f"({delta:+.2%}, allowed ±{args.threshold:.0%} "
                    f"{direction})")

    width = max(len(f"{n}/{p}") for n, p, *_ in rows) if rows else 0
    for name, pointer, base_value, cur_value, delta, bad in rows:
        flag = " REGRESSION" if bad else ""
        print(f"{name + '/' + pointer:<{width}}  "
              f"{base_value:>14.6g}  {cur_value:>14.6g}  "
              f"{delta:+8.2%}{flag}")

    if failures:
        print(f"\n{len(failures)} bench regression(s) vs "
              f"{args.baseline}:", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        print("If this change is intentional, regenerate the baseline "
              "with:\n  python3 tools/bench_compare.py collect "
              f"--sim <minos-sim> --out {args.baseline}",
              file=sys.stderr)
        sys.exit(1)
    print(f"\nall {len(rows)} tracked metrics within "
          f"±{args.threshold:.0%} of {args.baseline}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    sub = ap.add_subparsers(dest="mode", required=True)

    c = sub.add_parser("collect", help="run the matrix, write metrics")
    c.add_argument("--sim", default="build/tools/minos-sim",
                   help="path to the minos-sim binary")
    c.add_argument("--out", default="bench.json")
    c.add_argument("--tmp", default="/tmp/bench_metrics.json",
                   help="scratch file for per-run --metrics-out")
    c.set_defaults(func=collect)

    p = sub.add_parser("compare", help="diff against the baseline")
    p.add_argument("--baseline", default="BENCH_seed.json")
    p.add_argument("--current", default="bench.json")
    p.add_argument("--threshold", type=float, default=0.05,
                   help="relative delta allowed (default 5%%)")
    p.set_defaults(func=compare)

    args = ap.parse_args()
    args.func(args)


if __name__ == "__main__":
    main()
