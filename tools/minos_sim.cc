/**
 * @file
 * minos_sim — run one simulated MINOS experiment from the command line.
 *
 * Usage:
 *   minos_sim [--engine=b|o] [--model=synch|strict|renf|event|scope]
 *             [--nodes=N] [--records=N] [--requests=N] [--workers=N]
 *             [--write-frac=F] [--dist=zipfian|uniform]
 *             [--persist-ns=N] [--vfifo=N] [--dfifo=N]
 *             [--no-batch] [--no-bcast] [--csv] [--seed=N]
 *             [--trace-out=FILE.json] [--trace-capacity=N]
 *             [--trace-categories=lock,fifo,...]
 *             [--metrics-out=FILE.json] [--phases]
 *             [--audit] [--audit-fatal]
 *
 * Prints a human-readable summary, or a CSV row with --csv (header via
 * --csv-header) so sweeps can be scripted:
 *
 *   for n in 2 4 6 8 10; do ./minos_sim --nodes=$n --csv; done
 *
 * --trace-out attaches the flight recorder and writes a Chrome
 * trace-event JSON (load it in Perfetto); --metrics-out writes the
 * run's metrics-registry JSON; --phases prints the per-phase write
 * latency table (see docs/observability.md).
 *
 * --audit attaches the online protocol auditors (obs/audit.hh) and
 * prints a violation report; --audit-fatal additionally exits 1 when
 * any invariant is breached, for CI smoke runs. --trace-categories
 * restricts which event categories the ring retains (auditors see the
 * full stream regardless).
 */

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "common/flags.hh"
#include "common/logging.hh"
#include "obs/audit.hh"
#include "obs/chrome_trace.hh"
#include "obs/metrics.hh"
#include "obs/phase.hh"
#include "simproto/cluster_b.hh"
#include "simproto/driver.hh"
#include "snic/cluster_o.hh"

using namespace minos;
using namespace minos::simproto;

namespace {

PersistModel
parseModel(const std::string &name)
{
    for (PersistModel m : allModels) {
        std::string s(shortModelName(m));
        for (auto &c : s)
            c = static_cast<char>(std::tolower(c));
        if (s == name)
            return m;
    }
    MINOS_FATAL("unknown model '", name,
                "' (expected synch|strict|renf|event|scope)");
}

const std::vector<std::string> knownFlags = {
    "engine", "model", "nodes", "records", "requests", "workers",
    "write-frac", "rmw-frac", "ycsb", "dist", "persist-ns", "vfifo", "dfifo", "no-batch",
    "no-bcast", "csv", "csv-header", "seed", "scope-size", "stats",
    "trace-out", "trace-capacity", "trace-categories", "metrics-out",
    "phases", "audit", "audit-fatal", "help",
};

void
writeFileOrDie(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    MINOS_ASSERT(out.good(), "cannot open ", path, " for writing");
    out << content;
    MINOS_ASSERT(out.good(), "write to ", path, " failed");
}

void
usage(const char *prog)
{
    std::printf(
        "usage: %s [--engine=b|o] [--model=synch|strict|renf|event|"
        "scope]\n"
        "          [--nodes=N] [--records=N] [--requests=N] "
        "[--workers=N]\n"
        "          [--write-frac=F] [--dist=zipfian|uniform] "
        "[--persist-ns=N]\n"
        "          [--vfifo=N] [--dfifo=N] [--no-batch] [--no-bcast]\n"
        "          [--scope-size=N] [--seed=N] [--csv] "
        "[--csv-header]\n"
        "          [--trace-out=FILE.json] [--trace-capacity=N]\n"
        "          [--trace-categories=lock,fifo,...]\n"
        "          [--metrics-out=FILE.json] [--phases]\n"
        "          [--audit] [--audit-fatal]\n",
        prog);
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags(argc, argv);
    if (flags.has("help")) {
        usage(argv[0]);
        return 0;
    }
    auto unknown = flags.unknownFlags(knownFlags);
    if (!unknown.empty()) {
        for (const auto &f : unknown)
            std::fprintf(stderr, "unknown flag --%s\n", f.c_str());
        usage(argv[0]);
        return 2;
    }

    if (flags.getBool("csv-header")) {
        std::printf("engine,model,nodes,records,requests,write_frac,"
                    "dist,write_lat_ns,read_lat_ns,write_p99_ns,"
                    "read_p99_ns,write_tput,read_tput,total_tput,"
                    "obsolete,comm_frac\n");
        if (argc == 2)
            return 0;
    }

    const std::string engine = flags.getString("engine", "o");
    MINOS_ASSERT(engine == "b" || engine == "o",
                 "--engine must be b or o");
    PersistModel model =
        parseModel(flags.getString("model", "synch"));

    ClusterConfig cfg;
    cfg.numNodes = static_cast<int>(flags.getInt("nodes", 5));
    cfg.numRecords =
        static_cast<std::uint64_t>(flags.getInt("records", 100'000));
    cfg.persistNsPerKb = flags.getInt("persist-ns", 1295);
    cfg.vfifoEntries = static_cast<int>(flags.getInt("vfifo", 5));
    cfg.dfifoEntries = static_cast<int>(flags.getInt("dfifo", 5));

    OffloadOptions opts = engine == "o" ? OffloadOptions::minosO()
                                        : OffloadOptions::minosB();
    if (flags.getBool("no-batch"))
        opts.batching = false;
    if (flags.getBool("no-bcast"))
        opts.broadcast = false;

    DriverConfig dc;
    dc.requestsPerNode =
        static_cast<std::uint64_t>(flags.getInt("requests", 2000));
    dc.workersPerNode = static_cast<int>(flags.getInt("workers", 0));
    dc.scopeSize = static_cast<int>(flags.getInt("scope-size", 10));
    if (flags.has("ycsb")) {
        // Named YCSB core workload (A/B/C/F) overrides the mix flags.
        dc.ycsb = workload::ycsbPreset(flags.getString("ycsb")[0]);
    }
    dc.ycsb.numRecords = cfg.numRecords;
    dc.ycsb.writeFraction =
        flags.getDouble("write-frac", dc.ycsb.writeFraction);
    dc.ycsb.rmwFraction =
        flags.getDouble("rmw-frac", dc.ycsb.rmwFraction);
    dc.ycsb.seed =
        static_cast<std::uint64_t>(flags.getInt("seed", 42));
    const std::string dist = flags.getString("dist", "zipfian");
    if (dist == "uniform")
        dc.ycsb.dist = workload::KeyDist::Uniform;
    else if (dist != "zipfian")
        MINOS_FATAL("--dist must be zipfian or uniform");

    const std::string trace_out = flags.getString("trace-out", "");
    const std::string metrics_out = flags.getString("metrics-out", "");
    const bool audit_fatal = flags.getBool("audit-fatal");
    const bool want_audit = flags.getBool("audit") || audit_fatal;
    const bool want_phases = flags.getBool("phases") ||
                             !metrics_out.empty() || !trace_out.empty();

    obs::FlightRecorder recorder(static_cast<std::size_t>(
        flags.getInt("trace-capacity", 1 << 15)));
    auto cats = flags.getStrings("trace-categories");
    if (!cats.empty()) {
        // Mute everything, then re-enable the requested categories.
        // This only governs ring retention: audit sinks still see the
        // full stream.
        for (int i = 0; i < obs::numCategories; ++i)
            recorder.setEnabled(static_cast<obs::Category>(i), false);
        for (const auto &name : cats) {
            obs::Category c;
            if (!obs::categoryFromName(name, c))
                MINOS_FATAL("unknown trace category '", name, "'");
            recorder.setEnabled(c, true);
        }
    }
    obs::WritePhaseStats phase_stats;
    obs::AuditBundle audit;
    if (!trace_out.empty() || want_audit)
        cfg.trace = &recorder;
    if (want_audit)
        cfg.audit = &audit;
    if (want_phases)
        cfg.phases = &phase_stats;

    sim::Simulator sim;
    RunResult res;
    NodeCounters aggregate;
    std::size_t vfifo_peak = 0, dfifo_peak = 0;
    std::uint64_t vfifo_skipped = 0;
    if (engine == "o") {
        snic::ClusterO cluster(sim, cfg, model, opts);
        res = runWorkload(sim, cluster, dc);
        for (int n = 0; n < cfg.numNodes; ++n) {
            aggregate += cluster.node(n).counters();
            vfifo_peak = std::max(vfifo_peak,
                                  cluster.node(n).vfifo().peakOccupancy());
            dfifo_peak = std::max(dfifo_peak,
                                  cluster.node(n).dfifo().peakOccupancy());
            vfifo_skipped += cluster.node(n).vfifo().skippedObsolete();
        }
    } else {
        ClusterB cluster(sim, cfg, model, opts);
        res = runWorkload(sim, cluster, dc);
        for (int n = 0; n < cfg.numNodes; ++n)
            aggregate += cluster.node(n).counters();
    }

    if (!trace_out.empty())
        writeFileOrDie(trace_out, obs::chromeTraceJson(recorder));
    if (!metrics_out.empty()) {
        obs::MetricsRegistry reg;
        registerRunMetrics(reg, "run.", res);
        aggregate.registerInto(reg, "proto.");
        phase_stats.registerInto(reg, "run.");
        if (engine == "o") {
            reg.gauge("snic.vfifo_peak",
                      static_cast<double>(vfifo_peak));
            reg.gauge("snic.dfifo_peak",
                      static_cast<double>(dfifo_peak));
            reg.counter("snic.vfifo_skipped", vfifo_skipped);
        }
        if (!trace_out.empty()) {
            reg.counter("trace.recorded", recorder.recorded());
            reg.counter("trace.dropped", recorder.dropped());
        }
        if (want_audit)
            audit.registerInto(reg);
        writeFileOrDie(metrics_out, reg.json());
    }

    int exit_code = 0;
    if (want_audit) {
        std::printf("protocol audit: %llu violations over %llu writes "
                    "(%s)\n",
                    static_cast<unsigned long long>(
                        audit.violationCount()),
                    static_cast<unsigned long long>(audit.opsAudited()),
                    audit.clean() ? "clean" : "VIOLATED");
        if (!audit.clean()) {
            std::fprintf(stderr, "%s", audit.report().c_str());
            if (audit_fatal)
                exit_code = 1;
        }
    }

    if (flags.getBool("csv")) {
        std::printf(
            "%s,%s,%d,%llu,%llu,%.2f,%s,%.0f,%.0f,%ld,%ld,%.0f,%.0f,"
            "%.0f,%llu,%.3f\n",
            engine.c_str(),
            std::string(shortModelName(model)).c_str(), cfg.numNodes,
            static_cast<unsigned long long>(cfg.numRecords),
            static_cast<unsigned long long>(dc.requestsPerNode),
            dc.ycsb.writeFraction, dist.c_str(), res.writeLat.mean(),
            res.readLat.mean(), res.writeLat.p99(), res.readLat.p99(),
            res.writeThroughput(), res.readThroughput(),
            res.totalThroughput(),
            static_cast<unsigned long long>(res.obsoleteWrites),
            res.breakdown.commFraction());
        return exit_code;
    }

    std::printf("MINOS-%s %s  %d nodes, %llu records, %llu req/node, "
                "%.0f%% writes (%s keys)\n",
                engine == "o" ? "O" : "B",
                std::string(modelName(model)).c_str(), cfg.numNodes,
                static_cast<unsigned long long>(cfg.numRecords),
                static_cast<unsigned long long>(dc.requestsPerNode),
                100.0 * dc.ycsb.writeFraction, dist.c_str());
    std::printf("  write latency : mean %8.0f ns   p50 %8ld   p99 "
                "%8ld\n",
                res.writeLat.mean(), res.writeLat.p50(),
                res.writeLat.p99());
    std::printf("  read latency  : mean %8.0f ns   p50 %8ld   p99 "
                "%8ld\n",
                res.readLat.mean(), res.readLat.p50(),
                res.readLat.p99());
    std::printf("  throughput    : %.2f Mops/s (writes %.2f, reads "
                "%.2f)\n",
                res.totalThroughput() / 1e6,
                res.writeThroughput() / 1e6,
                res.readThroughput() / 1e6);
    std::printf("  comm fraction : %.1f%%   obsolete writes: %llu\n",
                100.0 * res.breakdown.commFraction(),
                static_cast<unsigned long long>(res.obsoleteWrites));
    if (flags.getBool("phases") && !phase_stats.empty())
        std::printf("per-phase write latency:\n%s",
                    phase_stats.table().c_str());
    if (flags.getBool("stats")) {
        std::printf("cluster-aggregate protocol counters:\n%s",
                    aggregate.str().c_str());
    }
    return exit_code;
}
