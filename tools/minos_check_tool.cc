/**
 * @file
 * minos_check_tool — model-check a DDP protocol configuration from the
 * command line (paper §VI / Table I).
 *
 * Usage:
 *   minos_check_tool [--model=synch|strict|renf|event|scope]
 *                    [--nodes=N] [--writers=0,1,...]
 *                    [--no-scope-persist] [--max-states=N]
 *                    [--bug=release-early|ack-before-persist|skip-spin]
 */

#include <cstdio>
#include <sstream>

#include "check/checker.hh"
#include "common/flags.hh"
#include "common/logging.hh"

using namespace minos;
using namespace minos::check;

namespace {

PersistModel
parseModel(const std::string &name)
{
    for (PersistModel m : simproto::allModels) {
        std::string s(simproto::shortModelName(m));
        for (auto &c : s)
            c = static_cast<char>(std::tolower(c));
        if (s == name)
            return m;
    }
    MINOS_FATAL("unknown model '", name, "'");
}

std::vector<int>
parseWriters(const std::string &spec)
{
    std::vector<int> writers;
    std::stringstream ss(spec);
    std::string tok;
    while (std::getline(ss, tok, ','))
        writers.push_back(std::stoi(tok));
    return writers;
}

} // namespace

int
main(int argc, char **argv)
{
    Flags flags(argc, argv);
    auto unknown = flags.unknownFlags({"model", "nodes", "writers",
                                       "no-scope-persist", "max-states",
                                       "bug", "help"});
    if (!unknown.empty() || flags.has("help")) {
        for (const auto &f : unknown)
            std::fprintf(stderr, "unknown flag --%s\n", f.c_str());
        std::printf("usage: %s [--model=M] [--nodes=N] "
                    "[--writers=0,1] [--no-scope-persist] "
                    "[--max-states=N] [--bug=...]\n",
                    argv[0]);
        return unknown.empty() ? 0 : 2;
    }

    CheckConfig cfg;
    cfg.model = parseModel(flags.getString("model", "synch"));
    cfg.numNodes = static_cast<int>(flags.getInt("nodes", 3));
    cfg.writers = parseWriters(flags.getString("writers", "0,1"));
    cfg.scopePersist = !flags.getBool("no-scope-persist");
    cfg.maxStates = static_cast<std::size_t>(
        flags.getInt("max-states", 4'000'000));

    const std::string bug = flags.getString("bug", "");
    if (bug == "release-early")
        cfg.bugReleaseRdLockEarly = true;
    else if (bug == "ack-before-persist")
        cfg.bugAckBeforePersist = true;
    else if (bug == "skip-spin")
        cfg.bugSkipConsistencySpin = true;
    else if (!bug.empty())
        MINOS_FATAL("unknown --bug '", bug, "'");
    // Counterexample traces are cheap for the buggy configs (the space
    // is explored only until the violation cap anyway).
    cfg.recordTraces = !bug.empty();

    std::printf("checking %s, %d nodes, %zu writer(s)%s...\n",
                std::string(simproto::modelName(cfg.model)).c_str(),
                cfg.numNodes, cfg.writers.size(),
                bug.empty() ? "" : (" [bug: " + bug + "]").c_str());

    CheckResult res = checkModel(cfg);
    std::printf("states explored : %zu\n", res.statesExplored);
    std::printf("transitions     : %zu\n", res.transitions);
    std::printf("final states    : %zu\n", res.finalStates);
    std::printf("violations      : %zu\n", res.violations.size());
    for (const auto &v : res.violations) {
        std::printf("  %s\n    %s\n", v.invariant.c_str(),
                    v.detail.c_str());
        if (!v.trace.empty()) {
            std::printf("    counterexample:");
            for (const auto &a : v.trace)
                std::printf(" %s", a.c_str());
            std::printf("\n");
        }
    }
    return res.ok() ? 0 : 1;
}
