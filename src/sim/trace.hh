/**
 * @file
 * Lightweight protocol event tracing.
 *
 * A TraceLog is a fixed-capacity ring buffer of timestamped events with
 * per-category enablement. The protocol engines record key transitions
 * (message sends/receipts, lock operations, FIFO activity) when a log
 * is attached to the cluster configuration; detached (the default), the
 * record path is a null-pointer check.
 *
 * Intended for debugging protocol interleavings: attach a log, run the
 * failing scenario, dump the chronological event stream.
 */

#ifndef MINOS_SIM_TRACE_HH
#define MINOS_SIM_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"

namespace minos::sim {

/** Event categories, individually toggleable. */
enum class TraceCategory : std::uint8_t
{
    Protocol, ///< coordinator/follower algorithm steps
    Message,  ///< sends and receipts
    Lock,     ///< RDLock/WRLock transitions
    Fifo,     ///< vFIFO/dFIFO activity
    Recovery, ///< membership and log shipping
};

inline constexpr int numTraceCategories = 5;

/** Human-readable category name. */
const char *traceCategoryName(TraceCategory cat);

/** One recorded event. */
struct TraceEvent
{
    Tick when = 0;
    TraceCategory category = TraceCategory::Protocol;
    std::int32_t node = -1;
    std::string text;
};

/** Fixed-capacity ring of trace events. */
class TraceLog
{
  public:
    /** @param capacity ring size; older events are overwritten. */
    explicit TraceLog(std::size_t capacity = 4096);

    /** Enable/disable one category (all enabled by default). */
    void setEnabled(TraceCategory cat, bool enabled);
    bool enabled(TraceCategory cat) const;

    /** Record an event (dropped if its category is disabled). */
    void record(Tick when, TraceCategory cat, std::int32_t node,
                std::string text);

    /** Events currently retained, oldest first. */
    std::vector<TraceEvent> snapshot() const;

    /** Render the snapshot as "time [cat] nodeN: text" lines. */
    std::string str() const;

    /** Total events ever recorded (including overwritten ones). */
    std::uint64_t recorded() const { return recorded_; }

    std::size_t capacity() const { return ring_.size(); }

    void clear();

  private:
    std::vector<TraceEvent> ring_;
    std::size_t next_ = 0;
    std::size_t used_ = 0;
    std::uint64_t recorded_ = 0;
    bool enabled_[numTraceCategories];
};

/** Null-safe recording helper used by the engines. */
inline void
traceEvent(TraceLog *log, Tick when, TraceCategory cat,
           std::int32_t node, std::string text)
{
    if (log)
        log->record(when, cat, node, std::move(text));
}

} // namespace minos::sim

#endif // MINOS_SIM_TRACE_HH
