#include "simulator.hh"

#include <coroutine>

#include "common/logging.hh"
#include "sim/process.hh"

namespace minos::sim {

Simulator::~Simulator()
{
    // Reclaim frames of processes still suspended (e.g. server loops that
    // wait forever on a mailbox).
    auto leftover = live_;
    live_.clear();
    for (void *frame : leftover)
        std::coroutine_handle<>::from_address(frame).destroy();
}

void
Simulator::schedule(Tick when, std::function<void()> fn)
{
    MINOS_ASSERT(when >= now_, "scheduling into the past: ", when,
                 " < ", now_);
    queue_.push(Event{when, seq_++, std::move(fn)});
}

void
Simulator::after(Tick delay, std::function<void()> fn)
{
    MINOS_ASSERT(delay >= 0, "negative delay: ", delay);
    schedule(now_ + delay, std::move(fn));
}

void
Simulator::run()
{
    while (!queue_.empty()) {
        // priority_queue::top() is const; the event is copied out anyway
        // because executing it may push new events.
        Event ev = queue_.top();
        queue_.pop();
        now_ = ev.when;
        ++executed_;
        ev.fn();
    }
}

bool
Simulator::runUntil(Tick limit)
{
    while (!queue_.empty()) {
        if (queue_.top().when > limit) {
            now_ = limit;
            return false;
        }
        Event ev = queue_.top();
        queue_.pop();
        now_ = ev.when;
        ++executed_;
        ev.fn();
    }
    return true;
}

void
Simulator::spawn(Process proc)
{
    auto handle = proc.release();
    MINOS_ASSERT(handle, "spawning an empty Process");
    handle.promise().sim = this;
    registerFrame(handle.address());
    after(0, [handle] { handle.resume(); });
}

} // namespace minos::sim
