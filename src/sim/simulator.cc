#include "simulator.hh"

#include <coroutine>

#include "common/logging.hh"
#include "sim/process.hh"

namespace minos::sim {

Simulator::~Simulator()
{
    // Reclaim frames of processes still suspended (e.g. server loops that
    // wait forever on a mailbox).
    auto leftover = live_;
    live_.clear();
    for (void *frame : leftover)
        std::coroutine_handle<>::from_address(frame).destroy();
}

void
Simulator::ReadyRing::grow()
{
    std::size_t cap = buf_.empty() ? 64 : buf_.size() * 2;
    std::vector<ReadyEvent> next(cap);
    std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i)
        next[i] = std::move(buf_[(head_ + i) & mask_]);
    buf_ = std::move(next);
    head_ = 0;
    tail_ = n;
    mask_ = cap - 1;
}

void
Simulator::pushReady(EventFn fn)
{
    ring_.push(ReadyEvent{seq_++, std::move(fn)});
    peakRing_ = std::max(peakRing_, ring_.size());
}

void
Simulator::schedule(Tick when, EventFn fn)
{
    MINOS_ASSERT(when >= now_, "scheduling into the past: ", when,
                 " < ", now_);
    if (when == now_) {
        // Same-tick events (the ubiquitous `after(0, ...)` wakeup) skip
        // the heap; FIFO ring order is exactly their seq order.
        pushReady(std::move(fn));
        return;
    }
    heap_.push(Event{when, seq_++, std::move(fn)});
    ++heapPushes_;
    peakHeap_ = std::max(peakHeap_, heap_.size());
}

void
Simulator::after(Tick delay, EventFn fn)
{
    MINOS_ASSERT(delay >= 0, "negative delay: ", delay);
    schedule(now_ + delay, std::move(fn));
}

void
Simulator::step()
{
    // Ring entries are all due at now_; the heap may still hold events
    // at now_ that were scheduled *earlier* (smaller seq) from a past
    // tick. Comparing seqs preserves the exact (when, seq) dispatch
    // order the pre-ring implementation had.
    bool from_heap;
    if (ring_.empty())
        from_heap = true;
    else if (heap_.empty())
        from_heap = false;
    else {
        const Event &t = heap_.top();
        from_heap = t.when == now_ && t.seq < ring_.front().seq;
    }

    if (from_heap) {
        Event ev = heap_.popTop();
        now_ = ev.when;
        ++executed_;
        ev.fn();
    } else {
        ReadyEvent ev = ring_.pop();
        ++executed_;
        ++ringHits_;
        ev.fn();
    }
}

void
Simulator::run()
{
    while (!ring_.empty() || !heap_.empty())
        step();
}

bool
Simulator::runUntil(Tick limit)
{
    for (;;) {
        if (ring_.empty()) {
            if (heap_.empty())
                return true;
            if (heap_.top().when > limit) {
                now_ = limit;
                return false;
            }
        }
        step();
    }
}

void
Simulator::spawn(Process proc)
{
    auto handle = proc.release();
    MINOS_ASSERT(handle, "spawning an empty Process");
    handle.promise().sim = this;
    registerFrame(handle.address());
    resumeSoon(handle);
}

} // namespace minos::sim
