/**
 * @file
 * The simulator's event callable: a small-buffer-optimized, move-only
 * `void()` with a dedicated coroutine-resume representation.
 *
 * The discrete-event hot path schedules two kinds of work:
 *  - resuming a suspended coroutine (the overwhelmingly common case:
 *    every `co_await delay(t)`, condition wakeup, and mailbox handoff),
 *  - running a small closure (message delivery, bookkeeping).
 *
 * `std::function` forced a heap allocation for any closure over ~16
 * bytes and a second copy (and allocation) when the event was popped
 * back out of the priority queue. EventFn instead stores callables up
 * to `inlineBytes` in-place, relocates them by move (or memcpy when
 * trivially copyable), and represents a raw `std::coroutine_handle<>`
 * with a dedicated ops table so coroutine wakeups never touch the
 * allocator at all. Oversized callables still work via a heap fallback,
 * so the API stays fully general.
 */

#ifndef MINOS_SIM_EVENT_HH
#define MINOS_SIM_EVENT_HH

#include <coroutine>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace minos::sim {

/** Move-only `void()` callable with SBO and a coroutine fast path. */
class EventFn
{
  public:
    /**
     * Inline capacity, sized so the protocol layers' largest hot-path
     * closure — a message delivery capturing a node pointer plus a
     * full net::Message by value — stays allocation-free.
     */
    static constexpr std::size_t inlineBytes = 112;

    EventFn() noexcept = default;

    /** Dedicated representation: resume @p h when the event fires. */
    static EventFn
    resume(std::coroutine_handle<> h) noexcept
    {
        EventFn fn;
        void *addr = h.address();
        std::memcpy(fn.storage_, &addr, sizeof addr);
        fn.ops_ = &coroOps_;
        return fn;
    }

    /** Wrap any `void()` callable; inline when it fits, else heap. */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventFn> &&
                  std::is_invocable_r_v<void, std::decay_t<F> &>>>
    EventFn(F &&f) // NOLINT: implicit by design, mirrors std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= inlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(storage_)) Fn(std::forward<F>(f));
            ops_ = &inlineOps_<Fn>;
        } else {
            Fn *p = new Fn(std::forward<F>(f));
            std::memcpy(storage_, &p, sizeof p);
            ops_ = &heapOps_<Fn>;
        }
    }

    EventFn(EventFn &&o) noexcept : ops_(std::exchange(o.ops_, nullptr))
    {
        if (ops_)
            ops_->relocate(storage_, o.storage_);
    }

    EventFn &
    operator=(EventFn &&o) noexcept
    {
        if (this != &o) {
            reset();
            ops_ = std::exchange(o.ops_, nullptr);
            if (ops_)
                ops_->relocate(storage_, o.storage_);
        }
        return *this;
    }

    EventFn(const EventFn &) = delete;
    EventFn &operator=(const EventFn &) = delete;

    ~EventFn() { reset(); }

    /** Run the event. Callable exactly once per stored target. */
    void operator()() { ops_->invoke(storage_); }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /** True when this event is a raw coroutine resume. */
    bool isResume() const noexcept { return ops_ == &coroOps_; }

  private:
    struct Ops
    {
        void (*invoke)(void *storage);
        /** Move the target from @p src storage into @p dst storage. */
        void (*relocate)(void *dst, void *src) noexcept;
        void (*destroy)(void *storage) noexcept;
    };

    void
    reset() noexcept
    {
        if (ops_) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

    static void
    relocateBytes(void *dst, void *src) noexcept
    {
        std::memcpy(dst, src, inlineBytes);
    }

    static void destroyNoop(void *) noexcept {}

    static void
    invokeCoro(void *storage)
    {
        void *addr;
        std::memcpy(&addr, storage, sizeof addr);
        std::coroutine_handle<>::from_address(addr).resume();
    }

    static constexpr Ops coroOps_{invokeCoro, relocateBytes,
                                  destroyNoop};

    template <typename Fn>
    static constexpr Ops inlineOps_{
        // invoke
        [](void *storage) { (*std::launder(
              reinterpret_cast<Fn *>(storage)))(); },
        // relocate
        [](void *dst, void *src) noexcept {
            if constexpr (std::is_trivially_copyable_v<Fn>) {
                std::memcpy(dst, src, sizeof(Fn));
            } else {
                Fn *from = std::launder(reinterpret_cast<Fn *>(src));
                ::new (dst) Fn(std::move(*from));
                from->~Fn();
            }
        },
        // destroy
        [](void *storage) noexcept {
            std::launder(reinterpret_cast<Fn *>(storage))->~Fn();
        }};

    template <typename Fn>
    static constexpr Ops heapOps_{
        [](void *storage) {
            Fn *p;
            std::memcpy(&p, storage, sizeof p);
            (*p)();
        },
        [](void *dst, void *src) noexcept {
            std::memcpy(dst, src, sizeof(Fn *));
        },
        [](void *storage) noexcept {
            Fn *p;
            std::memcpy(&p, storage, sizeof p);
            delete p;
        }};

    alignas(std::max_align_t) unsigned char storage_[inlineBytes];
    const Ops *ops_ = nullptr;
};

} // namespace minos::sim

#endif // MINOS_SIM_EVENT_HH
