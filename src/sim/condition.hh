/**
 * @file
 * Condition variables, mailboxes, and wait-groups for simulated processes.
 *
 * These model the "spin until X" primitives of the MINOS algorithms
 * (ConsistencySpin, PersistencySpin, WRLock spin, ACK collection) in
 * simulated time without burning host cycles.
 */

#ifndef MINOS_SIM_CONDITION_HH
#define MINOS_SIM_CONDITION_HH

#include <coroutine>
#include <cstddef>
#include <deque>
#include <vector>

#include "common/logging.hh"
#include "sim/process.hh"

namespace minos::sim {

/**
 * A broadcast condition: processes `co_await cond.wait()` and are all
 * resumed (at the current tick) by notifyAll().
 *
 * Typical use is a predicate loop, mirroring a spin:
 * @code
 *   while (!pred())
 *       co_await cond.wait();
 * @endcode
 */
class Condition
{
  public:
    explicit Condition(Simulator &sim) : sim_(sim) {}

    Condition(const Condition &) = delete;
    Condition &operator=(const Condition &) = delete;

    struct Awaiter
    {
        Condition &cond;

        bool await_ready() const noexcept { return false; }

        template <typename P>
        void
        await_suspend(std::coroutine_handle<P> h)
        {
            static_assert(std::is_base_of_v<PromiseBase, P>);
            cond.waiters_.push_back(h);
        }

        void await_resume() const noexcept {}
    };

    /** Suspend until the next notifyAll() / notifyOne(). */
    Awaiter wait() { return Awaiter{*this}; }

    /**
     * Resume every current waiter at the present tick, in wait (FIFO)
     * order. Wakeups go through the simulator's ready ring: no closure,
     * no allocation, no heap traffic.
     */
    void
    notifyAll()
    {
        for (auto h : waiters_)
            sim_.resumeSoon(h);
        waiters_.clear();
    }

    /**
     * Resume only the oldest waiter (FIFO handoff). Use when one unit
     * of capacity became available and waking the whole herd would just
     * make the losers re-queue (e.g. CorePool::release()).
     */
    void
    notifyOne()
    {
        if (waiters_.empty())
            return;
        sim_.resumeSoon(waiters_.front());
        waiters_.erase(waiters_.begin());
    }

    /** Number of processes currently blocked on this condition. */
    std::size_t numWaiters() const { return waiters_.size(); }

  private:
    Simulator &sim_;
    std::vector<std::coroutine_handle<>> waiters_;
};

/**
 * An unbounded FIFO channel of T. send() never blocks; recv() suspends
 * until an item is available. Each sent item wakes exactly one receiver
 * and is handed to it directly, so concurrent receivers never observe a
 * spurious empty queue.
 */
template <typename T>
class Mailbox
{
  public:
    explicit Mailbox(Simulator &sim) : sim_(sim) {}

    Mailbox(const Mailbox &) = delete;
    Mailbox &operator=(const Mailbox &) = delete;

    struct RecvAwaiter
    {
        Mailbox &mb;
        std::optional<T> slot;

        bool
        await_ready()
        {
            if (!mb.queue_.empty()) {
                slot.emplace(std::move(mb.queue_.front()));
                mb.queue_.pop_front();
                return true;
            }
            return false;
        }

        template <typename P>
        void
        await_suspend(std::coroutine_handle<P> h)
        {
            static_assert(std::is_base_of_v<PromiseBase, P>);
            handle = h;
            mb.receivers_.push_back(this);
        }

        T
        await_resume()
        {
            MINOS_ASSERT(slot.has_value(), "mailbox recv without item");
            return std::move(*slot);
        }

        std::coroutine_handle<> handle;
    };

    /** Deposit an item; wakes one pending receiver if any. */
    void
    send(T item)
    {
        if (!receivers_.empty()) {
            RecvAwaiter *rx = receivers_.front();
            receivers_.pop_front();
            rx->slot.emplace(std::move(item));
            sim_.resumeSoon(rx->handle);
        } else {
            queue_.push_back(std::move(item));
        }
    }

    /** Receive the next item, suspending if none is queued. */
    RecvAwaiter recv() { return RecvAwaiter{*this, std::nullopt, {}}; }

    /** Items queued and not yet claimed by a receiver. */
    std::size_t size() const { return queue_.size(); }

    bool empty() const { return queue_.empty(); }

  private:
    friend struct RecvAwaiter;

    Simulator &sim_;
    std::deque<T> queue_;
    std::deque<RecvAwaiter *> receivers_;
};

/**
 * Counts outstanding activities; waiters block until the count returns to
 * zero. Used by drivers to join a fleet of worker processes.
 */
class WaitGroup
{
  public:
    explicit WaitGroup(Simulator &sim) : cond_(sim) {}

    void add(std::size_t n = 1) { count_ += n; }

    void
    done()
    {
        MINOS_ASSERT(count_ > 0, "WaitGroup::done() below zero");
        if (--count_ == 0)
            cond_.notifyAll();
    }

    /** Usable only inside a coroutine. */
    Task<void>
    wait()
    {
        while (count_ > 0)
            co_await cond_.wait();
    }

    std::size_t count() const { return count_; }

  private:
    Condition cond_;
    std::size_t count_ = 0;
};

} // namespace minos::sim

#endif // MINOS_SIM_CONDITION_HH
