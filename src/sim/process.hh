/**
 * @file
 * Coroutine process and task types for the discrete-event simulator.
 *
 * Two coroutine types exist:
 *  - Process: a detached, top-level simulated activity. Spawned with
 *    Simulator::spawn(); its frame self-destructs on completion and is
 *    tracked by the simulator so leftover suspended frames are reclaimed
 *    at teardown.
 *  - Task<T>: an awaitable subroutine. `co_await someTask()` transfers
 *    control into the subroutine and resumes the caller when it finishes,
 *    so protocol helpers (e.g. handleObsolete) compose naturally.
 *
 * Awaitables:
 *  - `co_await delay(ticks)` suspends for a simulated duration.
 *  - `co_await cond.wait()` suspends until Condition::notifyAll().
 */

#ifndef MINOS_SIM_PROCESS_HH
#define MINOS_SIM_PROCESS_HH

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "common/logging.hh"
#include "sim/simulator.hh"

namespace minos::sim {

/** Base for all simulation coroutine promises: carries the simulator. */
struct PromiseBase
{
    Simulator *sim = nullptr;
};

/**
 * Detached top-level coroutine. Create by calling a coroutine function
 * returning Process, then hand it to Simulator::spawn().
 */
class Process
{
  public:
    struct promise_type : PromiseBase
    {
        Process
        get_return_object()
        {
            return Process(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }

            void
            await_suspend(std::coroutine_handle<promise_type> h) noexcept
            {
                Simulator *sim = h.promise().sim;
                if (sim)
                    sim->unregisterFrame(h.address());
                h.destroy();
            }

            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() {}

        void
        unhandled_exception()
        {
            MINOS_PANIC("unhandled exception escaped a sim::Process");
        }
    };

    Process(Process &&o) noexcept : handle_(std::exchange(o.handle_, {})) {}
    Process(const Process &) = delete;
    Process &operator=(const Process &) = delete;

    ~Process()
    {
        // A Process that was never spawned owns its (suspended) frame.
        if (handle_)
            handle_.destroy();
    }

    /** Internal: release ownership of the frame to the simulator. */
    std::coroutine_handle<promise_type>
    release()
    {
        return std::exchange(handle_, {});
    }

  private:
    explicit Process(std::coroutine_handle<promise_type> h) : handle_(h) {}

    std::coroutine_handle<promise_type> handle_;
};

/**
 * Awaitable subroutine returning T (or void). Lazily started; the caller's
 * coroutine is resumed when the task completes (symmetric transfer).
 */
template <typename T = void>
class Task;

namespace detail {

template <typename Promise>
struct TaskFinalAwaiter
{
    bool await_ready() noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<Promise> h) noexcept
    {
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
    }

    void await_resume() noexcept {}
};

struct TaskPromiseBase : PromiseBase
{
    std::coroutine_handle<> continuation;

    std::suspend_always initial_suspend() noexcept { return {}; }

    void
    unhandled_exception()
    {
        MINOS_PANIC("unhandled exception escaped a sim::Task");
    }
};

} // namespace detail

template <typename T>
class Task
{
  public:
    struct promise_type : detail::TaskPromiseBase
    {
        std::optional<T> value;

        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        detail::TaskFinalAwaiter<promise_type>
        final_suspend() noexcept
        {
            return {};
        }

        void return_value(T v) { value.emplace(std::move(v)); }
    };

    Task(Task &&o) noexcept : handle_(std::exchange(o.handle_, {})) {}
    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task()
    {
        if (handle_)
            handle_.destroy();
    }

    bool await_ready() const noexcept { return false; }

    template <typename P>
    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<P> parent)
    {
        static_assert(std::is_base_of_v<PromiseBase, P>);
        handle_.promise().sim = parent.promise().sim;
        handle_.promise().continuation = parent;
        return handle_;
    }

    T
    await_resume()
    {
        MINOS_ASSERT(handle_.promise().value.has_value(),
                     "Task finished without a value");
        return std::move(*handle_.promise().value);
    }

  private:
    explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

    std::coroutine_handle<promise_type> handle_;
};

template <>
class Task<void>
{
  public:
    struct promise_type : detail::TaskPromiseBase
    {
        Task
        get_return_object()
        {
            return Task(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        detail::TaskFinalAwaiter<promise_type>
        final_suspend() noexcept
        {
            return {};
        }

        void return_void() {}
    };

    Task(Task &&o) noexcept : handle_(std::exchange(o.handle_, {})) {}
    Task(const Task &) = delete;
    Task &operator=(const Task &) = delete;

    ~Task()
    {
        if (handle_)
            handle_.destroy();
    }

    bool await_ready() const noexcept { return false; }

    template <typename P>
    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<P> parent)
    {
        static_assert(std::is_base_of_v<PromiseBase, P>);
        handle_.promise().sim = parent.promise().sim;
        handle_.promise().continuation = parent;
        return handle_;
    }

    void await_resume() {}

  private:
    explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}

    std::coroutine_handle<promise_type> handle_;
};

/** Awaitable that suspends the current coroutine for @p ticks. */
struct DelayAwaiter
{
    Tick ticks;

    bool await_ready() const noexcept { return ticks <= 0; }

    template <typename P>
    void
    await_suspend(std::coroutine_handle<P> h)
    {
        static_assert(std::is_base_of_v<PromiseBase, P>);
        Simulator *sim = h.promise().sim;
        MINOS_ASSERT(sim, "coroutine not attached to a simulator");
        sim->resumeAfter(ticks, h);
    }

    void await_resume() const noexcept {}
};

/** Suspend the calling process for @p ticks of simulated time. */
inline DelayAwaiter
delay(Tick ticks)
{
    return DelayAwaiter{ticks};
}

} // namespace minos::sim

#endif // MINOS_SIM_PROCESS_HH
