/**
 * @file
 * Discrete-event simulation core.
 *
 * The simulator executes a time-ordered queue of events. Model code is
 * written as C++20 coroutines (see process.hh) so protocol logic reads
 * like the paper's pseudocode: `co_await delay(t)` advances simulated
 * time, `co_await cond.wait()` blocks on a condition, and mailboxes model
 * message queues.
 *
 * This is the SimGrid-equivalent substrate used for all MINOS-B and
 * MINOS-O evaluation experiments (paper §VII).
 *
 * Event-core layout (see DESIGN.md "Event core"):
 *  - events are EventFn (SBO callable / raw coroutine resume; event.hh),
 *    so steady-state dispatch performs zero heap allocations;
 *  - events scheduled for the *current* tick go to a FIFO ready ring
 *    and bypass the heap entirely (the `after(0, ...)` wakeup pattern
 *    used by every condition/mailbox notification);
 *  - future events live in a 4-ary min-heap over a flat vector whose
 *    pop *moves* the top element out (no pop-copy).
 * Dispatch order is exactly (when, seq) — FIFO within a tick — which is
 * the documented determinism contract; the ring is an ordering-exact
 * bypass, not a reordering.
 */

#ifndef MINOS_SIM_SIMULATOR_HH
#define MINOS_SIM_SIMULATOR_HH

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/units.hh"
#include "sim/event.hh"
#include "stats/stats.hh"

namespace minos::sim {

class Process;

/**
 * The discrete-event simulator: a two-stage event queue (same-tick
 * ready ring + timed 4-ary heap) plus the registry of live coroutine
 * processes.
 *
 * Events scheduled for the same tick run in scheduling (FIFO) order,
 * which keeps runs fully deterministic.
 */
class Simulator
{
  public:
    Simulator() = default;
    ~Simulator();

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn to run at absolute time @p when (>= now). */
    void schedule(Tick when, EventFn fn);

    /** Schedule @p fn to run @p delay ticks from now. */
    void after(Tick delay, EventFn fn);

    /** @{
     * Coroutine fast path: schedule a raw resume with no closure.
     * resumeSoon() is the `after(0, ...)` wakeup — it goes straight to
     * the ready ring.
     */
    void
    scheduleResume(Tick when, std::coroutine_handle<> h)
    {
        schedule(when, EventFn::resume(h));
    }

    void
    resumeAfter(Tick delay, std::coroutine_handle<> h)
    {
        after(delay, EventFn::resume(h));
    }

    void resumeSoon(std::coroutine_handle<> h)
    {
        pushReady(EventFn::resume(h));
    }
    /** @} */

    /** Run until the event queue is empty. */
    void run();

    /**
     * Run until the event queue is empty or simulated time would pass
     * @p limit.
     * @return true if the queue drained, false if the limit was hit.
     */
    bool runUntil(Tick limit);

    /** Start a detached coroutine process (see process.hh). */
    void spawn(Process proc);

    /** Number of processes that have started but not finished. */
    std::size_t numLiveProcesses() const { return live_.size(); }

    /** Total events executed so far (for tests and sanity checks). */
    std::uint64_t eventsExecuted() const { return executed_; }

    /** Events dispatched through the same-tick ready ring. */
    std::uint64_t readyRingHits() const { return ringHits_; }

    /** Events that went through the timed heap. */
    std::uint64_t heapPushes() const { return heapPushes_; }

    /** High-water marks of the two queues. */
    std::size_t peakHeapSize() const { return peakHeap_; }
    std::size_t peakRingSize() const { return peakRing_; }

    /** Snapshot of the event-core counters (stats/stats.hh). */
    stats::EventCoreCounters
    counters() const
    {
        return {executed_, ringHits_, heapPushes_,
                static_cast<std::uint64_t>(peakHeap_),
                static_cast<std::uint64_t>(peakRing_)};
    }

    /** Events currently queued (ring + heap). */
    std::size_t
    pendingEvents() const
    {
        return ring_.size() + heap_.size();
    }

    /** @{ Internal: live-process registry used by the coroutine glue. */
    void registerFrame(void *frame) { live_.insert(frame); }
    void unregisterFrame(void *frame) { live_.erase(frame); }
    /** @} */

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        EventFn fn;
    };

    /** Ring-ring entry: the tick is implicitly the current one. */
    struct ReadyEvent
    {
        std::uint64_t seq;
        EventFn fn;
    };

    /**
     * 4-ary min-heap over a flat vector, ordered by (when, seq).
     * Shallower than a binary heap (fewer cache-missing levels) and
     * pops by moving the top element out instead of copying it.
     */
    class TimerHeap
    {
      public:
        bool empty() const { return v_.empty(); }
        std::size_t size() const { return v_.size(); }
        const Event &top() const { return v_.front(); }

        void
        push(Event &&e)
        {
            v_.push_back(std::move(e));
            siftUp(v_.size() - 1);
        }

        /** Remove and return the minimum element (moved out). */
        Event
        popTop()
        {
            Event out = std::move(v_.front());
            Event last = std::move(v_.back());
            v_.pop_back();
            if (!v_.empty())
                siftDownHole(std::move(last));
            return out;
        }

      private:
        static constexpr std::size_t arity = 4;

        static bool
        before(const Event &a, const Event &b)
        {
            return a.when != b.when ? a.when < b.when : a.seq < b.seq;
        }

        void
        siftUp(std::size_t i)
        {
            Event e = std::move(v_[i]);
            while (i > 0) {
                std::size_t parent = (i - 1) / arity;
                if (!before(e, v_[parent]))
                    break;
                v_[i] = std::move(v_[parent]);
                i = parent;
            }
            v_[i] = std::move(e);
        }

        /** Sift the root hole down, then drop @p last into it. */
        void
        siftDownHole(Event &&last)
        {
            std::size_t i = 0;
            const std::size_t n = v_.size();
            for (;;) {
                std::size_t first = arity * i + 1;
                if (first >= n)
                    break;
                std::size_t best = first;
                std::size_t end = std::min(first + arity, n);
                for (std::size_t c = first + 1; c < end; ++c)
                    if (before(v_[c], v_[best]))
                        best = c;
                if (!before(v_[best], last))
                    break;
                v_[i] = std::move(v_[best]);
                i = best;
            }
            v_[i] = std::move(last);
        }

        std::vector<Event> v_;
    };

    /**
     * Growable power-of-two ring buffer of same-tick events. FIFO; all
     * entries are due at the current tick. Steady state never touches
     * the allocator (it only grows).
     */
    class ReadyRing
    {
      public:
        bool empty() const { return head_ == tail_; }

        std::size_t
        size() const
        {
            return static_cast<std::size_t>(tail_ - head_);
        }

        const ReadyEvent &
        front() const
        {
            return buf_[head_ & mask_];
        }

        void
        push(ReadyEvent &&e)
        {
            if (size() == buf_.size())
                grow();
            buf_[tail_++ & mask_] = std::move(e);
        }

        ReadyEvent
        pop()
        {
            return std::move(buf_[head_++ & mask_]);
        }

      private:
        void grow();

        std::vector<ReadyEvent> buf_;
        std::uint64_t head_ = 0;
        std::uint64_t tail_ = 0;
        std::uint64_t mask_ = 0;
    };

    void pushReady(EventFn fn);

    /** Dispatch the single next event in (when, seq) order. */
    void step();

    TimerHeap heap_;
    ReadyRing ring_;
    std::unordered_set<void *> live_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
    std::uint64_t ringHits_ = 0;
    std::uint64_t heapPushes_ = 0;
    std::size_t peakHeap_ = 0;
    std::size_t peakRing_ = 0;
};

} // namespace minos::sim

#endif // MINOS_SIM_SIMULATOR_HH
