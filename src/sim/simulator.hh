/**
 * @file
 * Discrete-event simulation core.
 *
 * The simulator executes a time-ordered queue of events. Model code is
 * written as C++20 coroutines (see process.hh) so protocol logic reads
 * like the paper's pseudocode: `co_await delay(t)` advances simulated
 * time, `co_await cond.wait()` blocks on a condition, and mailboxes model
 * message queues.
 *
 * This is the SimGrid-equivalent substrate used for all MINOS-B and
 * MINOS-O evaluation experiments (paper §VII).
 */

#ifndef MINOS_SIM_SIMULATOR_HH
#define MINOS_SIM_SIMULATOR_HH

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/units.hh"

namespace minos::sim {

class Process;

/**
 * The discrete-event simulator: an event queue plus the registry of live
 * coroutine processes.
 *
 * Events scheduled for the same tick run in scheduling (FIFO) order, which
 * keeps runs fully deterministic.
 */
class Simulator
{
  public:
    Simulator() = default;
    ~Simulator();

    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule @p fn to run at absolute time @p when (>= now). */
    void schedule(Tick when, std::function<void()> fn);

    /** Schedule @p fn to run @p delay ticks from now. */
    void after(Tick delay, std::function<void()> fn);

    /** Run until the event queue is empty. */
    void run();

    /**
     * Run until the event queue is empty or simulated time would pass
     * @p limit.
     * @return true if the queue drained, false if the limit was hit.
     */
    bool runUntil(Tick limit);

    /** Start a detached coroutine process (see process.hh). */
    void spawn(Process proc);

    /** Number of processes that have started but not finished. */
    std::size_t numLiveProcesses() const { return live_.size(); }

    /** Total events executed so far (for tests and sanity checks). */
    std::uint64_t eventsExecuted() const { return executed_; }

    /** @{ Internal: live-process registry used by the coroutine glue. */
    void registerFrame(void *frame) { live_.insert(frame); }
    void unregisterFrame(void *frame) { live_.erase(frame); }
    /** @} */

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        std::function<void()> fn;

        bool
        operator>(const Event &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
    std::unordered_set<void *> live_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace minos::sim

#endif // MINOS_SIM_SIMULATOR_HH
