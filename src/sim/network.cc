#include "network.hh"

#include "common/logging.hh"

namespace minos::sim {

Link::Link(Simulator &sim, Tick latency, double bytes_per_sec,
           Tick per_msg_overhead)
    : sim_(sim), latency_(latency), bytesPerSec_(bytes_per_sec),
      perMsgOverhead_(per_msg_overhead)
{
    MINOS_ASSERT(latency >= 0, "negative link latency");
    MINOS_ASSERT(per_msg_overhead >= 0, "negative per-message overhead");
}

Tick
Link::serialization(std::uint64_t bytes) const
{
    return perMsgOverhead_ + serializationDelay(bytes, bytesPerSec_);
}

Tick
Link::transfer(std::uint64_t bytes)
{
    return transferFrom(sim_.now(), bytes);
}

Tick
Link::transferFrom(Tick earliest, std::uint64_t bytes)
{
    Tick start = std::max({sim_.now(), earliest, busyUntil_});
    Tick depart = start + serialization(bytes);
    busyUntil_ = depart;
    bytes_ += bytes;
    ++messages_;
    return depart + latency_;
}

Tick
Link::previewArrival(std::uint64_t bytes) const
{
    Tick start = std::max(sim_.now(), busyUntil_);
    return start + serialization(bytes) + latency_;
}

} // namespace minos::sim
