/**
 * @file
 * Link timing models for the simulated distributed machine (paper
 * Table III).
 *
 * A Link is a unidirectional store-and-forward channel with propagation
 * latency, bandwidth, and optional fixed per-message overhead (used to
 * model per-TLP/doorbell costs on PCIe, cf. Neugebauer et al. [43]).
 * Messages occupy the link back-to-back: a transfer starts when the link
 * is free, takes overhead + size/bandwidth to serialize, then arrives
 * after the propagation latency.
 */

#ifndef MINOS_SIM_NETWORK_HH
#define MINOS_SIM_NETWORK_HH

#include <cstdint>

#include "common/units.hh"
#include "sim/condition.hh"
#include "sim/simulator.hh"

namespace minos::sim {

/** Unidirectional latency/bandwidth link with serialization contention. */
class Link
{
  public:
    /**
     * @param sim owning simulator
     * @param latency propagation delay
     * @param bytes_per_sec bandwidth (0 = infinite)
     * @param per_msg_overhead fixed serialized cost per message
     */
    Link(Simulator &sim, Tick latency, double bytes_per_sec,
         Tick per_msg_overhead = 0);

    /**
     * Occupy the link for one message of @p bytes and return its arrival
     * time. The caller schedules delivery at the returned tick.
     */
    Tick transfer(std::uint64_t bytes);

    /**
     * Like transfer(), but the message only becomes available to the
     * link at @p earliest (used to schedule multi-stage pipelines like
     * host -> PCIe -> NIC -> wire in one shot).
     */
    Tick transferFrom(Tick earliest, std::uint64_t bytes);

    /** Arrival time a message of @p bytes would get, without sending. */
    Tick previewArrival(std::uint64_t bytes) const;

    Tick latency() const { return latency_; }
    Tick busyUntil() const { return busyUntil_; }

    /** Total bytes transferred (for utilization stats). */
    std::uint64_t bytesTransferred() const { return bytes_; }
    std::uint64_t messagesTransferred() const { return messages_; }

  private:
    Tick serialization(std::uint64_t bytes) const;

    Simulator &sim_;
    Tick latency_;
    double bytesPerSec_;
    Tick perMsgOverhead_;
    Tick busyUntil_ = 0;
    std::uint64_t bytes_ = 0;
    std::uint64_t messages_ = 0;
};

/**
 * A serially-reused pipeline stage with per-item service time, e.g. the
 * NIC send engine that deposits one message at a time (Table III: 200 ns
 * per INV, 100 ns per ACK, 100 ns between consecutive messages without
 * broadcast support).
 */
class SerialStage
{
  public:
    /**
     * Occupy the stage for @p service ticks starting no earlier than
     * @p earliest; returns the completion time.
     */
    Tick
    occupyFrom(Tick earliest, Tick service)
    {
        Tick start = std::max(earliest, busyUntil_);
        busyUntil_ = start + service;
        return busyUntil_;
    }

    Tick busyUntil() const { return busyUntil_; }

  private:
    Tick busyUntil_ = 0;
};

/**
 * A pool of identical execution cores. Protocol handlers wrap their
 * compute bursts in compute() so that per-node core counts (5 host
 * cores, 8 SmartNIC cores — Table III) throttle concurrency. Waits and
 * spins are event-driven (eRPC-style run-to-completion loops), so they
 * do not hold a core.
 */
class CorePool
{
  public:
    CorePool(Simulator &sim, int cores)
        : cond_(sim), free_(cores), total_(cores)
    {
    }

    /** Acquire one core, waiting if all are busy. */
    Task<void>
    acquire()
    {
        while (free_ == 0)
            co_await cond_.wait();
        --free_;
    }

    /**
     * Return a core to the pool. One freed core resumes exactly one
     * waiter (the oldest — FIFO handoff); waking the whole herd for a
     * single core would only make the losers re-queue at the same tick.
     * A waiter that loses the core to a same-tick acquirer re-enters
     * the wait loop, so the handoff is race-free.
     */
    void
    release()
    {
        MINOS_ASSERT(free_ < total_, "CorePool release overflow");
        ++free_;
        cond_.notifyOne();
    }

    /** Acquire a core, spend @p cost ticks of compute, release. */
    Task<void>
    compute(Tick cost)
    {
        co_await acquire();
        co_await delay(cost);
        release();
    }

    int freeCores() const { return free_; }
    int totalCores() const { return total_; }

  private:
    Condition cond_;
    int free_;
    int total_;
};

} // namespace minos::sim

#endif // MINOS_SIM_NETWORK_HH
