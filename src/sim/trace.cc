#include "trace.hh"

#include <sstream>

#include "common/logging.hh"

namespace minos::sim {

const char *
traceCategoryName(TraceCategory cat)
{
    switch (cat) {
      case TraceCategory::Protocol: return "proto";
      case TraceCategory::Message: return "msg";
      case TraceCategory::Lock: return "lock";
      case TraceCategory::Fifo: return "fifo";
      case TraceCategory::Recovery: return "recov";
    }
    return "?";
}

TraceLog::TraceLog(std::size_t capacity)
    : ring_(capacity ? capacity : 1)
{
    for (auto &e : enabled_)
        e = true;
}

void
TraceLog::setEnabled(TraceCategory cat, bool enabled)
{
    enabled_[static_cast<int>(cat)] = enabled;
}

bool
TraceLog::enabled(TraceCategory cat) const
{
    return enabled_[static_cast<int>(cat)];
}

void
TraceLog::record(Tick when, TraceCategory cat, std::int32_t node,
                 std::string text)
{
    if (!enabled(cat))
        return;
    ring_[next_] = TraceEvent{when, cat, node, std::move(text)};
    next_ = (next_ + 1) % ring_.size();
    used_ = std::min(used_ + 1, ring_.size());
    ++recorded_;
}

std::vector<TraceEvent>
TraceLog::snapshot() const
{
    std::vector<TraceEvent> out;
    out.reserve(used_);
    // Oldest event sits at next_ when the ring has wrapped.
    std::size_t start = used_ == ring_.size() ? next_ : 0;
    for (std::size_t i = 0; i < used_; ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

std::string
TraceLog::str() const
{
    std::ostringstream os;
    for (const auto &e : snapshot()) {
        os << e.when << "ns [" << traceCategoryName(e.category)
           << "] node" << e.node << ": " << e.text << "\n";
    }
    return os.str();
}

void
TraceLog::clear()
{
    next_ = 0;
    used_ = 0;
    recorded_ = 0;
}

} // namespace minos::sim
