/**
 * @file
 * Concurrent hashtable back-end of MINOS-KV (paper §VII: "The back-end
 * in-memory application used is a Hashtable").
 *
 * Record metadata fields are individual atomics so the threaded MINOS-B
 * runtime can express the paper's lock-free operations: timestamps and
 * RDLock_Owner are packed 64-bit words (see kv/timestamp.hh) manipulated
 * with compare-and-swap, exactly as the algorithms require (snatching,
 * obsoleteness checks, spin loops).
 */

#ifndef MINOS_KV_HASHTABLE_HH
#define MINOS_KV_HASHTABLE_HH

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "kv/record.hh"
#include "kv/timestamp.hh"

namespace minos::kv {

/**
 * Record with atomic metadata for the threaded runtime.
 *
 * All timestamp-typed fields store Timestamp::pack() words so a plain
 * integer CAS implements the protocol's atomic snatch/update operations,
 * and raw comparison of loaded words equals timestamp comparison.
 */
struct AtomicRecord
{
    AtomicRecord();

    std::atomic<std::uint64_t> rdLockOwner;
    std::atomic<std::uint64_t> volatileTs;
    std::atomic<std::uint64_t> glbVolatileTs;
    std::atomic<std::uint64_t> glbDurableTs;
    std::atomic<bool> wrLock;
    std::atomic<Value> value;
    /**
     * Monotonic guard keeping locally-issued TS_WR versions unique when
     * several local threads write the record concurrently (the paper's
     * "volatileTS version + 1" rule alone would collide).
     */
    std::atomic<std::int64_t> localVersionGuard{0};

    /** Convenience loads decoded back to Timestamp. */
    Timestamp loadRdLockOwner() const;
    Timestamp loadVolatileTs() const;
    Timestamp loadGlbVolatileTs() const;
    Timestamp loadGlbDurableTs() const;

    /**
     * Monotonically raise a packed-timestamp field to @p ts: CAS loop that
     * only replaces strictly older values. Returns true if this call
     * performed the update.
     */
    static bool raiseTs(std::atomic<std::uint64_t> &field,
                        const Timestamp &ts);
};

/**
 * Chaining hashtable of AtomicRecord keyed by Key.
 *
 * Lookups are lock-free; inserts take a per-bucket mutex. Records are
 * never removed (the KV store's delete would mark a tombstone value), so
 * returned pointers remain valid for the table's lifetime.
 */
class HashTable
{
  public:
    /** @param bucket_count number of hash buckets (rounded up to >= 1). */
    explicit HashTable(std::size_t bucket_count);

    HashTable(const HashTable &) = delete;
    HashTable &operator=(const HashTable &) = delete;
    ~HashTable();

    /** Find the record for @p k, or nullptr if absent. Lock-free. */
    AtomicRecord *find(Key k) const;

    /** Find or insert the record for @p k. */
    AtomicRecord &getOrCreate(Key k);

    /** Number of records stored. */
    std::size_t size() const { return size_.load(); }

    std::size_t bucketCount() const { return buckets_.size(); }

  private:
    struct Node
    {
        explicit Node(Key k) : key(k) {}

        const Key key;
        AtomicRecord record;
        std::atomic<Node *> next{nullptr};
    };

    std::size_t bucketOf(Key k) const;

    std::vector<std::atomic<Node *>> buckets_;
    std::vector<std::mutex> bucketLocks_;
    std::atomic<std::size_t> size_{0};
};

} // namespace minos::kv

#endif // MINOS_KV_HASHTABLE_HH
