/**
 * @file
 * MINOS-KV store used by the discrete-event models.
 *
 * Every node replicates all records (paper §II-A), so each simulated node
 * owns one SimStore. Keys are dense in [0, size), which lets the store be
 * a flat array; the hashtable back-end of the real implementation lives in
 * kv/hashtable.hh and is exercised by the threaded runtime.
 */

#ifndef MINOS_KV_STORE_HH
#define MINOS_KV_STORE_HH

#include <cstddef>
#include <vector>

#include "common/logging.hh"
#include "kv/record.hh"

namespace minos::kv {

/** Flat replicated record store for simulated nodes. */
class SimStore
{
  public:
    /** Create @p num_records records, all at version <-1,-1>. */
    explicit SimStore(std::size_t num_records) : recs_(num_records) {}

    /** Access the record for @p k. @pre k < size() */
    Record &
    at(Key k)
    {
        MINOS_ASSERT(k < recs_.size(), "key out of range: ", k);
        return recs_[k];
    }

    const Record &
    at(Key k) const
    {
        MINOS_ASSERT(k < recs_.size(), "key out of range: ", k);
        return recs_[k];
    }

    std::size_t size() const { return recs_.size(); }

  private:
    std::vector<Record> recs_;
};

} // namespace minos::kv

#endif // MINOS_KV_STORE_HH
