/**
 * @file
 * Per-record metadata of the MINOS-KV store (Figure 1(a) of the paper).
 *
 * Each record carries:
 *  - RDLock_Owner: timestamp of the youngest ongoing client-write, or
 *    <-1,-1> when free. Taken RDLock blocks reads; a younger client-write
 *    may "snatch" it.
 *  - WRLock: guards local-writes to the volatile copy (MINOS-B only;
 *    MINOS-O replaces it with the vFIFO).
 *  - volatileTS: version of the local volatile copy.
 *  - glb_volatileTS: version known updated in volatile memory on ALL
 *    replicas (set once consistency completes cluster-wide).
 *  - glb_durableTS: version known persisted on ALL replicas (set once
 *    persistency completes cluster-wide).
 */

#ifndef MINOS_KV_RECORD_HH
#define MINOS_KV_RECORD_HH

#include <cstdint>

#include "kv/timestamp.hh"

namespace minos::kv {

/** Record key. Records are replicated on every node (paper §II-A). */
using Key = std::uint64_t;

/** Abstract record value: a 64-bit token standing in for the 1KB blob. */
using Value = std::uint64_t;

/**
 * Plain (non-atomic) record metadata plus value, used by the
 * discrete-event models where interleaving happens only at co_await
 * points.
 */
struct Record
{
    Timestamp rdLockOwner = Timestamp::none();
    bool wrLock = false;
    Timestamp volatileTs = Timestamp::none();
    Timestamp glbVolatileTs = Timestamp::none();
    Timestamp glbDurableTs = Timestamp::none();
    Value value = 0;

    bool rdLockFree() const { return rdLockOwner.isNone(); }
};

/**
 * The Obsolete primitive (paper §III-A): a client-write with timestamp
 * @p ts_wr is obsolete iff the local volatile copy already carries a
 * newer timestamp.
 */
inline bool
isObsolete(const Record &rec, const Timestamp &ts_wr)
{
    return rec.volatileTs > ts_wr;
}

} // namespace minos::kv

#endif // MINOS_KV_RECORD_HH
