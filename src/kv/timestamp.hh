/**
 * @file
 * Logical timestamps for the MINOS DDP protocols (paper §III-A).
 *
 * Each timestamp is a Lamport-style tuple <node_id, version>. Writes to
 * the same record are ordered old-to-new by version, ties broken by
 * node_id. The sentinel <-1, -1> means "none" and is also the released
 * state of RDLock_Owner.
 *
 * Timestamps pack into a single 64-bit word (version in the high bits,
 * node_id + 1 in the low 16 bits) so that raw integer comparison equals
 * timestamp comparison and the threaded runtime can CAS them atomically.
 */

#ifndef MINOS_KV_TIMESTAMP_HH
#define MINOS_KV_TIMESTAMP_HH

#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

#include "common/logging.hh"

namespace minos::kv {

/** Node identifier; -1 means "no node". */
using NodeId = std::int32_t;

/**
 * Logical timestamp <node_id, version> (Figure 1(b) of the paper).
 */
struct Timestamp
{
    /** Version counter; -1 only in the "none" sentinel. */
    std::int64_t version = -1;
    /** Initiating node; -1 only in the "none" sentinel. */
    NodeId node = -1;

    /** The sentinel value: unset timestamp / released RDLock. */
    static constexpr Timestamp
    none()
    {
        return Timestamp{-1, -1};
    }

    bool isNone() const { return version < 0; }

    /**
     * Ordering per §III-A: higher version is newer; same version, higher
     * node_id is newer. Member order (version, node) makes the defaulted
     * comparison implement exactly that.
     */
    friend auto operator<=>(const Timestamp &,
                            const Timestamp &) = default;

    /** Number of bits of the packed word holding node_id + 1. */
    static constexpr int nodeBits = 16;

    /** Pack into one word; preserves ordering of valid timestamps. */
    std::uint64_t
    pack() const
    {
        MINOS_ASSERT(node >= -1 && node < (1 << nodeBits) - 1,
                     "node id out of packing range: ", node);
        MINOS_ASSERT(version >= -1 &&
                     version < (std::int64_t{1} << (63 - nodeBits)) - 1,
                     "version out of packing range: ", version);
        return (static_cast<std::uint64_t>(version + 1) << nodeBits) |
               static_cast<std::uint64_t>(node + 1);
    }

    /** Inverse of pack(). */
    static Timestamp
    unpack(std::uint64_t word)
    {
        Timestamp ts;
        ts.version =
            static_cast<std::int64_t>(word >> nodeBits) - 1;
        ts.node = static_cast<NodeId>(word & ((1u << nodeBits) - 1)) - 1;
        return ts;
    }

    friend std::ostream &
    operator<<(std::ostream &os, const Timestamp &ts)
    {
        return os << "<" << ts.node << "," << ts.version << ">";
    }
};

} // namespace minos::kv

namespace std {

template <>
struct hash<minos::kv::Timestamp>
{
    size_t
    operator()(const minos::kv::Timestamp &ts) const noexcept
    {
        return std::hash<std::uint64_t>()(ts.pack());
    }
};

} // namespace std

#endif // MINOS_KV_TIMESTAMP_HH
