#include "hashtable.hh"

#include "common/logging.hh"
#include "common/random.hh"

namespace minos::kv {

AtomicRecord::AtomicRecord()
    : rdLockOwner(Timestamp::none().pack()),
      volatileTs(Timestamp::none().pack()),
      glbVolatileTs(Timestamp::none().pack()),
      glbDurableTs(Timestamp::none().pack()),
      wrLock(false),
      value(0)
{
}

Timestamp
AtomicRecord::loadRdLockOwner() const
{
    return Timestamp::unpack(rdLockOwner.load(std::memory_order_acquire));
}

Timestamp
AtomicRecord::loadVolatileTs() const
{
    return Timestamp::unpack(volatileTs.load(std::memory_order_acquire));
}

Timestamp
AtomicRecord::loadGlbVolatileTs() const
{
    return Timestamp::unpack(
        glbVolatileTs.load(std::memory_order_acquire));
}

Timestamp
AtomicRecord::loadGlbDurableTs() const
{
    return Timestamp::unpack(glbDurableTs.load(std::memory_order_acquire));
}

bool
AtomicRecord::raiseTs(std::atomic<std::uint64_t> &field,
                      const Timestamp &ts)
{
    std::uint64_t desired = ts.pack();
    std::uint64_t cur = field.load(std::memory_order_acquire);
    while (cur < desired) {
        if (field.compare_exchange_weak(cur, desired,
                                        std::memory_order_acq_rel))
            return true;
    }
    return false;
}

HashTable::HashTable(std::size_t bucket_count)
    : buckets_(bucket_count ? bucket_count : 1),
      bucketLocks_(bucket_count ? bucket_count : 1)
{
    for (auto &b : buckets_)
        b.store(nullptr, std::memory_order_relaxed);
}

HashTable::~HashTable()
{
    for (auto &b : buckets_) {
        Node *n = b.load(std::memory_order_relaxed);
        while (n) {
            Node *next = n->next.load(std::memory_order_relaxed);
            delete n;
            n = next;
        }
    }
}

std::size_t
HashTable::bucketOf(Key k) const
{
    return fnv1aHash64(k) % buckets_.size();
}

AtomicRecord *
HashTable::find(Key k) const
{
    Node *n = buckets_[bucketOf(k)].load(std::memory_order_acquire);
    while (n) {
        if (n->key == k)
            return &n->record;
        n = n->next.load(std::memory_order_acquire);
    }
    return nullptr;
}

AtomicRecord &
HashTable::getOrCreate(Key k)
{
    if (AtomicRecord *rec = find(k))
        return *rec;

    std::size_t b = bucketOf(k);
    std::lock_guard<std::mutex> guard(bucketLocks_[b]);
    // Re-check under the bucket lock: someone may have inserted it.
    Node *head = buckets_[b].load(std::memory_order_acquire);
    for (Node *n = head; n; n = n->next.load(std::memory_order_acquire)) {
        if (n->key == k)
            return n->record;
    }
    auto *node = new Node(k);
    node->next.store(head, std::memory_order_relaxed);
    buckets_[b].store(node, std::memory_order_release);
    size_.fetch_add(1, std::memory_order_relaxed);
    return node->record;
}

} // namespace minos::kv
