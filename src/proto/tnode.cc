#include "tnode.hh"

#include <algorithm>

#include "common/logging.hh"

namespace minos::proto {

using kv::AtomicRecord;
using kv::Key;
using kv::NodeId;
using kv::Timestamp;
using kv::Value;
using net::Message;
using net::MsgType;
using net::ScopeId;
using recovery::CtrlMsg;
using recovery::CtrlType;
using recovery::nodeBit;
using simproto::isScopeModel;
using simproto::tracksPersistPerWrite;
using simproto::usesSplitAcks;

using Clock = std::chrono::steady_clock;

namespace {

/** Per-model INV flavor. */
MsgType
invTypeFor(PersistModel m)
{
    return isScopeModel(m) ? MsgType::INV_SC : MsgType::INV;
}

/** Per-model consistency-ACK flavor. */
MsgType
ackCTypeFor(PersistModel m)
{
    if (m == PersistModel::Synch)
        return MsgType::ACK;
    return isScopeModel(m) ? MsgType::ACK_C_SC : MsgType::ACK_C;
}

/** Per-model consistency-VAL flavor. */
MsgType
valCTypeFor(PersistModel m)
{
    switch (m) {
      case PersistModel::Synch:
      case PersistModel::REnf:
        return MsgType::VAL;
      case PersistModel::Strict:
      case PersistModel::Event:
        return MsgType::VAL_C;
      case PersistModel::Scope:
        return MsgType::VAL_C_SC;
    }
    return MsgType::VAL;
}

} // namespace

// ---------------------------------------------------------------------
// ThreadedNode lifecycle
// ---------------------------------------------------------------------

ThreadedNode::ThreadedNode(ThreadedCluster &cluster,
                           const ThreadedConfig &cfg, NodeId id)
    : cluster_(cluster), cfg_(cfg), id_(id),
      store_(std::max<std::size_t>(64, cfg.numRecords * 2)),
      nvm_(cfg.persistNsPerKb),
      live_((std::uint64_t{1} << cfg.numNodes) - 1)
{
}

ThreadedNode::~ThreadedNode()
{
    stop();
}

void
ThreadedNode::start()
{
    if (running_.exchange(true))
        return;
    for (int i = 0; i < cfg_.rpcThreads; ++i)
        rpcThreads_.emplace_back([this] { rpcLoop(); });
    persister_ = std::thread([this] { persisterLoop(); });
}

void
ThreadedNode::stop()
{
    if (!running_.exchange(false))
        return;
    for (auto &t : rpcThreads_)
        t.join();
    rpcThreads_.clear();
    if (persister_.joinable())
        persister_.join();
}

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

Timestamp
ThreadedNode::makeWriteTs(AtomicRecord &rec)
{
    std::int64_t guard =
        rec.localVersionGuard.load(std::memory_order_acquire);
    std::int64_t ver;
    do {
        std::int64_t vol = Timestamp::unpack(
                               rec.volatileTs.load(
                                   std::memory_order_acquire))
                               .version;
        ver = std::max(vol + 1, guard);
    } while (!rec.localVersionGuard.compare_exchange_weak(
        guard, ver + 1, std::memory_order_acq_rel));
    return Timestamp{ver, id_};
}

bool
ThreadedNode::obsolete(const AtomicRecord &rec, const Timestamp &ts)
{
    return rec.volatileTs.load(std::memory_order_acquire) > ts.pack();
}

void
ThreadedNode::snatchRdLock(AtomicRecord &rec, const Timestamp &ts)
{
    // Identical semantics to raising a timestamp: grab when free (none
    // packs below everything) or snatch from an older write.
    AtomicRecord::raiseTs(rec.rdLockOwner, ts);
}

void
ThreadedNode::releaseRdLockIfOwner(AtomicRecord &rec,
                                   const Timestamp &ts)
{
    std::uint64_t expected = ts.pack();
    rec.rdLockOwner.compare_exchange_strong(
        expected, Timestamp::none().pack(), std::memory_order_acq_rel);
}

void
ThreadedNode::acquireWrLock(AtomicRecord &rec)
{
    while (rec.wrLock.exchange(true, std::memory_order_acquire))
        std::this_thread::yield();
}

void
ThreadedNode::releaseWrLock(AtomicRecord &rec)
{
    rec.wrLock.store(false, std::memory_order_release);
}

void
ThreadedNode::spinPersistLatency(std::uint32_t bytes) const
{
    auto until = Clock::now() +
                 std::chrono::nanoseconds(nvm_.persistLatency(bytes));
    while (Clock::now() < until) {
        // Emulated NVM write (paper Table II): busy-wait the medium's
        // latency, like the paper's emulation on CloudLab.
    }
}

void
ThreadedNode::handleObsoleteBlocking(AtomicRecord &rec,
                                     std::uint64_t observed_pack)
{
    // ConsistencySpin: a real spin on the coherent glb_volatileTS.
    while (rec.glbVolatileTs.load(std::memory_order_acquire) <
           observed_pack)
        std::this_thread::yield();
    if (simproto::needsPersistencySpin(cfg_.model)) {
        while (rec.glbDurableTs.load(std::memory_order_acquire) <
               observed_pack)
            std::this_thread::yield();
    }
}

// ---------------------------------------------------------------------
// Membership
// ---------------------------------------------------------------------

std::uint64_t
ThreadedNode::followerMask() const
{
    return live_.load(std::memory_order_acquire) & ~nodeBit(id_);
}

void
ThreadedNode::declareFailed(NodeId n)
{
    std::uint64_t bit = nodeBit(n);
    if (!(live_.fetch_and(~bit, std::memory_order_acq_rel) & bit))
        return; // already declared
    MINOS_WARN("node ", id_, ": declaring node ", n,
               " failed (ACK timeout)");
    // Alert all other live nodes (paper §III-E).
    for (int d = 0; d < cfg_.numNodes; ++d) {
        if (d == id_ || d == n ||
            !recovery::isLive(live_.load(), static_cast<NodeId>(d)))
            continue;
        CtrlMsg fail;
        fail.type = CtrlType::Fail;
        fail.src = id_;
        fail.dst = static_cast<NodeId>(d);
        fail.subject = n;
        cluster_.fabric().send(fail);
    }
}

// ---------------------------------------------------------------------
// Messaging
// ---------------------------------------------------------------------

void
ThreadedNode::broadcastToLive(Message tmpl)
{
    std::uint64_t targets = followerMask();
    for (int d = 0; d < cfg_.numNodes; ++d) {
        if (!(targets & nodeBit(static_cast<NodeId>(d))))
            continue;
        Message m = tmpl;
        m.src = id_;
        m.dst = static_cast<NodeId>(d);
        cluster_.fabric().send(m);
    }
}

void
ThreadedNode::respond(const Message &req, MsgType type)
{
    cluster_.fabric().send(net::makeResponse(req, type));
}

// ---------------------------------------------------------------------
// Coordinator bookkeeping
// ---------------------------------------------------------------------

ThreadedNode::TxnPtr
ThreadedNode::registerTxn(Key key, const Timestamp &ts)
{
    auto txn = std::make_shared<TxnState>();
    txn->key = key;
    txn->ts = ts;
    std::lock_guard<std::mutex> guard(txnMutex_);
    auto [it, inserted] = txns_.emplace(TxnKey{key, ts.pack()}, txn);
    MINOS_ASSERT(inserted, "duplicate threaded TS_WR");
    return txn;
}

ThreadedNode::TxnPtr
ThreadedNode::findTxn(Key key, const Timestamp &ts)
{
    std::lock_guard<std::mutex> guard(txnMutex_);
    auto it = txns_.find(TxnKey{key, ts.pack()});
    return it == txns_.end() ? nullptr : it->second;
}

void
ThreadedNode::unregisterTxn(Key key, const Timestamp &ts)
{
    std::lock_guard<std::mutex> guard(txnMutex_);
    txns_.erase(TxnKey{key, ts.pack()});
}

bool
ThreadedNode::waitMask(const std::atomic<std::uint64_t> &mask,
                       const char *what)
{
    auto deadline = Clock::now() + cfg_.ackTimeout;
    for (;;) {
        std::uint64_t required = followerMask();
        if ((mask.load(std::memory_order_acquire) & required) ==
            required)
            return true;
        if (Clock::now() > deadline) {
            std::uint64_t missing =
                required & ~mask.load(std::memory_order_acquire);
            MINOS_WARN("node ", id_, ": timeout waiting ", what);
            for (int n = 0; n < cfg_.numNodes; ++n) {
                if (missing & nodeBit(static_cast<NodeId>(n)))
                    declareFailed(static_cast<NodeId>(n));
            }
            deadline = Clock::now() + cfg_.ackTimeout;
        }
        std::this_thread::yield();
    }
}

void
ThreadedNode::maybeFinalizeRenf(Key key, const Timestamp &ts,
                                const TxnPtr &txn)
{
    if (cfg_.model != PersistModel::REnf)
        return;
    std::uint64_t required = followerMask();
    if ((txn->ackPMask.load(std::memory_order_acquire) & required) !=
            required ||
        !txn->localPersistDone.load(std::memory_order_acquire))
        return;
    if (txn->finalized.exchange(true, std::memory_order_acq_rel))
        return;
    AtomicRecord &rec = store_.getOrCreate(key);
    AtomicRecord::raiseTs(rec.glbDurableTs, ts);
    releaseRdLockIfOwner(rec, ts);
    Message val;
    val.type = MsgType::VAL;
    val.key = key;
    val.tsWr = ts;
    val.sizeBytes = net::controlMsgBytes;
    broadcastToLive(val);
    unregisterTxn(key, ts);
}

// ---------------------------------------------------------------------
// Client API (Coordinator algorithms, Fig. 2 / Fig. 3)
// ---------------------------------------------------------------------

WriteResult
ThreadedNode::write(Key key, Value value, ScopeId scope)
{
    MINOS_ASSERT(running_.load(), "node not started");
    AtomicRecord &rec = store_.getOrCreate(key);
    Timestamp ts = makeWriteTs(rec);
    WriteResult res{ts, false};

    // Line 5: early obsoleteness check.
    if (obsolete(rec, ts)) {
        res.obsolete = true;
        handleObsoleteBlocking(rec, rec.volatileTs.load());
        return res;
    }

    // Lines 8-9: Snatch RDLock, grab WRLock.
    snatchRdLock(rec, ts);
    acquireWrLock(rec);

    TxnPtr txn;
    // Line 10: final check under the WRLock.
    if (!obsolete(rec, ts)) {
        txn = registerTxn(key, ts);
        Message m;
        m.type = invTypeFor(cfg_.model);
        m.key = key;
        m.tsWr = ts;
        m.value = value;
        m.scope = scope;
        m.sizeBytes = cfg_.recordBytes + net::controlMsgBytes;
        broadcastToLive(m);
        rec.value.store(value, std::memory_order_release);
        AtomicRecord::raiseTs(rec.volatileTs, ts);
        releaseWrLock(rec);
    } else {
        res.obsolete = true;
        std::uint64_t observed = rec.volatileTs.load();
        releaseWrLock(rec);
        handleObsoleteBlocking(rec, observed);
        releaseRdLockIfOwner(rec, ts);
        return res;
    }

    // Line 18 / Fig. 3 step d: persist.
    if (simproto::persistOnCriticalPath(cfg_.model)) {
        spinPersistLatency(cfg_.recordBytes);
        log_.append({key, value, ts});
        txn->localPersistDone.store(true, std::memory_order_release);
    } else {
        PersistJob job{key, value, ts, scope,
                       cfg_.model == PersistModel::REnf};
        enqueuePersist(std::move(job));
    }

    // Per-model gates and completion.
    switch (cfg_.model) {
      case PersistModel::Synch: {
        waitMask(txn->ackMask, "ACKs");
        AtomicRecord::raiseTs(rec.glbVolatileTs, ts);
        AtomicRecord::raiseTs(rec.glbDurableTs, ts);
        releaseRdLockIfOwner(rec, ts);
        Message val;
        val.type = MsgType::VAL;
        val.key = key;
        val.tsWr = ts;
        val.sizeBytes = net::controlMsgBytes;
        broadcastToLive(val);
        unregisterTxn(key, ts);
        break;
      }
      case PersistModel::Strict: {
        waitMask(txn->ackCMask, "ACK_Cs");
        AtomicRecord::raiseTs(rec.glbVolatileTs, ts);
        releaseRdLockIfOwner(rec, ts);
        Message valc;
        valc.type = MsgType::VAL_C;
        valc.key = key;
        valc.tsWr = ts;
        valc.sizeBytes = net::controlMsgBytes;
        broadcastToLive(valc);
        waitMask(txn->ackPMask, "ACK_Ps");
        AtomicRecord::raiseTs(rec.glbDurableTs, ts);
        Message valp = valc;
        valp.type = MsgType::VAL_P;
        broadcastToLive(valp);
        unregisterTxn(key, ts);
        break;
      }
      case PersistModel::REnf: {
        waitMask(txn->ackCMask, "ACK_Cs");
        AtomicRecord::raiseTs(rec.glbVolatileTs, ts);
        // RDLock stays held; the tail (VALs + unlock) runs when all
        // ACK_Ps and the local background persist are in.
        maybeFinalizeRenf(key, ts, txn);
        break;
      }
      case PersistModel::Event:
      case PersistModel::Scope: {
        waitMask(txn->ackCMask, "ACK_Cs");
        AtomicRecord::raiseTs(rec.glbVolatileTs, ts);
        releaseRdLockIfOwner(rec, ts);
        Message val;
        val.type = valCTypeFor(cfg_.model);
        val.key = key;
        val.tsWr = ts;
        val.scope = scope;
        val.sizeBytes = net::controlMsgBytes;
        broadcastToLive(val);
        unregisterTxn(key, ts);
        break;
      }
    }
    return res;
}

Value
ThreadedNode::read(Key key)
{
    MINOS_ASSERT(running_.load(), "node not started");
    AtomicRecord &rec = store_.getOrCreate(key);
    // §III-D: a read stalls only while the RDLock is taken.
    while (!Timestamp::unpack(rec.rdLockOwner.load(
                                  std::memory_order_acquire))
                .isNone())
        std::this_thread::yield();
    return rec.value.load(std::memory_order_acquire);
}

void
ThreadedNode::persistScope(ScopeId scope)
{
    if (!isScopeModel(cfg_.model))
        return;
    Message m;
    m.type = MsgType::PERSIST_SC;
    m.scope = scope;
    m.sizeBytes = net::controlMsgBytes;
    broadcastToLive(m);

    // Complete all local persists in the scope, then the marker itself.
    for (;;) {
        {
            std::lock_guard<std::mutex> guard(scopeMutex_);
            if (scopeUnpersisted_[scope] == 0)
                break;
        }
        std::this_thread::yield();
    }
    spinPersistLatency(net::controlMsgBytes);

    // Spin for all [ACK_P]sc with failure detection.
    auto deadline = Clock::now() + cfg_.ackTimeout;
    for (;;) {
        std::uint64_t acked;
        {
            std::lock_guard<std::mutex> guard(scopeMutex_);
            acked = scopeAckMask_[scope];
        }
        std::uint64_t required = followerMask();
        if ((acked & required) == required)
            break;
        if (Clock::now() > deadline) {
            std::uint64_t missing = required & ~acked;
            for (int n = 0; n < cfg_.numNodes; ++n) {
                if (missing & nodeBit(static_cast<NodeId>(n)))
                    declareFailed(static_cast<NodeId>(n));
            }
            deadline = Clock::now() + cfg_.ackTimeout;
        }
        std::this_thread::yield();
    }

    Message val;
    val.type = MsgType::VAL_P_SC;
    val.scope = scope;
    val.sizeBytes = net::controlMsgBytes;
    broadcastToLive(val);
    std::lock_guard<std::mutex> guard(scopeMutex_);
    scopeAckMask_.erase(scope);
}

// ---------------------------------------------------------------------
// RPC loop and handlers (Follower algorithms)
// ---------------------------------------------------------------------

void
ThreadedNode::rpcLoop()
{
    while (running_.load(std::memory_order_acquire)) {
        bool worked = false;
        if (auto env = cluster_.fabric().poll(id_)) {
            handleEnvelope(std::move(*env));
            worked = true;
        }
        processDeferred();
        if (!worked)
            std::this_thread::yield();
    }
}

void
ThreadedNode::handleEnvelope(runtime::Envelope env)
{
    if (auto *ctrl = std::get_if<CtrlMsg>(&env)) {
        onCtrl(*ctrl);
        return;
    }
    const Message &msg = std::get<Message>(env);
    switch (msg.type) {
      case MsgType::INV:
      case MsgType::INV_SC:
        onInv(msg);
        break;
      case MsgType::ACK:
      case MsgType::ACK_C:
      case MsgType::ACK_P:
      case MsgType::ACK_C_SC:
      case MsgType::ACK_P_SC:
        onAck(msg);
        break;
      case MsgType::VAL:
      case MsgType::VAL_C:
      case MsgType::VAL_P:
      case MsgType::VAL_C_SC:
      case MsgType::VAL_P_SC:
        onVal(msg);
        break;
      case MsgType::PERSIST_SC:
        onPersistSc(msg);
        break;
    }
}

void
ThreadedNode::onInv(const Message &msg)
{
    AtomicRecord &rec = store_.getOrCreate(msg.key);

    // Lines 27-30: obsolete INV -> park the spin as a deferred
    // continuation (the rpc loop must not block on it).
    if (obsolete(rec, msg.tsWr)) {
        obsoleteInvs_.fetch_add(1, std::memory_order_relaxed);
        Deferred d{msg, rec.volatileTs.load(), 0, Clock::now()};
        std::lock_guard<std::mutex> guard(deferredMutex_);
        deferred_.push_back(std::move(d));
        return;
    }

    // Lines 31-33.
    snatchRdLock(rec, msg.tsWr);
    acquireWrLock(rec);
    if (!obsolete(rec, msg.tsWr)) {
        rec.value.store(msg.value, std::memory_order_release);
        AtomicRecord::raiseTs(rec.volatileTs, msg.tsWr);
        releaseWrLock(rec);
    } else {
        obsoleteInvs_.fetch_add(1, std::memory_order_relaxed);
        std::uint64_t observed = rec.volatileTs.load();
        releaseWrLock(rec);
        Deferred d{msg, observed, 0, Clock::now()};
        std::lock_guard<std::mutex> guard(deferredMutex_);
        deferred_.push_back(std::move(d));
        return;
    }

    // Lines 39-40 / Fig. 3 follower deltas.
    switch (cfg_.model) {
      case PersistModel::Synch:
        spinPersistLatency(cfg_.recordBytes);
        log_.append({msg.key, msg.value, msg.tsWr});
        respond(msg, MsgType::ACK);
        break;
      case PersistModel::Strict:
      case PersistModel::REnf:
        respond(msg, MsgType::ACK_C);
        spinPersistLatency(cfg_.recordBytes);
        log_.append({msg.key, msg.value, msg.tsWr});
        respond(msg, MsgType::ACK_P);
        break;
      case PersistModel::Event:
      case PersistModel::Scope:
        respond(msg, ackCTypeFor(cfg_.model));
        enqueuePersist(
            PersistJob{msg.key, msg.value, msg.tsWr, msg.scope, false});
        break;
    }
}

void
ThreadedNode::onAck(const Message &msg)
{
    if (msg.type == MsgType::ACK_P_SC) {
        std::lock_guard<std::mutex> guard(scopeMutex_);
        scopeAckMask_[msg.scope] |= nodeBit(msg.src);
        return;
    }
    TxnPtr txn = findTxn(msg.key, msg.tsWr);
    if (!txn)
        return; // stray ACK for a finished transaction
    std::uint64_t bit = nodeBit(msg.src);
    switch (msg.type) {
      case MsgType::ACK:
        txn->ackMask.fetch_or(bit, std::memory_order_acq_rel);
        break;
      case MsgType::ACK_C:
      case MsgType::ACK_C_SC:
        txn->ackCMask.fetch_or(bit, std::memory_order_acq_rel);
        break;
      case MsgType::ACK_P:
        txn->ackPMask.fetch_or(bit, std::memory_order_acq_rel);
        maybeFinalizeRenf(msg.key, msg.tsWr, txn);
        break;
      default:
        break;
    }
}

void
ThreadedNode::onVal(const Message &msg)
{
    AtomicRecord &rec = store_.getOrCreate(msg.key);
    switch (msg.type) {
      case MsgType::VAL:
        AtomicRecord::raiseTs(rec.glbVolatileTs, msg.tsWr);
        AtomicRecord::raiseTs(rec.glbDurableTs, msg.tsWr);
        releaseRdLockIfOwner(rec, msg.tsWr);
        break;
      case MsgType::VAL_C:
      case MsgType::VAL_C_SC:
        AtomicRecord::raiseTs(rec.glbVolatileTs, msg.tsWr);
        releaseRdLockIfOwner(rec, msg.tsWr);
        break;
      case MsgType::VAL_P:
        AtomicRecord::raiseTs(rec.glbDurableTs, msg.tsWr);
        break;
      case MsgType::VAL_P_SC:
        break; // terminates the [PERSIST]sc at the follower
      default:
        break;
    }
}

void
ThreadedNode::onPersistSc(const Message &msg)
{
    // Complete persisting all WRs inside the scope (the persister thread
    // drains them independently, so this bounded wait cannot deadlock),
    // persist the marker, acknowledge.
    for (;;) {
        {
            std::lock_guard<std::mutex> guard(scopeMutex_);
            if (scopeUnpersisted_[msg.scope] == 0)
                break;
        }
        std::this_thread::yield();
    }
    spinPersistLatency(net::controlMsgBytes);
    respond(msg, MsgType::ACK_P_SC);
}

void
ThreadedNode::processDeferred()
{
    std::vector<Deferred> work;
    {
        std::lock_guard<std::mutex> guard(deferredMutex_);
        if (deferred_.empty())
            return;
        work.swap(deferred_);
    }
    std::vector<Deferred> keep;
    for (auto &d : work) {
        if (!advanceDeferred(d))
            keep.push_back(std::move(d));
    }
    if (!keep.empty()) {
        std::lock_guard<std::mutex> guard(deferredMutex_);
        for (auto &d : keep)
            deferred_.push_back(std::move(d));
    }
}

bool
ThreadedNode::advanceDeferred(Deferred &d)
{
    AtomicRecord &rec = store_.getOrCreate(d.req.key);
    const bool split = usesSplitAcks(cfg_.model);
    const bool tracks = tracksPersistPerWrite(cfg_.model);

    if (d.stage == 0) {
        // ConsistencySpin condition.
        if (rec.glbVolatileTs.load(std::memory_order_acquire) <
            d.observedPack)
            return false;
        if (split) {
            respond(d.req, ackCTypeFor(cfg_.model));
            if (!tracks) {
                // Event/Scope: done after the consistency ACK.
                releaseRdLockIfOwner(rec, d.req.tsWr);
                return true;
            }
            d.stage = 1;
            return false;
        }
        d.stage = 1; // Synch: also needs the PersistencySpin
        return false;
    }

    // PersistencySpin condition.
    if (rec.glbDurableTs.load(std::memory_order_acquire) <
        d.observedPack)
        return false;
    respond(d.req, split ? MsgType::ACK_P : MsgType::ACK);
    // We may be a stale RDLock owner (see §III-A discussion); release.
    releaseRdLockIfOwner(rec, d.req.tsWr);
    return true;
}

// ---------------------------------------------------------------------
// Persister
// ---------------------------------------------------------------------

void
ThreadedNode::enqueuePersist(PersistJob job)
{
    if (isScopeModel(cfg_.model)) {
        std::lock_guard<std::mutex> guard(scopeMutex_);
        ++scopeUnpersisted_[job.scope];
    }
    std::lock_guard<std::mutex> guard(persistMutex_);
    persistQueue_.push_back(std::move(job));
}

void
ThreadedNode::persisterLoop()
{
    while (running_.load(std::memory_order_acquire)) {
        std::vector<PersistJob> batch;
        {
            std::lock_guard<std::mutex> guard(persistMutex_);
            batch.swap(persistQueue_);
        }
        if (batch.empty()) {
            std::this_thread::yield();
            continue;
        }
        for (auto &job : batch) {
            spinPersistLatency(cfg_.recordBytes);
            log_.append({job.key, job.value, job.ts});
            if (isScopeModel(cfg_.model)) {
                std::lock_guard<std::mutex> guard(scopeMutex_);
                --scopeUnpersisted_[job.scope];
            }
            if (job.renfCoordinator) {
                if (TxnPtr txn = findTxn(job.key, job.ts)) {
                    txn->localPersistDone.store(
                        true, std::memory_order_release);
                    maybeFinalizeRenf(job.key, job.ts, txn);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Control plane (failure detection & recovery, §III-E)
// ---------------------------------------------------------------------

void
ThreadedNode::onCtrl(const CtrlMsg &msg)
{
    switch (msg.type) {
      case CtrlType::Fail: {
        live_.fetch_and(~nodeBit(msg.subject),
                        std::memory_order_acq_rel);
        // REnf tails may now be unblocked (one fewer required ACK_P).
        if (cfg_.model == PersistModel::REnf) {
            std::vector<TxnPtr> snapshot;
            {
                std::lock_guard<std::mutex> guard(txnMutex_);
                for (auto &[k, txn] : txns_)
                    snapshot.push_back(txn);
            }
            for (auto &txn : snapshot)
                maybeFinalizeRenf(txn->key, txn->ts, txn);
        }
        break;
      }
      case CtrlType::JoinReq: {
        // We are the designated node: ship the committed log and
        // announce the rejoin.
        CtrlMsg ship;
        ship.type = CtrlType::LogShip;
        ship.src = id_;
        ship.dst = msg.subject;
        ship.subject = msg.subject;
        ship.entries = log_.exportSince(0);
        ship.liveMask = live_.load() | nodeBit(msg.subject);
        cluster_.fabric().send(ship);
        live_.fetch_or(nodeBit(msg.subject), std::memory_order_acq_rel);
        for (int d = 0; d < cfg_.numNodes; ++d) {
            if (d == id_ || d == msg.subject)
                continue;
            CtrlMsg joined;
            joined.type = CtrlType::Joined;
            joined.src = id_;
            joined.dst = static_cast<NodeId>(d);
            joined.subject = msg.subject;
            cluster_.fabric().send(joined);
        }
        break;
      }
      case CtrlType::Joined:
        live_.fetch_or(nodeBit(msg.subject), std::memory_order_acq_rel);
        break;
      case CtrlType::LogShip: {
        // Replay the shipped updates into persistent and volatile state
        // (obsolete entries are filtered by the timestamp checks).
        for (const auto &e : msg.entries) {
            log_.append(e);
            AtomicRecord &rec = store_.getOrCreate(e.key);
            std::uint64_t pack = e.ts.pack();
            if (rec.volatileTs.load(std::memory_order_acquire) < pack) {
                rec.value.store(e.value, std::memory_order_release);
                AtomicRecord::raiseTs(rec.volatileTs, e.ts);
            }
            AtomicRecord::raiseTs(rec.glbVolatileTs, e.ts);
            AtomicRecord::raiseTs(rec.glbDurableTs, e.ts);
        }
        live_.store(msg.liveMask | nodeBit(id_),
                    std::memory_order_release);
        break;
      }
    }
}

// ---------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------

const AtomicRecord *
ThreadedNode::record(Key key) const
{
    return store_.find(key);
}

nvm::DurableDb
ThreadedNode::durableDb() const
{
    nvm::DurableDb db;
    log_.applyTo(db);
    return db;
}

// ---------------------------------------------------------------------
// ThreadedCluster
// ---------------------------------------------------------------------

ThreadedCluster::ThreadedCluster(const ThreadedConfig &cfg)
    : cfg_(cfg), fabric_(cfg.numNodes, cfg.wireLatency)
{
    MINOS_ASSERT(cfg_.numNodes >= 2 && cfg_.numNodes <= 64,
                 "threaded cluster supports 2..64 nodes");
    nodes_.reserve(static_cast<std::size_t>(cfg_.numNodes));
    for (int i = 0; i < cfg_.numNodes; ++i)
        nodes_.push_back(std::make_unique<ThreadedNode>(
            *this, cfg_, static_cast<NodeId>(i)));
    for (auto &n : nodes_)
        n->start();
}

ThreadedCluster::~ThreadedCluster()
{
    for (auto &n : nodes_)
        n->stop();
}

ThreadedNode &
ThreadedCluster::node(NodeId id)
{
    MINOS_ASSERT(id >= 0 && id < cfg_.numNodes, "bad node id ", id);
    return *nodes_[static_cast<std::size_t>(id)];
}

void
ThreadedCluster::failNode(NodeId id)
{
    fabric_.setLinkUp(id, false);
}

void
ThreadedCluster::healAndRejoin(NodeId id)
{
    fabric_.setLinkUp(id, true);
    // Ask the designated (lowest-id reachable) node to ship its log.
    NodeId designated = -1;
    for (int n = 0; n < cfg_.numNodes; ++n) {
        if (n != id && fabric_.linkUp(static_cast<NodeId>(n))) {
            designated = static_cast<NodeId>(n);
            break;
        }
    }
    MINOS_ASSERT(designated >= 0, "no live node to rejoin through");
    CtrlMsg join;
    join.type = CtrlType::JoinReq;
    join.src = id;
    join.dst = designated;
    join.subject = id;
    fabric_.send(join);
}

} // namespace minos::proto
