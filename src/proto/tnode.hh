/**
 * @file
 * Threaded MINOS-B: the paper's §III algorithms running on real OS
 * threads with real atomics — the "distributed machine" implementation
 * of §IV, with the wire replaced by the in-process loopback fabric.
 *
 * Division of labor:
 *  - Client threads (any external thread) run the Coordinator write/read
 *    algorithms, blocking with genuine spins on ACK masks and lock words.
 *  - Per node, `rpcThreads` event-loop threads poll the fabric and run
 *    Follower handlers and ACK/VAL bookkeeping; handlers that must spin
 *    (obsolete INVs waiting for ConsistencySpin/PersistencySpin) are
 *    parked on a deferred list re-checked every loop iteration, so the
 *    loop never blocks.
 *  - One persister thread per node emulates the NVM write latency and
 *    retires background persists (Event/Scope and the REnf coordinator).
 *
 * Failure detection and recovery (§III-E): ACK waits carry a timeout;
 * non-responders are declared failed (Ctrl Fail) and writes complete
 * against the shrunken live set. A rejoining node asks the designated
 * (lowest-id live) node for the committed log, replays it into durable
 * and volatile state, and is re-announced (Ctrl Joined).
 */

#ifndef MINOS_PROTO_TNODE_HH
#define MINOS_PROTO_TNODE_HH

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "kv/hashtable.hh"
#include "net/message.hh"
#include "nvm/log.hh"
#include "nvm/model.hh"
#include "recovery/ctrl.hh"
#include "runtime/fabric.hh"
#include "simproto/models.hh"

namespace minos::proto {

using simproto::PersistModel;

/** Configuration of the threaded cluster. */
struct ThreadedConfig
{
    int numNodes = 3;
    PersistModel model = PersistModel::Synch;
    Tick persistNsPerKb = 1295;
    std::uint32_t recordBytes = 1024;
    std::uint64_t numRecords = 1024;
    /** One-way wire latency injected by the fabric. */
    std::chrono::nanoseconds wireLatency{2000};
    /** ACK-wait timeout that triggers failure detection. */
    std::chrono::milliseconds ackTimeout{50};
    /** Event-loop threads per node. */
    int rpcThreads = 2;
};

/** Result of a threaded client-write. */
struct WriteResult
{
    kv::Timestamp ts = kv::Timestamp::none();
    bool obsolete = false;
};

class ThreadedCluster;

/** One node of the threaded MINOS-B cluster. */
class ThreadedNode
{
  public:
    ThreadedNode(ThreadedCluster &cluster, const ThreadedConfig &cfg,
                 kv::NodeId id);
    ~ThreadedNode();

    ThreadedNode(const ThreadedNode &) = delete;
    ThreadedNode &operator=(const ThreadedNode &) = delete;

    void start();
    void stop();

    kv::NodeId id() const { return id_; }

    /** Blocking Coordinator client-write (callable from any thread). */
    WriteResult write(kv::Key key, kv::Value value,
                      net::ScopeId scope = 0);

    /** Blocking local client-read. */
    kv::Value read(kv::Key key);

    /** Blocking [PERSIST]sc transaction (<Lin, Scope> only). */
    void persistScope(net::ScopeId scope);

    /** @{ Introspection for tests. */
    const kv::AtomicRecord *record(kv::Key key) const;
    nvm::DurableDb durableDb() const;
    std::uint64_t liveMask() const { return live_.load(); }
    std::size_t logSize() const { return log_.size(); }
    /** Fold the whole committed log into its snapshot (compaction). */
    void compactLog() { log_.compact(log_.size()); }
    std::uint64_t obsoleteInvs() const { return obsoleteInvs_.load(); }
    /** @} */

  private:
    friend class ThreadedCluster;

    /** Outstanding coordinator transaction (lock-free counters). */
    struct TxnState
    {
        kv::Key key = 0;
        kv::Timestamp ts = kv::Timestamp::none();
        std::atomic<std::uint64_t> ackMask{0};
        std::atomic<std::uint64_t> ackCMask{0};
        std::atomic<std::uint64_t> ackPMask{0};
        std::atomic<bool> localPersistDone{false};
        std::atomic<bool> finalized{false};
    };

    using TxnPtr = std::shared_ptr<TxnState>;

    /** Parked obsolete-INV continuation (non-blocking rpc loop). */
    struct Deferred
    {
        net::Message req;
        std::uint64_t observedPack;
        int stage = 0;
        std::chrono::steady_clock::time_point t0;
    };

    /** Background persist work item. */
    struct PersistJob
    {
        kv::Key key;
        kv::Value value;
        kv::Timestamp ts;
        net::ScopeId scope;
        bool renfCoordinator = false;
    };

    // ---- primitives ----
    kv::Timestamp makeWriteTs(kv::AtomicRecord &rec);
    static bool obsolete(const kv::AtomicRecord &rec,
                         const kv::Timestamp &ts);
    void snatchRdLock(kv::AtomicRecord &rec, const kv::Timestamp &ts);
    void releaseRdLockIfOwner(kv::AtomicRecord &rec,
                              const kv::Timestamp &ts);
    void acquireWrLock(kv::AtomicRecord &rec);
    void releaseWrLock(kv::AtomicRecord &rec);
    void spinPersistLatency(std::uint32_t bytes) const;
    void handleObsoleteBlocking(kv::AtomicRecord &rec,
                                std::uint64_t observed_pack);

    // ---- membership / failure detection ----
    std::uint64_t followerMask() const;
    void declareFailed(kv::NodeId n);
    void onCtrl(const recovery::CtrlMsg &msg);

    // ---- messaging ----
    void broadcastToLive(net::Message tmpl);
    void respond(const net::Message &req, net::MsgType type);

    // ---- coordinator bookkeeping ----
    TxnPtr registerTxn(kv::Key key, const kv::Timestamp &ts);
    TxnPtr findTxn(kv::Key key, const kv::Timestamp &ts);
    void unregisterTxn(kv::Key key, const kv::Timestamp &ts);
    bool waitMask(const std::atomic<std::uint64_t> &mask,
                  const char *what);
    void maybeFinalizeRenf(kv::Key key, const kv::Timestamp &ts,
                           const TxnPtr &txn);

    // ---- rpc loop ----
    void rpcLoop();
    void handleEnvelope(runtime::Envelope env);
    void onInv(const net::Message &msg);
    void onAck(const net::Message &msg);
    void onVal(const net::Message &msg);
    void onPersistSc(const net::Message &msg);
    void processDeferred();
    bool advanceDeferred(Deferred &d);

    // ---- persister ----
    void persisterLoop();
    void enqueuePersist(PersistJob job);

    ThreadedCluster &cluster_;
    const ThreadedConfig cfg_;
    kv::NodeId id_;

    kv::HashTable store_;
    nvm::DurableLog log_;
    nvm::NvmModel nvm_;

    std::atomic<std::uint64_t> live_;
    std::atomic<bool> running_{false};
    std::vector<std::thread> rpcThreads_;
    std::thread persister_;

    using TxnKey = std::pair<kv::Key, std::uint64_t>;

    struct TxnKeyHash
    {
        std::size_t
        operator()(const TxnKey &k) const noexcept
        {
            return std::hash<std::uint64_t>()(k.first * 0x9E3779B9u) ^
                   std::hash<std::uint64_t>()(k.second);
        }
    };

    std::mutex txnMutex_;
    std::unordered_map<TxnKey, TxnPtr, TxnKeyHash> txns_;

    std::mutex scopeMutex_;
    std::unordered_map<net::ScopeId, int> scopeUnpersisted_;
    std::unordered_map<net::ScopeId, std::uint64_t> scopeAckMask_;

    std::mutex deferredMutex_;
    std::vector<Deferred> deferred_;

    std::mutex persistMutex_;
    std::vector<PersistJob> persistQueue_;

    std::atomic<std::uint64_t> obsoleteInvs_{0};
};

/** The threaded MINOS-B cluster: fabric + nodes + lifecycle. */
class ThreadedCluster
{
  public:
    explicit ThreadedCluster(const ThreadedConfig &cfg);
    ~ThreadedCluster();

    ThreadedCluster(const ThreadedCluster &) = delete;
    ThreadedCluster &operator=(const ThreadedCluster &) = delete;

    ThreadedNode &node(kv::NodeId id);
    runtime::Fabric &fabric() { return fabric_; }
    const ThreadedConfig &config() const { return cfg_; }

    /** Disconnect a node (crash / network partition injection). */
    void failNode(kv::NodeId id);

    /** Reconnect a node and run the §III-E rejoin protocol. */
    void healAndRejoin(kv::NodeId id);

  private:
    ThreadedConfig cfg_;
    runtime::Fabric fabric_;
    std::vector<std::unique_ptr<ThreadedNode>> nodes_;
};

} // namespace minos::proto

#endif // MINOS_PROTO_TNODE_HH
