#include "linearizability.hh"

#include <algorithm>
#include <limits>
#include <sstream>
#include <unordered_set>

#include "common/logging.hh"

namespace minos::check {

namespace {

/** Memoization key: which ops are already linearized + register value. */
struct MemoKey
{
    std::uint64_t done;
    kv::Value value;

    bool operator==(const MemoKey &o) const
    {
        return done == o.done && value == o.value;
    }
};

struct MemoHash
{
    std::size_t
    operator()(const MemoKey &k) const noexcept
    {
        return std::hash<std::uint64_t>()(k.done * 0x9E3779B97F4A7C15ull ^
                                          k.value);
    }
};

struct Searcher
{
    const std::vector<HistoryOp> &ops;
    std::size_t maxStates;
    std::size_t visited = 0;
    bool budgetHit = false;
    std::unordered_set<MemoKey, MemoHash> memo;

    bool
    search(std::uint64_t done, kv::Value value)
    {
        if (done == (ops.size() == 64
                         ? ~std::uint64_t{0}
                         : (std::uint64_t{1} << ops.size()) - 1))
            return true;
        if (++visited > maxStates) {
            budgetHit = true;
            return false;
        }
        if (!memo.insert(MemoKey{done, value}).second)
            return false;

        // Earliest response among pending ops: a candidate must have
        // invoked before that instant, or linearizing it would put it
        // after an operation that had already completed in real time.
        Tick frontier = std::numeric_limits<Tick>::max();
        for (std::size_t i = 0; i < ops.size(); ++i) {
            if (!(done & (std::uint64_t{1} << i)))
                frontier = std::min(frontier, ops[i].response);
        }

        for (std::size_t i = 0; i < ops.size(); ++i) {
            std::uint64_t bit = std::uint64_t{1} << i;
            if (done & bit)
                continue;
            const HistoryOp &op = ops[i];
            if (op.invoke > frontier)
                continue; // a completed pending op must come first
            if (op.kind == HistoryOp::Kind::Read) {
                if (op.value != value)
                    continue; // read cannot observe this value here
                if (search(done | bit, value))
                    return true;
            } else {
                if (search(done | bit, op.value))
                    return true;
            }
            if (budgetHit)
                return false;
        }
        return false;
    }
};

} // namespace

LinResult
checkLinearizable(const std::vector<HistoryOp> &history,
                  std::size_t max_states)
{
    LinResult result;
    if (history.size() > 64) {
        result.explanation = "history longer than 64 operations";
        result.inconclusive = true;
        return result;
    }
    for (const auto &op : history) {
        if (op.response < op.invoke) {
            result.explanation = "operation response precedes invoke";
            return result;
        }
    }
    // Unique write values are a precondition for register checking.
    {
        std::unordered_set<kv::Value> values;
        for (const auto &op : history) {
            if (op.kind == HistoryOp::Kind::Write &&
                !values.insert(op.value).second) {
                result.explanation = "duplicate write value";
                result.inconclusive = true;
                return result;
            }
        }
    }

    Searcher searcher{history, max_states, 0, false, {}};
    bool ok = searcher.search(0, 0);
    result.statesVisited = searcher.visited;
    if (ok) {
        result.linearizable = true;
        return result;
    }
    if (searcher.budgetHit) {
        result.inconclusive = true;
        result.explanation = "search budget exhausted";
        return result;
    }
    std::ostringstream os;
    os << "no sequential witness exists for the " << history.size()
       << "-operation history (" << searcher.visited
       << " states searched)";
    result.explanation = os.str();
    return result;
}

} // namespace minos::check
