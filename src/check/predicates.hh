/**
 * @file
 * Model-aware protocol gate predicates shared between the offline
 * model checker (check/checker.cc) and the streaming run-time auditors
 * (obs/audit.cc).
 *
 * Both verifiers ask the same Table I questions — "has this write
 * gathered the ACKs its model requires before X?" — so the ACK-count
 * arithmetic lives here, header-only (no link dependency; everything
 * derives from the constexpr helpers in simproto/models.hh).
 *
 * Conventions: @p needed is the follower count (numNodes - 1);
 * @p acks counts combined ACKs (Synch), @p acksC consistency-family
 * ACKs (ACK_C / ACK_C_SC), @p acksP persistency-family ACKs (ACK_P).
 */

#ifndef MINOS_CHECK_PREDICATES_HH
#define MINOS_CHECK_PREDICATES_HH

#include "simproto/models.hh"

namespace minos::check {

/**
 * Table I cond. 2b/2c gate: all consistency ACKs for the write are in.
 * Before this holds, glb_volatileTS must not advance past the write
 * and no consistency validation (VAL/VAL_C/VAL_C_SC) may be sent.
 */
constexpr bool
consistencyAcksComplete(simproto::PersistModel m, int acks, int acksC,
                        int needed)
{
    return (simproto::usesSplitAcks(m) ? acksC : acks) >= needed;
}

/**
 * Table I cond. 3b gate: all persistency ACKs for the write are in.
 * Before this holds, glb_durableTS must not advance past the write and
 * no persistency validation (VAL of Synch/REnf, VAL_P) may be sent.
 * Only meaningful for models that track persistency per write.
 */
constexpr bool
persistencyAcksComplete(simproto::PersistModel m, int acks, int acksP,
                        int needed)
{
    return (m == simproto::PersistModel::Synch ? acks : acksP) >=
           needed;
}

/**
 * True when the model promises that any readable (validated) record is
 * already durable on every replica: Synch validates with persistency
 * in one step, and REnf releases locks only after the write is durable
 * everywhere (its distinguishing read-enforcement). Strict does not —
 * it only stalls the *writer*, so reads may observe a not-yet-durable
 * record; Event/Scope decouple persistency entirely.
 */
constexpr bool
readImpliesDurableEverywhere(simproto::PersistModel m)
{
    return m == simproto::PersistModel::Synch ||
           m == simproto::PersistModel::REnf;
}

} // namespace minos::check

#endif // MINOS_CHECK_PREDICATES_HH
