#include "checker.hh"

#include <algorithm>
#include <array>
#include <cstring>
#include <deque>
#include <functional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.hh"

namespace minos::check {

namespace {

using simproto::isScopeModel;
using simproto::needsPersistencySpin;
using simproto::persistOnCriticalPath;
using simproto::tracksPersistPerWrite;
using simproto::usesSplitAcks;

/** In-flight message bits, per (write, node). */
enum MsgBit : std::uint8_t
{
    BitInv = 1,
    BitAck = 2,
    BitAckC = 4,
    BitAckP = 8,
    BitVal = 16,
    BitValC = 32,
    BitValP = 64,
};

/** Coordinator program counter. */
enum CPc : std::uint8_t
{
    CInit = 0,
    CSending,
    CPersist,
    CWaitAcks,
    CWaitAcksP,
    CObsWaitC,
    CObsWaitP,
    CDone,
};

/** Follower program counter (per write, per node). */
enum FPc : std::uint8_t
{
    FIdle = 0,
    FPersist,
    FBgPersist,
    FObsWaitC,
    FObsWaitP,
    FDone,
};

/** Scope-[PERSIST] per-node bits. */
enum PBit : std::uint8_t
{
    PInFlight = 1,
    PReceived = 2,
    PAckInFlight = 4,
    PValInFlight = 8,
    PTerminated = 16,
};

/**
 * The abstract protocol state. All members are single bytes so the
 * struct has no padding and can be hashed/compared bytewise.
 */
struct State
{
    // Per node (one record).
    std::int8_t rdOwner[maxNodes];
    std::int8_t vol[maxNodes];
    std::int8_t glbV[maxNodes];
    std::int8_t glbD[maxNodes];
    std::int8_t nextVer[maxNodes];
    // Per write.
    std::uint8_t cpc[maxWrites];
    std::int8_t ver[maxWrites];
    std::int8_t obsObs[maxWrites];
    std::uint8_t ackMask[maxWrites];
    std::uint8_t ackCMask[maxWrites];
    std::uint8_t ackPMask[maxWrites];
    std::uint8_t bgPending[maxWrites];
    // Per write x node.
    std::uint8_t msgs[maxWrites][maxNodes];
    std::uint8_t fpc[maxWrites][maxNodes];
    std::int8_t fObs[maxWrites][maxNodes];
    std::uint8_t durable[maxWrites][maxNodes];
    // [PERSIST]sc transaction.
    std::uint8_t ppc;
    std::uint8_t pAckMask;
    std::uint8_t pMsgs[maxNodes];

    bool
    operator==(const State &o) const
    {
        return std::memcmp(this, &o, sizeof(State)) == 0;
    }
};

static_assert(sizeof(State) ==
                  5 * maxNodes + 7 * maxWrites +
                      4 * maxWrites * maxNodes + 2 + maxNodes,
              "State must be packed (byte members only)");

struct StateHash
{
    std::size_t
    operator()(const State &s) const noexcept
    {
        const auto *p = reinterpret_cast<const unsigned char *>(&s);
        std::size_t h = 0xCBF29CE484222325ull;
        for (std::size_t i = 0; i < sizeof(State); ++i) {
            h ^= p[i];
            h *= 0x100000001B3ull;
        }
        return h;
    }
};

/** Exploration context. */
struct Ctx
{
    CheckConfig cfg;
    int W = 0; // number of writes
    int N = 0; // number of nodes

    /** Timestamp of write i: (version, writer). none() for -1. */
    std::pair<int, int>
    tsOf(const State &s, int i) const
    {
        if (i < 0)
            return {-1, -1};
        return {s.ver[i], cfg.writers[static_cast<std::size_t>(i)]};
    }

    /** Is write a's timestamp strictly newer than write b's? */
    bool
    newer(const State &s, int a, int b) const
    {
        return tsOf(s, a) > tsOf(s, b);
    }

    /** glb field (txn index) has reached observed (txn index)? */
    bool
    reached(const State &s, std::int8_t glb, std::int8_t observed) const
    {
        return !(tsOf(s, observed) > tsOf(s, glb));
    }

    int writerOf(int i) const
    {
        return cfg.writers[static_cast<std::size_t>(i)];
    }

    std::uint8_t
    followerMaskOf(int i) const
    {
        std::uint8_t all = static_cast<std::uint8_t>((1u << N) - 1);
        return all & static_cast<std::uint8_t>(~(1u << writerOf(i)));
    }
};

void
raiseField(const Ctx &ctx, const State &s, std::int8_t &field, int i)
{
    if (ctx.newer(s, i, field))
        field = static_cast<std::int8_t>(i);
}

void
releaseIfOwner(State &s, int node, int i)
{
    if (s.rdOwner[node] == static_cast<std::int8_t>(i))
        s.rdOwner[node] = -1;
}

/**
 * Node @p m's durable-log frontier has reached write @p i: the write
 * itself, or a newer write that obsoleted it, is persisted at m
 * (equivalent under the log's obsoleteness filter, §V-B.4).
 */
bool
frontierReached(const Ctx &ctx, const State &s, int i, int m)
{
    for (int j = 0; j < ctx.W; ++j) {
        if (s.durable[j][m] && !ctx.newer(s, i, j))
            return true;
    }
    return false;
}

/** Enumerate every successor of @p s; calls @p emit for each. */
void
forEachSuccessor(
    const Ctx &ctx, const State &s,
    const std::function<void(const State &, const char *)> &emit)
{
    const auto &cfg = ctx.cfg;
    const PersistModel model = cfg.model;

    for (int i = 0; i < ctx.W; ++i) {
        const int c = ctx.writerOf(i);

        // --- StartWrite ---
        if (s.cpc[i] == CInit) {
            State ns = s;
            int vol_ver = s.vol[c] >= 0 ? s.ver[s.vol[c]] : -1;
            int ver = std::max<int>(vol_ver + 1, s.nextVer[c]);
            ns.ver[i] = static_cast<std::int8_t>(ver);
            ns.nextVer[c] = static_cast<std::int8_t>(ver + 1);
            if (ctx.newer(ns, ns.vol[c], i)) {
                ns.obsObs[i] = ns.vol[c];
                ns.cpc[i] = CObsWaitC;
            } else {
                if (ctx.newer(ns, i, ns.rdOwner[c]))
                    ns.rdOwner[c] = static_cast<std::int8_t>(i);
                ns.cpc[i] = CSending;
            }
            emit(ns, "StartWrite");
        }

        // --- CoordSend (final obsoleteness check + INVs + LLC) ---
        if (s.cpc[i] == CSending) {
            State ns = s;
            if (ctx.newer(s, s.vol[c], i)) {
                ns.obsObs[i] = s.vol[c];
                ns.cpc[i] = CObsWaitC;
            } else {
                for (int n = 0; n < ctx.N; ++n) {
                    if (n != c)
                        ns.msgs[i][n] |= BitInv;
                }
                ns.vol[c] = static_cast<std::int8_t>(i);
                if (cfg.bugReleaseRdLockEarly)
                    releaseIfOwner(ns, c, i);
                if (persistOnCriticalPath(model)) {
                    ns.cpc[i] = CPersist;
                } else {
                    ns.bgPending[i] = 1;
                    ns.cpc[i] = CWaitAcks;
                }
            }
            emit(ns, "CoordSend");
        }

        // --- Coordinator critical-path persist ---
        if (s.cpc[i] == CPersist) {
            State ns = s;
            ns.durable[i][c] = 1;
            ns.cpc[i] = CWaitAcks;
            emit(ns, "CoordPersist");
        }

        // --- Coordinator background persist (any time once pending) ---
        if (s.bgPending[i]) {
            State ns = s;
            ns.durable[i][c] = 1;
            ns.bgPending[i] = 0;
            emit(ns, "CoordBgPersist");
        }

        // --- Coordinator gates ---
        const std::uint8_t fmask = ctx.followerMaskOf(i);
        if (s.cpc[i] == CWaitAcks) {
            switch (model) {
              case PersistModel::Synch:
                if ((s.ackMask[i] & fmask) == fmask &&
                    s.durable[i][c]) {
                    State ns = s;
                    raiseField(ctx, ns, ns.glbV[c], i);
                    raiseField(ctx, ns, ns.glbD[c], i);
                    releaseIfOwner(ns, c, i);
                    for (int n = 0; n < ctx.N; ++n) {
                        if (n != c)
                            ns.msgs[i][n] |= BitVal;
                    }
                    ns.cpc[i] = CDone;
                    emit(ns, "CoordCommit");
                }
                break;
              case PersistModel::Strict:
                if ((s.ackCMask[i] & fmask) == fmask) {
                    State ns = s;
                    raiseField(ctx, ns, ns.glbV[c], i);
                    releaseIfOwner(ns, c, i);
                    for (int n = 0; n < ctx.N; ++n) {
                        if (n != c)
                            ns.msgs[i][n] |= BitValC;
                    }
                    ns.cpc[i] = CWaitAcksP;
                    emit(ns, "CoordCommitC");
                }
                break;
              case PersistModel::REnf:
                if ((s.ackCMask[i] & fmask) == fmask) {
                    // Client return; RDLock stays held for REnf.
                    State ns = s;
                    raiseField(ctx, ns, ns.glbV[c], i);
                    ns.cpc[i] = CWaitAcksP;
                    emit(ns, "CoordReturn");
                }
                break;
              case PersistModel::Event:
              case PersistModel::Scope:
                if ((s.ackCMask[i] & fmask) == fmask) {
                    State ns = s;
                    raiseField(ctx, ns, ns.glbV[c], i);
                    releaseIfOwner(ns, c, i);
                    for (int n = 0; n < ctx.N; ++n) {
                        if (n != c)
                            ns.msgs[i][n] |= BitValC;
                    }
                    ns.cpc[i] = CDone;
                    emit(ns, "CoordCommitC");
                }
                break;
            }
        }
        if (s.cpc[i] == CWaitAcksP &&
            (s.ackPMask[i] & fmask) == fmask && s.durable[i][c] &&
            !s.bgPending[i]) {
            State ns = s;
            raiseField(ctx, ns, ns.glbD[c], i);
            if (model == PersistModel::REnf) {
                releaseIfOwner(ns, c, i);
                for (int n = 0; n < ctx.N; ++n) {
                    if (n != c)
                        ns.msgs[i][n] |= BitVal;
                }
            } else { // Strict
                for (int n = 0; n < ctx.N; ++n) {
                    if (n != c)
                        ns.msgs[i][n] |= BitValP;
                }
            }
            ns.cpc[i] = CDone;
            emit(ns, "CoordCommitP");
        }

        // --- Coordinator obsolete-path spins ---
        if (s.cpc[i] == CObsWaitC &&
            (cfg.bugSkipConsistencySpin ||
             ctx.reached(s, s.glbV[c], s.obsObs[i]))) {
            State ns = s;
            if (needsPersistencySpin(model)) {
                ns.cpc[i] = CObsWaitP;
            } else {
                releaseIfOwner(ns, c, i);
                ns.cpc[i] = CDone;
            }
            emit(ns, "CoordObsWaitC");
        }
        if (s.cpc[i] == CObsWaitP &&
            ctx.reached(s, s.glbD[c], s.obsObs[i])) {
            State ns = s;
            releaseIfOwner(ns, c, i);
            ns.cpc[i] = CDone;
            emit(ns, "CoordObsWaitP");
        }

        // --- Follower actions ---
        for (int n = 0; n < ctx.N; ++n) {
            if (n == c)
                continue;

            // Deliver INV.
            if (s.msgs[i][n] & BitInv) {
                State ns = s;
                ns.msgs[i][n] &= static_cast<std::uint8_t>(~BitInv);
                if (ctx.newer(s, s.vol[n], i)) {
                    ns.fObs[i][n] = s.vol[n];
                    ns.fpc[i][n] = FObsWaitC;
                } else {
                    if (ctx.newer(ns, i, ns.rdOwner[n]))
                        ns.rdOwner[n] = static_cast<std::int8_t>(i);
                    ns.vol[n] = static_cast<std::int8_t>(i);
                    switch (model) {
                      case PersistModel::Synch:
                        if (cfg.bugAckBeforePersist) {
                            // Mutation: acknowledge before the persist
                            // completes — durability invariant 3a must
                            // flag this.
                            ns.msgs[i][n] |= BitAck;
                            ns.fpc[i][n] = FBgPersist;
                        } else {
                            ns.fpc[i][n] = FPersist;
                        }
                        break;
                      case PersistModel::Strict:
                      case PersistModel::REnf:
                        ns.msgs[i][n] |= BitAckC;
                        ns.fpc[i][n] = FPersist;
                        break;
                      case PersistModel::Event:
                      case PersistModel::Scope:
                        ns.msgs[i][n] |= BitAckC;
                        ns.fpc[i][n] = FBgPersist;
                        break;
                    }
                }
                emit(ns, "DeliverInv");
            }

            // Follower persist (critical path; emits the persist ACK).
            if (s.fpc[i][n] == FPersist) {
                State ns = s;
                ns.durable[i][n] = 1;
                ns.msgs[i][n] |= (model == PersistModel::Synch)
                                     ? BitAck
                                     : BitAckP;
                ns.fpc[i][n] = FDone;
                emit(ns, "FollowerPersist");
            }

            // Follower background persist (weak models).
            if (s.fpc[i][n] == FBgPersist) {
                State ns = s;
                ns.durable[i][n] = 1;
                ns.fpc[i][n] = FDone;
                emit(ns, "FollowerBgPersist");
            }

            // Follower obsolete-path spins.
            if (s.fpc[i][n] == FObsWaitC &&
                (cfg.bugSkipConsistencySpin ||
                 ctx.reached(s, s.glbV[n], s.fObs[i][n]))) {
                State ns = s;
                if (model == PersistModel::Synch) {
                    ns.fpc[i][n] = FObsWaitP;
                } else if (tracksPersistPerWrite(model)) {
                    ns.msgs[i][n] |= BitAckC;
                    ns.fpc[i][n] = FObsWaitP;
                } else {
                    ns.msgs[i][n] |= BitAckC;
                    ns.fpc[i][n] = FDone;
                }
                emit(ns, "FollowerObsWaitC");
            }
            if (s.fpc[i][n] == FObsWaitP &&
                ctx.reached(s, s.glbD[n], s.fObs[i][n])) {
                State ns = s;
                ns.msgs[i][n] |= (model == PersistModel::Synch)
                                     ? BitAck
                                     : BitAckP;
                ns.fpc[i][n] = FDone;
                emit(ns, "FollowerObsWaitP");
            }

            // Deliver ACK family to the coordinator.
            for (auto [bit, name] :
                 {std::pair{BitAck, "DeliverAck"},
                  std::pair{BitAckC, "DeliverAckC"},
                  std::pair{BitAckP, "DeliverAckP"}}) {
                if (s.msgs[i][n] & bit) {
                    State ns = s;
                    ns.msgs[i][n] &= static_cast<std::uint8_t>(~bit);
                    std::uint8_t b =
                        static_cast<std::uint8_t>(1u << n);
                    if (bit == BitAck)
                        ns.ackMask[i] |= b;
                    else if (bit == BitAckC)
                        ns.ackCMask[i] |= b;
                    else
                        ns.ackPMask[i] |= b;
                    emit(ns, name);
                }
            }

            // Deliver VAL family to the follower.
            if (s.msgs[i][n] & BitVal) {
                State ns = s;
                ns.msgs[i][n] &= static_cast<std::uint8_t>(~BitVal);
                raiseField(ctx, ns, ns.glbV[n], i);
                raiseField(ctx, ns, ns.glbD[n], i);
                releaseIfOwner(ns, n, i);
                emit(ns, "DeliverVal");
            }
            if (s.msgs[i][n] & BitValC) {
                State ns = s;
                ns.msgs[i][n] &= static_cast<std::uint8_t>(~BitValC);
                raiseField(ctx, ns, ns.glbV[n], i);
                releaseIfOwner(ns, n, i);
                emit(ns, "DeliverValC");
            }
            if (s.msgs[i][n] & BitValP) {
                State ns = s;
                ns.msgs[i][n] &= static_cast<std::uint8_t>(~BitValP);
                raiseField(ctx, ns, ns.glbD[n], i);
                emit(ns, "DeliverValP");
            }
        }
    }

    // --- [PERSIST]sc transaction (<Lin, Scope>) ---
    if (isScopeModel(ctx.cfg.model) && ctx.cfg.scopePersist) {
        const int pc = 0; // persist coordinator: node 0
        bool all_done = true;
        for (int i = 0; i < ctx.W; ++i)
            all_done &= (s.cpc[i] == CDone);

        if (s.ppc == 0 && all_done) {
            State ns = s;
            for (int n = 0; n < ctx.N; ++n) {
                if (n != pc)
                    ns.pMsgs[n] |= PInFlight;
            }
            ns.ppc = 1;
            emit(ns, "PersistScStart");
        }
        for (int n = 0; n < ctx.N; ++n) {
            if (n == pc)
                continue;
            if (s.pMsgs[n] & PInFlight) {
                State ns = s;
                ns.pMsgs[n] &=
                    static_cast<std::uint8_t>(~PInFlight);
                ns.pMsgs[n] |= PReceived;
                emit(ns, "PersistScDeliver");
            }
            if (s.pMsgs[n] & PReceived) {
                // Respond only once every scoped write's durability is
                // covered by this node's log frontier (obsolete writes
                // are subsumed by the newer write that displaced them).
                bool flushed = true;
                for (int i = 0; i < ctx.W; ++i)
                    flushed &= frontierReached(ctx, s, i, n);
                if (flushed) {
                    State ns = s;
                    ns.pMsgs[n] &=
                        static_cast<std::uint8_t>(~PReceived);
                    ns.pMsgs[n] |= PAckInFlight;
                    emit(ns, "PersistScAckSend");
                }
            }
            if (s.pMsgs[n] & PAckInFlight) {
                State ns = s;
                ns.pMsgs[n] &=
                    static_cast<std::uint8_t>(~PAckInFlight);
                ns.pAckMask |= static_cast<std::uint8_t>(1u << n);
                emit(ns, "PersistScAckDeliver");
            }
            if (s.pMsgs[n] & PValInFlight) {
                State ns = s;
                ns.pMsgs[n] &=
                    static_cast<std::uint8_t>(~PValInFlight);
                ns.pMsgs[n] |= PTerminated;
                emit(ns, "PersistScValDeliver");
            }
        }
        if (s.ppc == 1) {
            std::uint8_t all =
                static_cast<std::uint8_t>((1u << ctx.N) - 1);
            std::uint8_t fmask =
                all & static_cast<std::uint8_t>(~(1u << pc));
            bool local_flushed = true;
            for (int i = 0; i < ctx.W; ++i)
                local_flushed &= frontierReached(ctx, s, i, pc);
            if ((s.pAckMask & fmask) == fmask && local_flushed) {
                State ns = s;
                for (int n = 0; n < ctx.N; ++n) {
                    if (n != pc)
                        ns.pMsgs[n] |= PValInFlight;
                }
                ns.ppc = 2;
                emit(ns, "PersistScCommit");
            }
        }
    }
}

/** Is @p s a final (fully quiescent) state? */
bool
isFinal(const Ctx &ctx, const State &s)
{
    for (int i = 0; i < ctx.W; ++i) {
        if (s.cpc[i] != CDone || s.bgPending[i])
            return false;
        for (int n = 0; n < ctx.N; ++n) {
            if (s.msgs[i][n] != 0)
                return false;
            if (s.fpc[i][n] != FIdle && s.fpc[i][n] != FDone)
                return false;
        }
    }
    if (isScopeModel(ctx.cfg.model) && ctx.cfg.scopePersist) {
        if (s.ppc != 2)
            return false;
        for (int n = 1; n < ctx.N; ++n) {
            if (s.pMsgs[n] != 0 && s.pMsgs[n] != PTerminated)
                return false;
        }
    }
    return true;
}

std::string
describeState(const Ctx &ctx, const State &s)
{
    std::ostringstream os;
    os << "nodes:";
    for (int n = 0; n < ctx.N; ++n) {
        os << " [rd=" << int(s.rdOwner[n]) << " vol=" << int(s.vol[n])
           << " gV=" << int(s.glbV[n]) << " gD=" << int(s.glbD[n])
           << "]";
    }
    os << " cpc:";
    for (int i = 0; i < ctx.W; ++i)
        os << " " << int(s.cpc[i]);
    return os.str();
}

/** Check every Table I condition on @p s; append violations. */
void
checkInvariants(const Ctx &ctx, const State &s,
                std::vector<Violation> &out)
{
    const PersistModel model = ctx.cfg.model;

    // 2a: all read-unlocked => volatileTS and glb_volatileTS agree.
    bool all_unlocked = true;
    for (int n = 0; n < ctx.N; ++n)
        all_unlocked &= (s.rdOwner[n] == -1);
    if (all_unlocked) {
        for (int n = 1; n < ctx.N; ++n) {
            if (ctx.tsOf(s, s.vol[n]) != ctx.tsOf(s, s.vol[0])) {
                out.push_back(Violation{"2a-volatileTS",
                           describeState(ctx, s),
                           {}});
                break;
            }
        }
        for (int n = 1; n < ctx.N; ++n) {
            if (ctx.tsOf(s, s.glbV[n]) != ctx.tsOf(s, s.glbV[0])) {
                out.push_back(Violation{"2a-glb_volatileTS",
                           describeState(ctx, s),
                           {}});
                break;
            }
        }
    }

    for (int i = 0; i < ctx.W; ++i) {
        if (s.ver[i] < 0)
            continue;
        const std::uint8_t fmask = ctx.followerMaskOf(i);
        const bool sent = s.cpc[i] >= CPersist && s.cpc[i] < CObsWaitC;
        const std::uint8_t cmask =
            model == PersistModel::Synch ? s.ackMask[i]
                                         : s.ackCMask[i];
        const bool all_c = (cmask & fmask) == fmask;

        // 2b: all consistency ACKs => every replica at/above TS_WR.
        if (sent && all_c) {
            for (int n = 0; n < ctx.N; ++n) {
                if (ctx.newer(s, i, s.vol[n])) {
                    out.push_back(Violation{"2b-replicas-behind-acked-write",
                           describeState(ctx, s),
                           {}});
                    break;
                }
            }
        }

        // 2c: not all consistency ACKs => the write is not marked
        // globally visible anywhere.
        if (sent && !all_c) {
            for (int n = 0; n < ctx.N; ++n) {
                if (s.glbV[n] == static_cast<std::int8_t>(i)) {
                    out.push_back(Violation{"2c-early-glb_volatileTS",
                           describeState(ctx, s),
                           {}});
                    break;
                }
            }
        }

        // 3b: not all persistency ACKs => the write is not marked
        // globally durable anywhere (models that track persistency).
        if (tracksPersistPerWrite(model) && sent) {
            const std::uint8_t pmask = model == PersistModel::Synch
                                           ? s.ackMask[i]
                                           : s.ackPMask[i];
            bool all_p = (pmask & fmask) == fmask;
            if (!all_p) {
                for (int n = 0; n < ctx.N; ++n) {
                    if (s.glbD[n] == static_cast<std::int8_t>(i)) {
                        out.push_back(Violation{"3b-early-glb_durableTS",
                           describeState(ctx, s),
                           {}});
                        break;
                    }
                }
            }
        }

        // 3a (durability soundness): a replica marking the write
        // globally durable implies every node's durable-log frontier
        // has reached the write's timestamp (the write itself, or a
        // newer one that obsoleted it, is persisted everywhere — the
        // log's obsoleteness filter makes these equivalent, §V-B.4).
        for (int n = 0; n < ctx.N; ++n) {
            if (s.glbD[n] != static_cast<std::int8_t>(i))
                continue;
            for (int m = 0; m < ctx.N; ++m) {
                bool frontier_ok = false;
                for (int j = 0; j < ctx.W; ++j) {
                    if (s.durable[j][m] &&
                        !ctx.newer(s, i, j)) { // ts_j >= ts_i
                        frontier_ok = true;
                        break;
                    }
                }
                if (!frontier_ok) {
                    out.push_back(Violation{"3a-glb_durable-without-replica-durable",
                           describeState(ctx, s),
                           {}});
                    break;
                }
            }
        }

        // Read-enforced durability (the defining property of REnf, and
        // implied by Synch's combined ACK/VAL): wherever the write is
        // applied AND readable (RDLock free), it must already be
        // durable on every replica. Strict/Event/Scope deliberately do
        // not provide this for reads.
        if (model == PersistModel::Synch ||
            model == PersistModel::REnf) {
            for (int n = 0; n < ctx.N; ++n) {
                if (s.rdOwner[n] != -1 ||
                    s.vol[n] != static_cast<std::int8_t>(i))
                    continue;
                for (int m = 0; m < ctx.N; ++m) {
                    if (!frontierReached(ctx, s, i, m)) {
                        out.push_back(Violation{"renf-readable-but-not-durable",
                           describeState(ctx, s),
                           {}});
                        break;
                    }
                }
            }
        }

        // 4c: bookkeeping masks only contain follower senders.
        if ((s.ackMask[i] | s.ackCMask[i] | s.ackPMask[i]) & ~fmask) {
            out.push_back(Violation{"4c-bookkeeping-sender-out-of-range",
                           describeState(ctx, s),
                           {}});
        }

        // 4a: only legal message kinds for the model.
        std::uint8_t legal = BitInv;
        switch (model) {
          case PersistModel::Synch:
            legal |= BitAck | BitVal;
            break;
          case PersistModel::Strict:
            legal |= BitAckC | BitAckP | BitValC | BitValP;
            break;
          case PersistModel::REnf:
            legal |= BitAckC | BitAckP | BitVal;
            break;
          case PersistModel::Event:
          case PersistModel::Scope:
            legal |= BitAckC | BitValC;
            break;
        }
        for (int n = 0; n < ctx.N; ++n) {
            if (s.msgs[i][n] & ~legal) {
                out.push_back(Violation{"4a-illegal-message",
                           describeState(ctx, s),
                           {}});
                break;
            }
        }

        // 4b: version bounded by the number of modeled writes.
        if (s.ver[i] >= static_cast<std::int8_t>(ctx.W) + 1) {
            out.push_back(Violation{"4b-version-out-of-range",
                           describeState(ctx, s),
                           {}});
        }
    }

    // Scope: a completed [PERSIST]sc implies every scoped write's
    // durability is covered by every node's log frontier.
    if (isScopeModel(model) && ctx.cfg.scopePersist && s.ppc == 2) {
        for (int i = 0; i < ctx.W; ++i) {
            if (s.ver[i] < 0)
                continue;
            for (int n = 0; n < ctx.N; ++n) {
                if (!frontierReached(ctx, s, i, n)) {
                    out.push_back(Violation{"scope-persist-incomplete",
                           describeState(ctx, s),
                           {}});
                }
            }
        }
    }
}

} // namespace

CheckResult
checkModel(const CheckConfig &cfg)
{
    MINOS_ASSERT(cfg.numNodes >= 2 && cfg.numNodes <= maxNodes,
                 "checker supports 2..", maxNodes, " nodes");
    MINOS_ASSERT(!cfg.writers.empty() &&
                 cfg.writers.size() <= maxWrites,
                 "checker supports 1..", maxWrites, " writes");
    for (int w : cfg.writers)
        MINOS_ASSERT(w >= 0 && w < cfg.numNodes, "bad writer ", w);

    Ctx ctx;
    ctx.cfg = cfg;
    ctx.W = static_cast<int>(cfg.writers.size());
    ctx.N = cfg.numNodes;

    State init;
    std::memset(&init, 0, sizeof(State));
    for (int n = 0; n < maxNodes; ++n) {
        init.rdOwner[n] = -1;
        init.vol[n] = -1;
        init.glbV[n] = -1;
        init.glbD[n] = -1;
        init.nextVer[n] = 0;
    }
    for (int i = 0; i < maxWrites; ++i) {
        init.ver[i] = -1;
        init.obsObs[i] = -1;
        for (int n = 0; n < maxNodes; ++n)
            init.fObs[i][n] = -1;
    }

    CheckResult result;
    std::unordered_set<State, StateHash> seen;
    /** Predecessor map for counterexample reconstruction (optional). */
    std::unordered_map<State, std::pair<State, const char *>, StateHash>
        parent;
    std::deque<State> frontier;
    seen.insert(init);
    frontier.push_back(init);
    checkInvariants(ctx, init, result.violations);

    constexpr std::size_t violationCap = 16;

    auto traceTo = [&](const State &bad) {
        std::vector<std::string> trace;
        if (!cfg.recordTraces)
            return trace;
        State cur = bad;
        while (!(cur == init)) {
            auto it = parent.find(cur);
            if (it == parent.end())
                break;
            trace.push_back(it->second.second);
            cur = it->second.first;
        }
        std::reverse(trace.begin(), trace.end());
        return trace;
    };

    while (!frontier.empty()) {
        State s = frontier.front();
        frontier.pop_front();
        ++result.statesExplored;

        bool any = false;
        forEachSuccessor(ctx, s, [&](const State &ns,
                                     const char *action) {
            any = true;
            ++result.transitions;
            if (seen.insert(ns).second) {
                if (cfg.recordTraces)
                    parent.emplace(ns, std::make_pair(s, action));
                if (result.violations.size() < violationCap) {
                    std::size_t before = result.violations.size();
                    checkInvariants(ctx, ns, result.violations);
                    for (std::size_t v = before;
                         v < result.violations.size(); ++v)
                        result.violations[v].trace = traceTo(ns);
                }
                frontier.push_back(ns);
            }
        });

        if (!any) {
            if (isFinal(ctx, s)) {
                ++result.finalStates;
            } else if (result.violations.size() < violationCap) {
                Violation v{"1-deadlock", describeState(ctx, s), {}};
                v.trace = traceTo(s);
                result.violations.push_back(std::move(v));
            }
        }

        MINOS_ASSERT(seen.size() <= cfg.maxStates,
                     "state-space cap exceeded: ", seen.size());
    }

    return result;
}

} // namespace minos::check
