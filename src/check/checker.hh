/**
 * @file
 * Explicit-state model checker for the MINOS DDP protocols (paper §VI).
 *
 * The paper verifies MINOS-B/-O with TLA+/TLC; TLC is itself an
 * explicit-state enumerator, so this module re-creates the verification
 * natively: an abstract small-step model of the protocol (bounded
 * writes, bounded nodes, one record, adversarially reordered message
 * delivery) is explored exhaustively with BFS, and every reached state
 * is checked against the Table I conditions:
 *
 *  1. Concurrency: no deadlock (every non-final state has an enabled
 *     action); the action system is monotonic, so livelock-free by
 *     construction (the state graph is a DAG).
 *  2. Consistency:
 *     (a) all replicas read-unlocked => volatileTS and glb_volatileTS
 *         agree across nodes;
 *     (b) all consistency ACKs received for a write => every replica's
 *         volatileTS is at least the write's TS_WR;
 *     (c) not all consistency ACKs received => no replica's
 *         glb_volatileTS has reached the write's TS_WR.
 *  3. Persistency:
 *     (a) any replica's glb_durableTS at TS_WR => the write is durable
 *         (logged) on every replica;
 *     (b) not all persistency ACKs received => no replica's
 *         glb_durableTS has reached the write's TS_WR.
 *  4. Type checks: only the model's legal message kinds ever appear;
 *     record metadata and ACK-bookkeeping stay in range.
 *
 * Deliberate protocol mutations (skip the ConsistencySpin, release the
 * RDLock early) are available to validate that the checker actually
 * catches bugs.
 */

#ifndef MINOS_CHECK_CHECKER_HH
#define MINOS_CHECK_CHECKER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "simproto/models.hh"

namespace minos::check {

using simproto::PersistModel;

/** Bounds of the abstract model. */
inline constexpr int maxNodes = 3;
inline constexpr int maxWrites = 3;

/** Checker configuration. */
struct CheckConfig
{
    int numNodes = 3;
    PersistModel model = PersistModel::Synch;
    /** Coordinator of each modeled write (size = number of writes). */
    std::vector<int> writers = {0, 1};
    /**
     * Model the [PERSIST]sc transaction after all writes complete
     * (<Lin, Scope> only; all writes share one scope).
     */
    bool scopePersist = true;

    /** @{ Deliberate bugs used to validate the checker itself. */
    bool bugSkipConsistencySpin = false;
    bool bugReleaseRdLockEarly = false;
    /** Follower acknowledges before persisting (breaks durability). */
    bool bugAckBeforePersist = false;
    /** @} */

    /** Exploration cap (states); exceeding it is an error. */
    std::size_t maxStates = 4'000'000;

    /**
     * Record predecessor states so violations come with a counterexample
     * action trace (TLC-style). Doubles memory; off by default.
     */
    bool recordTraces = false;
};

/** One invariant violation (or deadlock) found. */
struct Violation
{
    std::string invariant;
    std::string detail;
    /** Action sequence from the initial state (when recordTraces). */
    std::vector<std::string> trace;
};

/** Checker outcome. */
struct CheckResult
{
    std::size_t statesExplored = 0;
    std::size_t transitions = 0;
    std::size_t finalStates = 0;
    std::vector<Violation> violations;

    bool ok() const { return violations.empty(); }
};

/** Exhaustively explore the protocol model and check Table I. */
CheckResult checkModel(const CheckConfig &cfg);

} // namespace minos::check

#endif // MINOS_CHECK_CHECKER_HH
