/**
 * @file
 * Linearizability checking of operation histories (Wing & Gong style
 * backtracking with memoization, as popularized by Knossos/Porcupine).
 *
 * The DDP models all build on Linearizable consistency (paper §II-A):
 * once a write response returns, every later read anywhere must observe
 * that write or a newer one. This checker validates that guarantee
 * *end to end* on real execution histories collected from the threaded
 * runtime: concurrent client threads record invocation/response
 * timestamps for reads and writes of one record, and the checker
 * searches for a legal sequential witness that respects real time and
 * register semantics.
 *
 * Write values must be unique within a history; the register's initial
 * value is 0.
 */

#ifndef MINOS_CHECK_LINEARIZABILITY_HH
#define MINOS_CHECK_LINEARIZABILITY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"
#include "kv/record.hh"

namespace minos::check {

/** One completed operation in a single-register history. */
struct HistoryOp
{
    enum class Kind : std::uint8_t { Read, Write };

    Kind kind = Kind::Read;
    /** Real-time invocation and response instants (any monotonic unit). */
    Tick invoke = 0;
    Tick response = 0;
    /** Value written (Write) or observed (Read). */
    kv::Value value = 0;
};

/** Outcome of a linearizability check. */
struct LinResult
{
    bool linearizable = false;
    /** Diagnosis when not linearizable (or the search gave up). */
    std::string explanation;
    /** Search effort. */
    std::size_t statesVisited = 0;
    /** True if the search hit its budget before deciding. */
    bool inconclusive = false;
};

/**
 * Decide whether @p history (at most 64 operations) is linearizable as
 * a register with initial value 0.
 *
 * @param max_states search budget; exceeding it yields inconclusive.
 */
LinResult checkLinearizable(const std::vector<HistoryOp> &history,
                            std::size_t max_states = 2'000'000);

} // namespace minos::check

#endif // MINOS_CHECK_LINEARIZABILITY_HH
