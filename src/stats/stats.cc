#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/logging.hh"

namespace minos::stats {

void
LatencySeries::add(Tick sample)
{
    if (!samples_.empty() && sample < samples_.back())
        sorted_ = false;
    samples_.push_back(sample);
}

double
LatencySeries::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = std::accumulate(samples_.begin(), samples_.end(), 0.0);
    return sum / static_cast<double>(samples_.size());
}

Tick
LatencySeries::min() const
{
    if (samples_.empty())
        return 0;
    return *std::min_element(samples_.begin(), samples_.end());
}

Tick
LatencySeries::max() const
{
    if (samples_.empty())
        return 0;
    return *std::max_element(samples_.begin(), samples_.end());
}

Tick
LatencySeries::percentile(double p) const
{
    if (samples_.empty())
        return 0;
    MINOS_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range: ", p);
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    auto rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
    if (rank > 0)
        --rank;
    return samples_[std::min(rank, samples_.size() - 1)];
}

void
LatencySeries::merge(const LatencySeries &other)
{
    for (Tick t : other.samples_)
        add(t);
}

double
opsPerSec(std::uint64_t ops, Tick duration)
{
    if (duration <= 0)
        return 0.0;
    return static_cast<double>(ops) * 1e9 /
           static_cast<double>(duration);
}

int
LogHistogram::bucketOf(Tick sample)
{
    if (sample <= 0)
        return 0;
    int b = 0;
    while (sample > 1 && b < numBuckets - 1) {
        sample >>= 1;
        ++b;
    }
    return b;
}

Tick
LogHistogram::bucketLow(int b)
{
    MINOS_ASSERT(b >= 0 && b < numBuckets, "bad bucket ", b);
    return b == 0 ? 0 : (Tick{1} << b);
}

void
LogHistogram::add(Tick sample)
{
    ++buckets_[static_cast<std::size_t>(bucketOf(sample))];
    ++count_;
    sum_ += static_cast<double>(sample);
}

double
LogHistogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

Tick
LogHistogram::percentileUpperBound(double p) const
{
    if (count_ == 0)
        return 0;
    MINOS_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range");
    auto rank = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count_)));
    std::uint64_t seen = 0;
    for (int b = 0; b < numBuckets; ++b) {
        seen += buckets_[static_cast<std::size_t>(b)];
        if (seen >= rank) {
            return b == numBuckets - 1 ? bucketLow(b)
                                       : bucketLow(b + 1) - 1;
        }
    }
    return bucketLow(numBuckets - 1);
}

std::uint64_t
LogHistogram::bucketCount(int b) const
{
    MINOS_ASSERT(b >= 0 && b < numBuckets, "bad bucket ", b);
    return buckets_[static_cast<std::size_t>(b)];
}

std::string
LogHistogram::str() const
{
    std::ostringstream os;
    std::uint64_t max_count = 0;
    for (auto c : buckets_)
        max_count = std::max(max_count, c);
    for (int b = 0; b < numBuckets; ++b) {
        std::uint64_t c = buckets_[static_cast<std::size_t>(b)];
        if (c == 0)
            continue;
        int bar = max_count
                      ? static_cast<int>(40 * c / max_count)
                      : 0;
        os << "[" << bucketLow(b) << "ns..) " << std::string(
               static_cast<std::size_t>(std::max(bar, 1)), '#')
           << " " << c << "\n";
    }
    return os.str();
}

void
LogHistogram::merge(const LogHistogram &other)
{
    for (int b = 0; b < numBuckets; ++b)
        buckets_[static_cast<std::size_t>(b)] +=
            other.buckets_[static_cast<std::size_t>(b)];
    count_ += other.count_;
    sum_ += other.sum_;
}

double
Breakdown::commFraction() const
{
    double total = commNs + compNs;
    return total > 0 ? commNs / total : 0.0;
}

std::uint64_t
LatencySeries::digest() const
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    std::uint64_t h = 1469598103934665603ull; // FNV-1a offset basis
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    };
    mix(samples_.size());
    for (Tick s : samples_)
        mix(static_cast<std::uint64_t>(s));
    return h;
}

double
EventCoreCounters::ringHitRate() const
{
    if (eventsExecuted == 0)
        return 0.0;
    return static_cast<double>(readyRingHits) /
           static_cast<double>(eventsExecuted);
}

std::string
EventCoreCounters::str() const
{
    std::ostringstream os;
    os << "events=" << eventsExecuted << " ringHits=" << readyRingHits
       << " heapPushes=" << heapPushes << " peakHeap=" << peakHeapSize
       << " peakRing=" << peakRingSize;
    return os.str();
}

std::string
EventCoreCounters::json() const
{
    std::ostringstream os;
    os << "{\"events_executed\":" << eventsExecuted
       << ",\"ready_ring_hits\":" << readyRingHits
       << ",\"heap_pushes\":" << heapPushes
       << ",\"peak_heap_size\":" << peakHeapSize
       << ",\"peak_ring_size\":" << peakRingSize << "}";
    return os.str();
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    MINOS_ASSERT(cells.size() == headers_.size(),
                 "row width ", cells.size(), " != header width ",
                 headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::str() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << "\n";
    };
    emit(headers_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
Table::fmt(double v, int digits)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(digits);
    os << v;
    return os.str();
}

} // namespace minos::stats
