/**
 * @file
 * Measurement helpers for the evaluation harness: latency series with
 * percentiles, throughput computation, and the communication/computation
 * breakdown of Fig. 4.
 */

#ifndef MINOS_STATS_STATS_HH
#define MINOS_STATS_STATS_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"

namespace minos::stats {

/** A series of latency samples with summary statistics. */
class LatencySeries
{
  public:
    void add(Tick sample);

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Min/max; 0 when empty. */
    Tick min() const;
    Tick max() const;

    /** Percentile in [0, 100]; 0 when empty. Sorts lazily. */
    Tick percentile(double p) const;

    Tick p50() const { return percentile(50.0); }
    Tick p99() const { return percentile(99.0); }

    /** Merge another series into this one. */
    void merge(const LatencySeries &other);

    /**
     * Order-insensitive FNV-1a digest of the samples (sorts lazily,
     * like percentile()). Two runs with identical sample multisets
     * digest equal; used by determinism regression tests.
     */
    std::uint64_t digest() const;

    const std::vector<Tick> &samples() const { return samples_; }

  private:
    mutable std::vector<Tick> samples_;
    mutable bool sorted_ = true;
};

/** Operations per second given a count and a simulated duration. */
double opsPerSec(std::uint64_t ops, Tick duration);

/**
 * Log-scale latency histogram: power-of-two buckets from 1 ns up.
 * O(1) insertion and memory regardless of sample count; used where a
 * full LatencySeries would be too heavy, and for textual distribution
 * dumps.
 */
class LogHistogram
{
  public:
    static constexpr int numBuckets = 48;

    void add(Tick sample);

    std::uint64_t count() const { return count_; }
    double mean() const;

    /** Approximate percentile (bucket upper bound), 0 when empty. */
    Tick percentileUpperBound(double p) const;

    /** Bucket index a sample lands in. */
    static int bucketOf(Tick sample);

    /** Lower bound of bucket @p b (inclusive). */
    static Tick bucketLow(int b);

    std::uint64_t bucketCount(int b) const;

    /** Render an ASCII distribution (non-empty buckets only). */
    std::string str() const;

    void merge(const LogHistogram &other);

  private:
    std::array<std::uint64_t, numBuckets> buckets_{};
    std::uint64_t count_ = 0;
    double sum_ = 0;
};

/**
 * Communication/computation split of write-transaction latency
 * (paper §IV): communication is the host-send-queue to host-receive-queue
 * time of the protocol's messages along the critical path; the rest of
 * the transaction is computation.
 */
struct Breakdown
{
    double commNs = 0;
    double compNs = 0;
    std::uint64_t count = 0;

    void
    add(double comm, double comp)
    {
        commNs += comm;
        compNs += comp;
        ++count;
    }

    double meanComm() const { return count ? commNs / count : 0.0; }
    double meanComp() const { return count ? compNs / count : 0.0; }
    double meanTotal() const { return meanComm() + meanComp(); }

    /** Fraction of total latency spent in communication, in [0,1]. */
    double commFraction() const;
};

/**
 * Snapshot of the discrete-event simulator's event-core counters
 * (sim::Simulator::counters()): how much traffic the same-tick ready
 * ring absorbed vs. the timed heap, and the high-water marks of both.
 * Lives here so measurement/reporting code (benches, tools) can render
 * and serialize it uniformly.
 */
struct EventCoreCounters
{
    std::uint64_t eventsExecuted = 0;
    std::uint64_t readyRingHits = 0;
    std::uint64_t heapPushes = 0;
    std::uint64_t peakHeapSize = 0;
    std::uint64_t peakRingSize = 0;

    /** Fraction of executed events that bypassed the heap, in [0,1]. */
    double ringHitRate() const;

    bool operator==(const EventCoreCounters &) const = default;

    /** One-line human-readable rendering. */
    std::string str() const;

    /** JSON object (machine-readable, for bench output). */
    std::string json() const;
};

/** Fixed-width console table writer used by the bench binaries. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns. */
    std::string str() const;

    /** Format helper: fixed-point with @p digits decimals. */
    static std::string fmt(double v, int digits = 2);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace minos::stats

#endif // MINOS_STATS_STATS_HH
