/**
 * @file
 * In-process loopback fabric for the threaded MINOS-B runtime — the
 * eRPC-shaped transport of the paper's "distributed machine" (§IV/VII).
 *
 * Each node owns an inbound queue; send() stamps the message with a
 * delivery deadline (the configured one-way wire latency) and poll()
 * releases messages once their deadline passes, preserving per-queue
 * FIFO order. Only the wire is emulated: all protocol computation,
 * locking, and persistence run on real threads with real races.
 *
 * The fabric supports failure injection (link down drops all traffic to
 * and from a node), which drives the §III-E failure-detection and
 * recovery machinery.
 */

#ifndef MINOS_RUNTIME_FABRIC_HH
#define MINOS_RUNTIME_FABRIC_HH

#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <variant>
#include <vector>

#include "net/message.hh"
#include "recovery/ctrl.hh"

namespace minos::runtime {

/** A protocol or control-plane message on the wire. */
using Envelope = std::variant<net::Message, recovery::CtrlMsg>;

/** Destination node of an envelope. */
kv::NodeId envelopeDst(const Envelope &env);

/** Source node of an envelope. */
kv::NodeId envelopeSrc(const Envelope &env);

/** Loopback transport with injected latency and failure injection. */
class Fabric
{
  public:
    /**
     * @param nodes cluster size
     * @param wire_latency one-way delivery latency (real time)
     */
    Fabric(int nodes, std::chrono::nanoseconds wire_latency =
                          std::chrono::microseconds(2));

    Fabric(const Fabric &) = delete;
    Fabric &operator=(const Fabric &) = delete;

    /** Send to the envelope's destination; dropped if a link is down. */
    void send(Envelope env);

    /**
     * Take the next due message for @p node, if any. Non-blocking;
     * returns nullopt when nothing is deliverable yet.
     */
    std::optional<Envelope> poll(kv::NodeId node);

    /** Bring a node's links up or down (failure injection). */
    void setLinkUp(kv::NodeId node, bool up);
    bool linkUp(kv::NodeId node) const;

    int numNodes() const { return static_cast<int>(queues_.size()); }

    /** Messages dropped due to down links (tests/diagnostics). */
    std::uint64_t dropped() const { return dropped_.load(); }

  private:
    using Clock = std::chrono::steady_clock;

    struct Timed
    {
        Clock::time_point due;
        Envelope env;
    };

    struct Queue
    {
        std::mutex mutex;
        std::deque<Timed> items;
    };

    std::vector<std::unique_ptr<Queue>> queues_;
    std::vector<std::unique_ptr<std::atomic<bool>>> up_;
    std::chrono::nanoseconds latency_;
    std::atomic<std::uint64_t> dropped_{0};
};

} // namespace minos::runtime

#endif // MINOS_RUNTIME_FABRIC_HH
