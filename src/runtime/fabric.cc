#include "fabric.hh"

#include "common/logging.hh"

namespace minos::runtime {

kv::NodeId
envelopeDst(const Envelope &env)
{
    if (const auto *m = std::get_if<net::Message>(&env))
        return m->dst;
    return std::get<recovery::CtrlMsg>(env).dst;
}

kv::NodeId
envelopeSrc(const Envelope &env)
{
    if (const auto *m = std::get_if<net::Message>(&env))
        return m->src;
    return std::get<recovery::CtrlMsg>(env).src;
}

Fabric::Fabric(int nodes, std::chrono::nanoseconds wire_latency)
    : latency_(wire_latency)
{
    MINOS_ASSERT(nodes >= 1, "fabric needs at least one node");
    queues_.reserve(static_cast<std::size_t>(nodes));
    up_.reserve(static_cast<std::size_t>(nodes));
    for (int i = 0; i < nodes; ++i) {
        queues_.push_back(std::make_unique<Queue>());
        up_.push_back(std::make_unique<std::atomic<bool>>(true));
    }
}

void
Fabric::send(Envelope env)
{
    kv::NodeId src = envelopeSrc(env);
    kv::NodeId dst = envelopeDst(env);
    MINOS_ASSERT(dst >= 0 && dst < numNodes(), "bad destination ", dst);
    if (!linkUp(dst) || (src >= 0 && !linkUp(src))) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    Timed item{Clock::now() + latency_, std::move(env)};
    Queue &q = *queues_[static_cast<std::size_t>(dst)];
    std::lock_guard<std::mutex> guard(q.mutex);
    q.items.push_back(std::move(item));
}

std::optional<Envelope>
Fabric::poll(kv::NodeId node)
{
    MINOS_ASSERT(node >= 0 && node < numNodes(), "bad node ", node);
    Queue &q = *queues_[static_cast<std::size_t>(node)];
    std::lock_guard<std::mutex> guard(q.mutex);
    if (q.items.empty() || q.items.front().due > Clock::now())
        return std::nullopt;
    Envelope env = std::move(q.items.front().env);
    q.items.pop_front();
    return env;
}

void
Fabric::setLinkUp(kv::NodeId node, bool up)
{
    MINOS_ASSERT(node >= 0 && node < numNodes(), "bad node ", node);
    up_[static_cast<std::size_t>(node)]->store(up,
                                               std::memory_order_release);
    if (!up) {
        // Drop anything already queued for the node.
        Queue &q = *queues_[static_cast<std::size_t>(node)];
        std::lock_guard<std::mutex> guard(q.mutex);
        dropped_.fetch_add(q.items.size(), std::memory_order_relaxed);
        q.items.clear();
    }
}

bool
Fabric::linkUp(kv::NodeId node) const
{
    return up_[static_cast<std::size_t>(node)]->load(
        std::memory_order_acquire);
}

} // namespace minos::runtime
