/**
 * @file
 * Failure-detection and recovery control messages (paper §III-E).
 *
 * The DDP protocol proper only uses the Table I message vocabulary;
 * membership and recovery ride on a separate control plane:
 *  - Fail(n): a timeout identified node n as non-responding; all nodes
 *    drop it from the live set.
 *  - JoinReq(n): node n asks to be re-inserted into the cluster.
 *  - LogShip: the designated node ships the committed update log to the
 *    rejoining node, which replays it into its persistent and volatile
 *    state (obsolete entries are filtered on apply).
 *  - Joined(n): announces that n is live again.
 */

#ifndef MINOS_RECOVERY_CTRL_HH
#define MINOS_RECOVERY_CTRL_HH

#include <cstdint>
#include <vector>

#include "kv/timestamp.hh"
#include "nvm/log.hh"

namespace minos::recovery {

/** Control-plane message kinds. */
enum class CtrlType : std::uint8_t
{
    Fail,
    JoinReq,
    LogShip,
    Joined,
};

/** One control-plane message. */
struct CtrlMsg
{
    CtrlType type = CtrlType::Fail;
    kv::NodeId src = -1;
    kv::NodeId dst = -1;
    /** Subject node (the failed / rejoining node). */
    kv::NodeId subject = -1;
    /** Shipped log entries (LogShip only). */
    std::vector<nvm::LogEntry> entries;
    /** Sender's liveness view, shipped so the rejoiner resyncs it. */
    std::uint64_t liveMask = 0;
};

/** Node-liveness bitmask helpers. */
constexpr std::uint64_t
nodeBit(kv::NodeId n)
{
    return std::uint64_t{1} << n;
}

constexpr bool
isLive(std::uint64_t mask, kv::NodeId n)
{
    return (mask & nodeBit(n)) != 0;
}

/**
 * The designated recovery node: the lowest-id live node (it ships its
 * log to rejoining nodes).
 */
kv::NodeId designatedNode(std::uint64_t live_mask, int num_nodes);

} // namespace minos::recovery

#endif // MINOS_RECOVERY_CTRL_HH
