#include "ctrl.hh"

namespace minos::recovery {

kv::NodeId
designatedNode(std::uint64_t live_mask, int num_nodes)
{
    for (int n = 0; n < num_nodes; ++n) {
        if (isLive(live_mask, static_cast<kv::NodeId>(n)))
            return static_cast<kv::NodeId>(n);
    }
    return -1;
}

} // namespace minos::recovery
