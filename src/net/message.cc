#include "message.hh"

#include "common/logging.hh"

namespace minos::net {

std::string_view
msgTypeName(MsgType type)
{
    switch (type) {
      case MsgType::INV: return "INV";
      case MsgType::ACK: return "ACK";
      case MsgType::ACK_C: return "ACK_C";
      case MsgType::ACK_P: return "ACK_P";
      case MsgType::VAL: return "VAL";
      case MsgType::VAL_C: return "VAL_C";
      case MsgType::VAL_P: return "VAL_P";
      case MsgType::INV_SC: return "[INV]sc";
      case MsgType::ACK_C_SC: return "[ACK_C]sc";
      case MsgType::ACK_P_SC: return "[ACK_P]sc";
      case MsgType::VAL_C_SC: return "[VAL_C]sc";
      case MsgType::VAL_P_SC: return "[VAL_P]sc";
      case MsgType::PERSIST_SC: return "[PERSIST]sc";
    }
    MINOS_PANIC("unknown message type");
}

Message
makeResponse(const Message &req, MsgType type)
{
    Message resp = req;
    resp.type = type;
    resp.src = req.dst;
    resp.dst = req.src;
    resp.sizeBytes = controlMsgBytes;
    resp.destMask = 0;
    resp.handleNs = 0;
    return resp;
}

} // namespace minos::net
