/**
 * @file
 * Protocol messages of the MINOS DDP algorithms.
 *
 * The legal vocabulary is exactly the paper's Table I type-check set:
 *   INV, ACK, ACK_C, ACK_P, VAL, VAL_C, VAL_P,
 *   [INV]sc, [ACK_C]sc, [ACK_P]sc, [VAL_C]sc, [VAL_P]sc, [PERSIST]sc.
 *
 * Messages carry the client-write timestamp TS_WR, which uniquely
 * identifies the transaction, plus the abstract value token. INV-class
 * messages are data-sized (the record, default 1 KB); all others are
 * small control messages.
 */

#ifndef MINOS_NET_MESSAGE_HH
#define MINOS_NET_MESSAGE_HH

#include <cstdint>
#include <string_view>

#include "common/units.hh"
#include "kv/record.hh"
#include "kv/timestamp.hh"

namespace minos::net {

/** Scope identifier for the <Lin, Scope> model. */
using ScopeId = std::uint32_t;

/** All legal message types (paper Table I, check 4a). */
enum class MsgType : std::uint8_t
{
    INV,
    ACK,
    ACK_C,
    ACK_P,
    VAL,
    VAL_C,
    VAL_P,
    INV_SC,
    ACK_C_SC,
    ACK_P_SC,
    VAL_C_SC,
    VAL_P_SC,
    PERSIST_SC,
};

/** Human-readable message-type name. */
std::string_view msgTypeName(MsgType type);

/** True for the INV family (messages that carry the record data). */
constexpr bool
carriesData(MsgType type)
{
    return type == MsgType::INV || type == MsgType::INV_SC;
}

/** True for the scoped ([...]sc) message family. */
constexpr bool
isScoped(MsgType type)
{
    switch (type) {
      case MsgType::INV_SC:
      case MsgType::ACK_C_SC:
      case MsgType::ACK_P_SC:
      case MsgType::VAL_C_SC:
      case MsgType::VAL_P_SC:
      case MsgType::PERSIST_SC:
        return true;
      default:
        return false;
    }
}

/** One protocol message. */
struct Message
{
    MsgType type = MsgType::INV;
    kv::NodeId src = -1;
    kv::NodeId dst = -1;
    kv::Key key = 0;
    /** The client-write's unique timestamp (or the PERSIST's). */
    kv::Timestamp tsWr = kv::Timestamp::none();
    kv::Value value = 0;
    ScopeId scope = 0;
    /** Wire size used by the link timing models. */
    std::uint32_t sizeBytes = 64;
    /**
     * Follower-side handling time, piggybacked on ACK-family responses;
     * used to compute the paper's communication/computation split
     * (Fig. 4).
     */
    Tick handleNs = 0;
    /**
     * Destination bitmap for batched INV/VAL between host and SmartNIC
     * (MINOS-O §V-B.3). Bit i set = node i is a destination. Zero for
     * ordinary point-to-point messages.
     */
    std::uint64_t destMask = 0;
};

/** Size in bytes of a control (non-data) message on the wire. */
inline constexpr std::uint32_t controlMsgBytes = 64;

/** Build a control-message response template (src/dst swapped). */
Message makeResponse(const Message &req, MsgType type);

} // namespace minos::net

#endif // MINOS_NET_MESSAGE_HH
