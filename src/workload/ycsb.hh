/**
 * @file
 * YCSB-style workload generation (paper §VII).
 *
 * Defaults match the paper: 100,000-record database per node, zipfian key
 * distribution, 50% writes / 50% reads, 100,000 requests per node, 1 KB
 * records. Fig. 9 varies the write (read) fraction over
 * {20, 50, 80, 100}%; Fig. 14 switches the key distribution to uniform
 * and sweeps the database size from 10 to 100 K records.
 */

#ifndef MINOS_WORKLOAD_YCSB_HH
#define MINOS_WORKLOAD_YCSB_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.hh"
#include "kv/record.hh"

namespace minos::workload {

/** Request kind. */
enum class OpType : std::uint8_t
{
    Read,
    Write,
    /** YCSB workload F: read the record, then write it back. */
    ReadModifyWrite,
};

/** One client request. */
struct Op
{
    OpType type;
    kv::Key key;
    kv::Value value; // payload token for writes

    friend bool operator==(const Op &, const Op &) = default;
};

/** Key distribution selector. */
enum class KeyDist : std::uint8_t { Zipfian, Uniform };

/** Workload parameters (paper defaults). */
struct YcsbConfig
{
    std::uint64_t numRecords = 100'000;
    std::uint64_t requestsPerNode = 100'000;
    double writeFraction = 0.5;
    /** Fraction of read-modify-write requests (YCSB workload F). */
    double rmwFraction = 0.0;
    KeyDist dist = KeyDist::Zipfian;
    double zipfTheta = 0.99;
    std::uint32_t recordBytes = 1024;
    std::uint64_t seed = 42;
};

/**
 * Standard YCSB core-workload presets:
 *   A: update-heavy, 50% writes / 50% reads (the paper's default mix);
 *   B: read-mostly, 5% writes / 95% reads;
 *   C: read-only;
 *   F: 50% reads / 50% read-modify-writes.
 * All use the zipfian request distribution. (D and E need inserts and
 * scans, which the replicated KV of the paper does not model.)
 */
YcsbConfig ycsbPreset(char workload);

/**
 * Deterministic request generator. Each node gets an independent stream
 * (seeded by node id) so multi-node runs are reproducible.
 */
class YcsbGenerator
{
  public:
    YcsbGenerator(const YcsbConfig &cfg, std::uint32_t node_id);

    /** Draw the next request. */
    Op next();

    /** Generate a full stream of @p n requests. */
    std::vector<Op> stream(std::uint64_t n);

    const YcsbConfig &config() const { return cfg_; }

  private:
    YcsbConfig cfg_;
    Rng rng_;
    std::unique_ptr<KeyDistribution> keys_;
    std::uint64_t nextValue_;
};

} // namespace minos::workload

#endif // MINOS_WORKLOAD_YCSB_HH
