#include "ycsb.hh"

#include "common/logging.hh"

namespace minos::workload {

YcsbGenerator::YcsbGenerator(const YcsbConfig &cfg, std::uint32_t node_id)
    : cfg_(cfg),
      rng_(cfg.seed * 0x5851F42D4C957F2Dull + node_id + 1),
      nextValue_((static_cast<std::uint64_t>(node_id) << 48) + 1)
{
    MINOS_ASSERT(cfg.writeFraction >= 0.0 && cfg.writeFraction <= 1.0,
                 "writeFraction must be in [0,1]");
    MINOS_ASSERT(cfg.rmwFraction >= 0.0 &&
                 cfg.writeFraction + cfg.rmwFraction <= 1.0,
                 "writeFraction + rmwFraction must be in [0,1]");
    MINOS_ASSERT(cfg.numRecords > 0, "numRecords must be positive");
    switch (cfg.dist) {
      case KeyDist::Zipfian:
        keys_ = std::make_unique<ZipfianKeys>(cfg.numRecords,
                                              cfg.zipfTheta);
        break;
      case KeyDist::Uniform:
        keys_ = std::make_unique<UniformKeys>(cfg.numRecords);
        break;
    }
}

YcsbConfig
ycsbPreset(char workload)
{
    YcsbConfig cfg;
    switch (workload) {
      case 'A':
      case 'a':
        cfg.writeFraction = 0.5;
        break;
      case 'B':
      case 'b':
        cfg.writeFraction = 0.05;
        break;
      case 'C':
      case 'c':
        cfg.writeFraction = 0.0;
        break;
      case 'F':
      case 'f':
        cfg.writeFraction = 0.0;
        cfg.rmwFraction = 0.5;
        break;
      default:
        MINOS_FATAL("unknown YCSB preset '", workload,
                    "' (supported: A, B, C, F)");
    }
    return cfg;
}

Op
YcsbGenerator::next()
{
    Op op;
    op.key = keys_->next(rng_);
    double u = rng_.nextDouble();
    if (u < cfg_.writeFraction) {
        op.type = OpType::Write;
        op.value = nextValue_++;
    } else if (u < cfg_.writeFraction + cfg_.rmwFraction) {
        op.type = OpType::ReadModifyWrite;
        op.value = nextValue_++;
    } else {
        op.type = OpType::Read;
        op.value = 0;
    }
    return op;
}

std::vector<Op>
YcsbGenerator::stream(std::uint64_t n)
{
    std::vector<Op> ops;
    ops.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        ops.push_back(next());
    return ops;
}

} // namespace minos::workload
