/**
 * @file
 * DeathStarBench-style microservice workload (paper §VIII-C, Fig. 11).
 *
 * The paper evaluates the *Login* function of the *UserService*
 * microservice in the Social Network and Media Microservices
 * applications: each invocation performs a sequence of GET and SET
 * key-value operations against MINOS (every SET runs the client-write
 * algorithm, every GET the client-read algorithm), plus the fixed
 * client-to-service round trip of 500 us measured in datacenters [3].
 *
 * The paper does not list the exact op counts, so we model Login from the
 * DeathStarBench sources' access pattern: profile + credential lookups
 * (GETs) followed by session/login-state updates (SETs), with the Social
 * Network variant touching more state than Media. The op counts are
 * explicit config so the experiment is transparent and tunable.
 */

#ifndef MINOS_WORKLOAD_DEATHSTAR_HH
#define MINOS_WORKLOAD_DEATHSTAR_HH

#include <string>
#include <vector>

#include "common/random.hh"
#include "common/units.hh"
#include "workload/ycsb.hh"

namespace minos::workload {

/** A microservice function modeled as a KV op sequence + fixed RTTs. */
struct FunctionSpec
{
    std::string app;      ///< "Social" or "Media"
    std::string function; ///< "Login"
    int numGets = 0;      ///< client-read invocations per call
    int numSets = 0;      ///< client-write invocations per call
    int serviceRtts = 1;  ///< client<->service round trips per call
    Tick rttNs = 500 * US; ///< datacenter round-trip latency [3]
};

/** UserService.Login in the Social Network app. */
FunctionSpec socialNetworkLogin();

/** UserService.Login in the Media Microservices app. */
FunctionSpec mediaMicroservicesLogin();

/**
 * Generate the KV op sequence for one invocation of @p spec. Keys are
 * drawn from @p keys (user/session records); SET payload tokens come from
 * @p next_value.
 */
std::vector<Op> invocationOps(const FunctionSpec &spec,
                              KeyDistribution &keys, Rng &rng,
                              std::uint64_t &next_value);

} // namespace minos::workload

#endif // MINOS_WORKLOAD_DEATHSTAR_HH
