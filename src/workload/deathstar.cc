#include "deathstar.hh"

namespace minos::workload {

FunctionSpec
socialNetworkLogin()
{
    // Social Network Login: nginx -> UserService; loads the user profile
    // and credentials, verifies, then writes the session token, login
    // timestamp, and social-graph presence entries.
    FunctionSpec spec;
    spec.app = "Social";
    spec.function = "Login";
    spec.numGets = 10;
    spec.numSets = 12;
    spec.serviceRtts = 1;
    return spec;
}

FunctionSpec
mediaMicroservicesLogin()
{
    // Media Microservices Login: smaller state footprint — credentials +
    // profile reads, session and watch-state writes.
    FunctionSpec spec;
    spec.app = "Media";
    spec.function = "Login";
    spec.numGets = 8;
    spec.numSets = 8;
    spec.serviceRtts = 1;
    return spec;
}

std::vector<Op>
invocationOps(const FunctionSpec &spec, KeyDistribution &keys, Rng &rng,
              std::uint64_t &next_value)
{
    std::vector<Op> ops;
    ops.reserve(static_cast<std::size_t>(spec.numGets + spec.numSets));
    // Login interleaves reads (lookups) before writes (state updates),
    // reads first, matching the credential-check-then-update pattern.
    for (int i = 0; i < spec.numGets; ++i)
        ops.push_back(Op{OpType::Read, keys.next(rng), 0});
    for (int i = 0; i < spec.numSets; ++i)
        ops.push_back(Op{OpType::Write, keys.next(rng), next_value++});
    return ops;
}

} // namespace minos::workload
