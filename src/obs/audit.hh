/**
 * @file
 * Online protocol auditors: streaming invariant checks over the flight
 * recorder's event stream (paper §VI, applied to full-scale runs).
 *
 * The model checker (check/checker.hh) proves the Table I conditions on
 * a 3-node abstract model; these auditors watch the *real* engines via
 * the RecordSink bus, so every simulated run of MINOS-B and MINOS-O
 * continuously self-checks consistency/persistency ordering:
 *
 *  - ConsistencyAuditor  — Table I conds. 2b/2c: glb_volatileTS never
 *    advances past a write (and no consistency VAL is sent, and no
 *    RDLock owned by it is released, and no read observes it) before
 *    all its consistency ACKs are in.
 *  - PersistencyAuditor  — per-model persistency rules for all five of
 *    Synch/Strict/REnf/Event/Scope (conds. 3a/3b): no persistency ACK
 *    before the sender is durable, no persistency VAL or durable-glb
 *    advance before all ACK_Ps, REnf/Synch reads only observe
 *    durable-everywhere records, [PERSIST]sc acknowledgments imply the
 *    whole scope flushed, and every applied write is durable on every
 *    replica by quiescence.
 *  - AckConservationAuditor — every INV fan-out is answered by exactly
 *    N-1 distinct ACKs per family (or obsolete cuts); no duplicate or
 *    orphan ACKs.
 *  - FifoWatchdog        — vFIFO/dFIFO occupancy samples stay within
 *    the configured bounds and grow at most one entry per push.
 *
 * Every violation carries the rendered per-op causal timeline from the
 * OpTraceIndex (obs/optrace.hh), not just a predicate name. Auditors
 * never feed back into the simulation: they only observe records built
 * from timestamps the engines already took, so attaching them cannot
 * perturb simulated results.
 */

#ifndef MINOS_OBS_AUDIT_HH
#define MINOS_OBS_AUDIT_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/optrace.hh"
#include "obs/recorder.hh"
#include "simproto/models.hh"

namespace minos::obs {

class MetricsRegistry;

/** Cluster facts the audit rules depend on. */
struct AuditConfig
{
    int numNodes = 0;
    simproto::PersistModel model = simproto::PersistModel::Synch;
    /** vFIFO/dFIFO capacity bounds (0 = unbounded; B leaves both 0). */
    int vfifoCap = 0;
    int dfifoCap = 0;

    int followers() const { return numNodes - 1; }
};

/** One audit failure, with the offending op's causal history. */
struct AuditViolation
{
    std::string rule;   ///< stable id, e.g. "C2-val-before-acks"
    Tick when = 0;      ///< simulated time of the offending record
    std::string detail; ///< human-readable statement of the breach
    std::string trace;  ///< rendered causal excerpt (may be empty)
};

/**
 * Streaming per-write protocol state shared by the protocol auditors:
 * digests the record stream into ACK counts and per-node apply/persist
 * masks, keyed by (key, TS_WR).
 */
class OpLedger
{
  public:
    struct OpState
    {
        std::int32_t coordinator = -1;
        bool fanout = false;        ///< INVs left the coordinator
        bool endedObsolete = false; ///< write returned as obsolete-cut
        int acks = 0;               ///< combined ACKs (Synch)
        int acksC = 0;              ///< ACK_C / ACK_C_SC
        int acksP = 0;              ///< ACK_P
        std::uint64_t persistNodes = 0;  ///< nodes with PersistDone
        std::uint64_t obsoleteNodes = 0; ///< nodes that cut the INV
        std::uint64_t seenAck = 0;       ///< sender masks, per family
        std::uint64_t seenAckC = 0;
        std::uint64_t seenAckP = 0;
    };

    struct Applied
    {
        OpState *op = nullptr; ///< null when the record is not op-keyed
        OpId id;
        bool newOp = false; ///< this record opened a new ledger entry
        bool duplicateAck = false; ///< this ACK's (family, sender) repeats
    };

    /** Fold one record into the ledger. */
    Applied apply(const Record &rec);

    OpState *find(const OpId &id);
    const OpState *find(const OpId &id) const;

    std::size_t ops() const { return ops_.size(); }

    const std::unordered_map<OpId, OpState, OpIdHash> &
    all() const
    {
        return ops_;
    }

  private:
    std::unordered_map<OpId, OpState, OpIdHash> ops_;
};

/** Base class: sink + violation reporting + metrics publication. */
class Auditor : public RecordSink
{
  public:
    Auditor(const char *name, const AuditConfig *cfg,
            const OpTraceIndex *index);

    const char *name() const { return name_; }

    /** End-of-run (quiescence) checks; called once by AuditBundle. */
    virtual void finish() {}

    /** Stored violations (capped; violationCount() keeps counting). */
    const std::vector<AuditViolation> &
    violations() const
    {
        return violations_;
    }

    std::uint64_t violationCount() const { return violationCount_; }

    /** Units audited: distinct writes (protocol), samples (FIFO). */
    std::uint64_t opsAudited() const { return opsAudited_; }

    /** Publish audit.<name>.{violations,ops_audited} counters. */
    void registerInto(MetricsRegistry &reg) const;

  protected:
    /** Violations stored per auditor; beyond this, only counted. */
    static constexpr std::size_t maxStoredViolations = 64;

    const AuditConfig &cfg() const { return *cfg_; }
    int needed() const { return cfg_->followers(); }

    /** Report a violation with the op's rendered causal trace. */
    void violate(const char *rule, Tick when, const OpId &id,
                 std::string detail);

    /** Report a violation with a caller-supplied trace excerpt. */
    void violateRaw(const char *rule, Tick when, std::string detail,
                    std::string trace);

    std::uint64_t opsAudited_ = 0;

  private:
    const char *name_;
    const AuditConfig *cfg_;
    const OpTraceIndex *index_;
    std::vector<AuditViolation> violations_;
    std::uint64_t violationCount_ = 0;
};

/** Table I conds. 2b/2c on the live event stream. */
class ConsistencyAuditor : public Auditor
{
  public:
    ConsistencyAuditor(const AuditConfig *cfg,
                       const OpTraceIndex *index);
    void onRecord(const Record &rec) override;

  private:
    bool gateReached(const OpLedger::OpState &st) const;
    OpLedger ledger_;
};

/** Per-model persistency rules (Table I conds. 3a/3b). */
class PersistencyAuditor : public Auditor
{
  public:
    PersistencyAuditor(const AuditConfig *cfg,
                       const OpTraceIndex *index);
    void onRecord(const Record &rec) override;
    void finish() override;

  private:
    bool persistGateReached(const OpLedger::OpState &st) const;
    OpLedger ledger_;
    /** Scope id -> fanned-out writes marked into it (<Lin, Scope>). */
    std::unordered_map<std::uint64_t, std::vector<OpId>> scopeWrites_;
};

/** INV/ACK bookkeeping conservation. */
class AckConservationAuditor : public Auditor
{
  public:
    AckConservationAuditor(const AuditConfig *cfg,
                           const OpTraceIndex *index);
    void onRecord(const Record &rec) override;
    void finish() override;

  private:
    OpLedger ledger_;
    struct ScopeAcks
    {
        std::uint64_t senders = 0;
        bool completed = false; ///< [PERSIST]sc returned to the client
        Tick endedAt = 0;
    };
    std::unordered_map<std::uint64_t, ScopeAcks> scopeAcks_;
};

/** vFIFO/dFIFO occupancy sanity. */
class FifoWatchdog : public Auditor
{
  public:
    FifoWatchdog(const AuditConfig *cfg, const OpTraceIndex *index);
    void onRecord(const Record &rec) override;

  private:
    /** Last few FIFO records per node, rendered into violations. */
    static constexpr std::size_t historyPerNode = 8;

    struct NodeState
    {
        std::int64_t lastDepth[2] = {-1, -1}; ///< [vFIFO, dFIFO]
        std::int64_t lastSkipId = -1;
        std::vector<Record> history; ///< bounded ring
        std::size_t historyNext = 0;
    };

    std::string renderHistory(const NodeState &st) const;
    std::unordered_map<std::int32_t, NodeState> nodes_;
};

/**
 * The default audit harness: one OpTraceIndex plus all four auditors,
 * attachable to a FlightRecorder in one call. Engines wire this up
 * from ClusterConfig::audit (the cluster fills in the AuditConfig from
 * its own topology/model, so callers just default-construct a bundle).
 */
class AuditBundle
{
  public:
    AuditBundle();

    /** Set the cluster facts; must precede the first recorded event. */
    void configure(const AuditConfig &cfg);

    /** Register the index + auditors as sinks (once). */
    void attach(FlightRecorder &rec);

    /** Unregister from the recorder (safe to call when detached). */
    void detach();

    /** Run end-of-run checks exactly once (later calls no-op). */
    void finish();

    bool clean() const { return violationCount() == 0; }
    std::uint64_t violationCount() const;

    /** Distinct client writes audited. */
    std::uint64_t opsAudited() const;

    /** All stored violations, with traces, ready to print. */
    std::string report(std::size_t maxViolations = 16) const;

    /** Publish audit.* counters for every auditor. */
    void registerInto(MetricsRegistry &reg) const;

    const AuditConfig &config() const { return cfg_; }
    const OpTraceIndex &index() const { return index_; }
    const ConsistencyAuditor &consistency() const { return consistency_; }
    const PersistencyAuditor &persistency() const { return persistency_; }
    const AckConservationAuditor &acks() const { return acks_; }
    const FifoWatchdog &fifo() const { return fifo_; }

    /** The four auditors, for uniform iteration. */
    std::vector<const Auditor *> auditors() const;

  private:
    AuditConfig cfg_;
    OpTraceIndex index_;
    ConsistencyAuditor consistency_;
    PersistencyAuditor persistency_;
    AckConservationAuditor acks_;
    FifoWatchdog fifo_;
    FlightRecorder *attached_ = nullptr;
    bool finished_ = false;
};

} // namespace minos::obs

#endif // MINOS_OBS_AUDIT_HH
