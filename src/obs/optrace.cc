#include "obs/optrace.hh"

#include <sstream>

#include "kv/timestamp.hh"

namespace minos::obs {

namespace {

/**
 * Map a record to the operation it belongs to. Returns false for
 * records with no per-op identity (FIFO samples, phase spans — their
 * txn token lacks the key — and scope-level messages).
 */
bool
opIdOf(const Record &rec, OpId &out)
{
    switch (rec.kind) {
      case EventKind::InvFanout:
      case EventKind::InvApplied:
      case EventKind::InvObsolete:
      case EventKind::RdLockReleased:
      case EventKind::SnicBroadcastInv:
      case EventKind::PersistDone:
      case EventKind::GlbRaised:
        out = {rec.a0, static_cast<std::uint64_t>(rec.a1)};
        return rec.a1 != 0;
      case EventKind::AckReceived:
      case EventKind::AckSent:
        if (ackFlavor(rec.aux) == AckFlavor::ScopePersist)
            return false;
        out = {rec.a0, static_cast<std::uint64_t>(rec.a1)};
        return rec.a1 != 0;
      case EventKind::ValSent:
        if (static_cast<ValFlavor>(rec.aux) == ValFlavor::ValPSc)
            return false;
        out = {rec.a0, static_cast<std::uint64_t>(rec.a1)};
        return rec.a1 != 0;
      case EventKind::ClientOpBegin:
      case EventKind::ClientOpEnd:
        // Writes (and reads that observed a version) join the written
        // op's timeline; [PERSIST]sc and unresolved reads have no TS.
        if (opType(rec.aux) == OpType::PersistSc)
            return false;
        out = {rec.a0, static_cast<std::uint64_t>(rec.a1)};
        return rec.a1 != 0;
      case EventKind::ScopeMark:
        out = {rec.a0 & 0xffffffff,
               static_cast<std::uint64_t>(rec.a1)};
        return rec.a1 != 0;
      case EventKind::FollowerEnqueued:
      case EventKind::VfifoSkipped:
      case EventKind::FifoDepth:
      case EventKind::SpanBegin:
      case EventKind::SpanEnd:
        return false;
    }
    return false;
}

} // namespace

OpTraceIndex::OpTraceIndex(std::size_t maxEventsPerOp)
    : maxEventsPerOp_(maxEventsPerOp == 0 ? 1 : maxEventsPerOp)
{
}

void
OpTraceIndex::onRecord(const Record &rec)
{
    OpId id;
    if (!opIdOf(rec, id))
        return;
    OpTrace &trace = ops_[id];
    ++trace.total;
    if (trace.events.size() < maxEventsPerOp_)
        trace.events.push_back(rec);
}

std::string
OpTraceIndex::render(const OpId &id) const
{
    auto it = ops_.find(id);
    if (it == ops_.end())
        return "";
    std::ostringstream os;
    os << "op key=" << id.key << " ts=" << kv::Timestamp::unpack(id.ts)
       << " causal trace (" << it->second.total << " events):\n";
    for (const Record &rec : it->second.events)
        os << "  " << renderRecord(rec) << '\n';
    if (it->second.total > it->second.events.size())
        os << "  ... (+"
           << it->second.total - it->second.events.size()
           << " more)\n";
    return os.str();
}

} // namespace minos::obs
