#include "obs/chrome_trace.hh"

#include <set>
#include <sstream>

#include "obs/metrics.hh"
#include "obs/phase.hh"

namespace minos::obs {

namespace {

/** Track id for a record's node; node -1 events get their own track. */
constexpr std::int32_t kGlobalTrack = 9999;

std::int32_t
trackOf(const Record &rec)
{
    return rec.node < 0 ? kGlobalTrack : rec.node;
}

void
emitCommon(std::ostringstream &os, const Record &rec)
{
    // Chrome trace timestamps are microseconds; ticks are nanoseconds.
    os << "\"cat\":\"" << categoryName(rec.category) << "\",\"ts\":"
       << jsonNumber(static_cast<double>(rec.when) / 1e3)
       << ",\"pid\":" << trackOf(rec) << ",\"tid\":0";
}

} // namespace

std::string
chromeTraceJson(const std::vector<Record> &records)
{
    std::ostringstream os;
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";

    // Metadata events naming one track per node present in the trace.
    std::set<std::int32_t> tracks;
    for (const Record &rec : records)
        tracks.insert(trackOf(rec));
    bool first = true;
    for (std::int32_t t : tracks) {
        os << (first ? "" : ",")
           << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << t
           << ",\"tid\":0,\"args\":{\"name\":\"";
        if (t == kGlobalTrack)
            os << "global";
        else
            os << "node " << t;
        os << "\"}}";
        first = false;
    }

    for (const Record &rec : records) {
        os << (first ? "" : ",") << "{";
        first = false;
        switch (rec.kind) {
          case EventKind::SpanBegin:
          case EventKind::SpanEnd:
            // Async events: the txn token as id keeps overlapping
            // spans of concurrent transactions apart.
            os << "\"name\":\""
               << phaseName(static_cast<Phase>(rec.a0)) << "\",\"ph\":\""
               << (rec.kind == EventKind::SpanBegin ? 'b' : 'e')
               << "\",\"id\":" << rec.a1 << ",";
            emitCommon(os, rec);
            break;
          default:
            os << "\"name\":\"" << jsonEscape(eventKindName(rec.kind))
               << "\",\"ph\":\"i\",\"s\":\"t\",";
            emitCommon(os, rec);
            os << ",\"args\":{\"a0\":" << rec.a0 << ",\"a1\":" << rec.a1
               << "}";
            break;
        }
        os << "}";
    }

    os << "]}";
    return os.str();
}

std::string
chromeTraceJson(const FlightRecorder &rec)
{
    return chromeTraceJson(rec.sortedSnapshot());
}

} // namespace minos::obs
