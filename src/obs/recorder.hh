/**
 * @file
 * Structured flight recorder: a fixed-capacity ring of typed, binary
 * protocol-event records.
 *
 * Replaces the old string-per-event sim::TraceLog. Every record is a
 * small POD (tick, category, node, event kind, two integer arguments),
 * so the record path never touches the allocator and never formats
 * text. Rendering happens only at export time: the same ring serves
 * the chronological text dump (str()) and the Chrome trace-event JSON
 * exporter (chrome_trace.hh).
 *
 * Enablement contract (see docs/observability.md): record() checks the
 * category's enabled bit before touching the ring, and the arguments
 * are plain integers, so a disabled category costs one load + branch —
 * no formatting, no allocation. Detached (the engines' default), the
 * record path is a null-pointer check at the call site.
 */

#ifndef MINOS_OBS_RECORDER_HH
#define MINOS_OBS_RECORDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"

namespace minos::obs {

/** Event categories, individually toggleable. */
enum class Category : std::uint8_t
{
    Protocol, ///< coordinator/follower algorithm steps
    Message,  ///< sends and receipts
    Lock,     ///< RDLock/WRLock transitions
    Fifo,     ///< vFIFO/dFIFO activity and occupancy samples
    Recovery, ///< membership and log shipping
    Phase,    ///< per-transaction phase spans (begin/end)
};

inline constexpr int numCategories = 6;

/** Human-readable category name. */
const char *categoryName(Category cat);

/**
 * Parse a category name ("protocol", "lock", ...) as printed by
 * categoryName(). Returns false on an unknown name.
 */
bool categoryFromName(const std::string &name, Category &out);

/**
 * What happened. The two integer arguments (a0, a1) are interpreted
 * per kind; see renderRecord() for the exact meanings.
 */
enum class EventKind : std::uint8_t
{
    InvFanout,        ///< coordinator sent INVs; a0=key, a1=packed TS_WR
    InvApplied,       ///< follower applied an INV; a0=key, a1=packed TS_WR
    InvObsolete,      ///< INV cut short as obsolete; a0=key, a1=packed TS_WR
    RdLockReleased,   ///< RDLock released; a0=key, a1=packed owner TS
    SnicBroadcastInv, ///< coordinator SNIC broadcast; a0=key, a1=packed TS_WR
    FollowerEnqueued, ///< follower SNIC vFIFO enqueue; a0=key, a1=entry id
    VfifoSkipped,     ///< drain skipped obsolete entry; a0=entry id, a1=packed TS
    FifoDepth,        ///< occupancy sample; a0=0 (vFIFO) / 1 (dFIFO), a1=depth
    SpanBegin,        ///< phase span begins; a0=phase, a1=txn token
    SpanEnd,          ///< phase span ends; a0=phase, a1=txn token
    AckReceived,      ///< coordinator got an ACK; a0=key (scope acks:
                      ///< scope id), a1=packed TS_WR (scope acks: 0),
                      ///< aux=ackAux(flavor, sender)
    PersistDone,      ///< one record became durable at this node
                      ///< (NVM append on B, dFIFO enqueue on O);
                      ///< a0=key, a1=packed TS_WR
    ValSent,          ///< coordinator sent VALs; a0=key (VAL_P_SC:
                      ///< scope id), a1=packed TS_WR (VAL_P_SC: 0),
                      ///< aux=ValFlavor
    ClientOpBegin,    ///< client op admitted; a0=key ([PERSIST]sc:
                      ///< scope id), a1=packed TS_WR (reads/persist:
                      ///< 0), aux=opAux(type, false)
    ClientOpEnd,      ///< client op returned; a0=key ([PERSIST]sc:
                      ///< scope id), a1=packed TS_WR (reads: observed
                      ///< TS), aux=opAux(type, obsolete)
    GlbRaised,        ///< glb_volatileTS/glb_durableTS advanced past
                      ///< this write; a0=key, a1=packed TS_WR,
                      ///< aux=0 volatile / 1 durable
    ScopeMark,        ///< write tagged into a scope; a0=(scope<<32)|key,
                      ///< a1=packed TS_WR
    AckSent,          ///< follower dispatched an ACK; a0=key (scope
                      ///< acks: scope id), a1=packed TS_WR (scope
                      ///< acks: 0), aux=ackAux(flavor, sender=self).
                      ///< Laid at the send decision so auditors can
                      ///< check what the sender certified *then* (its
                      ///< own durability), which receipt-time records
                      ///< cannot distinguish once the persist races
                      ///< the network transit.
};

/** Human-readable event-kind name (also the Chrome trace event name). */
const char *eventKindName(EventKind kind);

/** ACK family carried in an AckReceived record's aux field. */
enum class AckFlavor : std::uint8_t
{
    Combined,         ///< ACK (Synch: consistency + persistency in one)
    Consistency,      ///< ACK_C
    Persistency,      ///< ACK_P
    ScopeConsistency, ///< ACK_C_SC
    ScopePersist,     ///< ACK_P_SC (scope flush acknowledgment)
};

/** VAL flavor carried in a ValSent record's aux field. */
enum class ValFlavor : std::uint8_t
{
    Val,   ///< VAL (consistency + persistency validation in one)
    ValC,  ///< VAL_C
    ValP,  ///< VAL_P
    ValCSc, ///< VAL_C_SC
    ValPSc, ///< VAL_P_SC (scope durable everywhere)
};

/** Client operation type in ClientOpBegin/End aux. */
enum class OpType : std::uint8_t
{
    Write,
    Read,
    PersistSc, ///< the <Lin, Scope> [PERSIST]sc transaction
};

/** Pack an AckReceived aux: low byte flavor, high byte sender + 1. */
constexpr std::uint16_t
ackAux(AckFlavor flavor, std::int32_t sender)
{
    return static_cast<std::uint16_t>(
        static_cast<std::uint16_t>(flavor) |
        (static_cast<std::uint16_t>(sender + 1) << 8));
}

/** Sender node encoded by ackAux(), or -1 when absent. */
constexpr std::int32_t
ackSender(std::uint16_t aux)
{
    return static_cast<std::int32_t>(aux >> 8) - 1;
}

/** ACK flavor encoded by ackAux(). */
constexpr AckFlavor
ackFlavor(std::uint16_t aux)
{
    return static_cast<AckFlavor>(aux & 0xff);
}

/** Pack a ClientOpBegin/End aux: low byte type, bit 8 obsolete. */
constexpr std::uint16_t
opAux(OpType type, bool obsolete)
{
    return static_cast<std::uint16_t>(static_cast<std::uint16_t>(type) |
                                      (obsolete ? 0x100u : 0u));
}

constexpr OpType
opType(std::uint16_t aux)
{
    return static_cast<OpType>(aux & 0xff);
}

constexpr bool
opObsolete(std::uint16_t aux)
{
    return (aux & 0x100u) != 0;
}

/** One recorded event: 32 bytes, trivially copyable, no heap. */
struct Record
{
    Tick when = 0;
    std::int64_t a0 = 0;
    std::int64_t a1 = 0;
    std::int32_t node = -1;
    Category category = Category::Protocol;
    EventKind kind = EventKind::InvFanout;
    /** Per-kind extra payload (ack/val flavor, op type); 0 otherwise. */
    std::uint16_t aux = 0;
};

static_assert(sizeof(Record) == 32, "Record must stay one 32-byte slot");

/**
 * Live observer of the record stream. Sinks see *every* record built,
 * regardless of the per-category ring-retention bits: category
 * enablement controls what the ring keeps for export, sinks are the
 * audit bus (obs/audit.hh) and must not lose events to a muted
 * category.
 */
class RecordSink
{
  public:
    virtual ~RecordSink() = default;
    virtual void onRecord(const Record &rec) = 0;
};

/** Render one record as text ("INV fan-out key=7 ts=3.1" style). */
std::string renderRecord(const Record &rec);

/** Fixed-capacity ring of typed records; oldest are overwritten. */
class FlightRecorder
{
  public:
    /** @param capacity ring size (clamped to >= 1). */
    explicit FlightRecorder(std::size_t capacity = 1 << 15);

    /** Enable/disable one category (all enabled by default). */
    void setEnabled(Category cat, bool enabled);

    bool
    enabled(Category cat) const
    {
        return enabled_[static_cast<int>(cat)];
    }

    /**
     * Attach a live observer. Sinks receive every record regardless of
     * category enablement (which only governs ring retention). Not
     * owned; detach before the sink dies.
     */
    void addSink(RecordSink *sink);

    /** Detach a previously added sink (no-op when absent). */
    void removeSink(RecordSink *sink);

    /**
     * Record one event. With no sinks attached, the enabled check is
     * the first thing that happens — a disabled category pays nothing
     * beyond it — and the write is a POD store into the preallocated
     * ring (zero allocation). Attached sinks additionally see the
     * record synchronously.
     */
    void
    record(Tick when, Category cat, EventKind kind, std::int32_t node,
           std::int64_t a0 = 0, std::int64_t a1 = 0,
           std::uint16_t aux = 0)
    {
        const bool keep = enabled_[static_cast<int>(cat)];
        if (!keep && sinks_.empty())
            return;
        const Record rec{when, a0, a1, node, cat, kind, aux};
        if (keep) {
            ring_[next_] = rec;
            if (++next_ == ring_.size())
                next_ = 0;
            if (used_ < ring_.size())
                ++used_;
            ++recorded_;
        }
        for (RecordSink *sink : sinks_)
            sink->onRecord(rec);
    }

    /**
     * Events currently retained, in record order (which is
     * chronological except for retroactively-laid SpanBegin records —
     * exporters stable-sort by tick).
     */
    std::vector<Record> snapshot() const;

    /** Tick-ordered snapshot (stable: record order breaks ties). */
    std::vector<Record> sortedSnapshot() const;

    /** Render the tick-ordered snapshot as one text line per event. */
    std::string str() const;

    /** Total events ever recorded (including overwritten ones). */
    std::uint64_t recorded() const { return recorded_; }

    /** Events lost to ring overwrite. */
    std::uint64_t
    dropped() const
    {
        return recorded_ - used_;
    }

    std::size_t capacity() const { return ring_.size(); }

    void clear();

  private:
    std::vector<Record> ring_;
    std::vector<RecordSink *> sinks_;
    std::size_t next_ = 0;
    std::size_t used_ = 0;
    std::uint64_t recorded_ = 0;
    bool enabled_[numCategories];
};

} // namespace minos::obs

#endif // MINOS_OBS_RECORDER_HH
