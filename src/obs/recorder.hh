/**
 * @file
 * Structured flight recorder: a fixed-capacity ring of typed, binary
 * protocol-event records.
 *
 * Replaces the old string-per-event sim::TraceLog. Every record is a
 * small POD (tick, category, node, event kind, two integer arguments),
 * so the record path never touches the allocator and never formats
 * text. Rendering happens only at export time: the same ring serves
 * the chronological text dump (str()) and the Chrome trace-event JSON
 * exporter (chrome_trace.hh).
 *
 * Enablement contract (see docs/observability.md): record() checks the
 * category's enabled bit before touching the ring, and the arguments
 * are plain integers, so a disabled category costs one load + branch —
 * no formatting, no allocation. Detached (the engines' default), the
 * record path is a null-pointer check at the call site.
 */

#ifndef MINOS_OBS_RECORDER_HH
#define MINOS_OBS_RECORDER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"

namespace minos::obs {

/** Event categories, individually toggleable. */
enum class Category : std::uint8_t
{
    Protocol, ///< coordinator/follower algorithm steps
    Message,  ///< sends and receipts
    Lock,     ///< RDLock/WRLock transitions
    Fifo,     ///< vFIFO/dFIFO activity and occupancy samples
    Recovery, ///< membership and log shipping
    Phase,    ///< per-transaction phase spans (begin/end)
};

inline constexpr int numCategories = 6;

/** Human-readable category name. */
const char *categoryName(Category cat);

/**
 * What happened. The two integer arguments (a0, a1) are interpreted
 * per kind; see renderRecord() for the exact meanings.
 */
enum class EventKind : std::uint8_t
{
    InvFanout,        ///< coordinator sent INVs; a0=key, a1=packed TS_WR
    InvApplied,       ///< follower applied an INV; a0=key, a1=packed TS_WR
    InvObsolete,      ///< INV cut short as obsolete; a0=key, a1=packed TS_WR
    RdLockReleased,   ///< RDLock released; a0=key, a1=packed owner TS
    SnicBroadcastInv, ///< coordinator SNIC broadcast; a0=key, a1=packed TS_WR
    FollowerEnqueued, ///< follower SNIC vFIFO enqueue; a0=key, a1=entry id
    VfifoSkipped,     ///< drain skipped obsolete entry; a0=entry id, a1=packed TS
    FifoDepth,        ///< occupancy sample; a0=0 (vFIFO) / 1 (dFIFO), a1=depth
    SpanBegin,        ///< phase span begins; a0=phase, a1=txn token
    SpanEnd,          ///< phase span ends; a0=phase, a1=txn token
};

/** Human-readable event-kind name (also the Chrome trace event name). */
const char *eventKindName(EventKind kind);

/** One recorded event: 32 bytes, trivially copyable, no heap. */
struct Record
{
    Tick when = 0;
    std::int64_t a0 = 0;
    std::int64_t a1 = 0;
    std::int32_t node = -1;
    Category category = Category::Protocol;
    EventKind kind = EventKind::InvFanout;
};

/** Render one record as text ("INV fan-out key=7 ts=3.1" style). */
std::string renderRecord(const Record &rec);

/** Fixed-capacity ring of typed records; oldest are overwritten. */
class FlightRecorder
{
  public:
    /** @param capacity ring size (clamped to >= 1). */
    explicit FlightRecorder(std::size_t capacity = 1 << 15);

    /** Enable/disable one category (all enabled by default). */
    void setEnabled(Category cat, bool enabled);

    bool
    enabled(Category cat) const
    {
        return enabled_[static_cast<int>(cat)];
    }

    /**
     * Record one event. The enabled check is the first thing that
     * happens — a disabled category pays nothing beyond it — and the
     * write is a POD store into the preallocated ring (zero
     * allocation).
     */
    void
    record(Tick when, Category cat, EventKind kind, std::int32_t node,
           std::int64_t a0 = 0, std::int64_t a1 = 0)
    {
        if (!enabled_[static_cast<int>(cat)])
            return;
        ring_[next_] = Record{when, a0, a1, node, cat, kind};
        if (++next_ == ring_.size())
            next_ = 0;
        if (used_ < ring_.size())
            ++used_;
        ++recorded_;
    }

    /**
     * Events currently retained, in record order (which is
     * chronological except for retroactively-laid SpanBegin records —
     * exporters stable-sort by tick).
     */
    std::vector<Record> snapshot() const;

    /** Tick-ordered snapshot (stable: record order breaks ties). */
    std::vector<Record> sortedSnapshot() const;

    /** Render the tick-ordered snapshot as one text line per event. */
    std::string str() const;

    /** Total events ever recorded (including overwritten ones). */
    std::uint64_t recorded() const { return recorded_; }

    /** Events lost to ring overwrite. */
    std::uint64_t
    dropped() const
    {
        return recorded_ - used_;
    }

    std::size_t capacity() const { return ring_.size(); }

    void clear();

  private:
    std::vector<Record> ring_;
    std::size_t next_ = 0;
    std::size_t used_ = 0;
    std::uint64_t recorded_ = 0;
    bool enabled_[numCategories];
};

} // namespace minos::obs

#endif // MINOS_OBS_RECORDER_HH
