#include "obs/metrics.hh"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace minos::obs {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    // %.17g round-trips any double, and identical values format
    // identically — the determinism the metrics JSON test pins.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
MetricsRegistry::counter(const std::string &name, std::uint64_t value)
{
    counters_[name] = value;
}

void
MetricsRegistry::gauge(const std::string &name, double value)
{
    gauges_[name] = value;
}

void
MetricsRegistry::histogram(const std::string &name,
                           const stats::LatencySeries &series)
{
    histograms_[name] = HistSummary{series.count(),
                                    series.mean(),
                                    series.p50(),
                                    series.percentile(95.0),
                                    series.p99(),
                                    series.min(),
                                    series.max()};
}

bool
MetricsRegistry::empty() const
{
    return counters_.empty() && gauges_.empty() && histograms_.empty();
}

void
MetricsRegistry::clear()
{
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

std::string
MetricsRegistry::json() const
{
    std::ostringstream os;
    os << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, v] : counters_) {
        os << (first ? "" : ",") << '"' << jsonEscape(name) << "\":"
           << v;
        first = false;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto &[name, v] : gauges_) {
        os << (first ? "" : ",") << '"' << jsonEscape(name) << "\":"
           << jsonNumber(v);
        first = false;
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : histograms_) {
        os << (first ? "" : ",") << '"' << jsonEscape(name)
           << "\":{\"count\":" << h.count
           << ",\"mean\":" << jsonNumber(h.mean) << ",\"p50\":" << h.p50
           << ",\"p95\":" << h.p95 << ",\"p99\":" << h.p99
           << ",\"min\":" << h.min << ",\"max\":" << h.max << "}";
        first = false;
    }
    os << "}}";
    return os.str();
}

void
registerEventCore(MetricsRegistry &reg, const std::string &prefix,
                  const stats::EventCoreCounters &c)
{
    reg.counter(prefix + "events_executed", c.eventsExecuted);
    reg.counter(prefix + "ready_ring_hits", c.readyRingHits);
    reg.counter(prefix + "heap_pushes", c.heapPushes);
    reg.gauge(prefix + "peak_heap_size",
              static_cast<double>(c.peakHeapSize));
    reg.gauge(prefix + "peak_ring_size",
              static_cast<double>(c.peakRingSize));
    reg.gauge(prefix + "ring_hit_rate", c.ringHitRate());
}

} // namespace minos::obs
