/**
 * @file
 * Per-transaction phase taxonomy of the write critical path, and the
 * aggregation container that generalizes the Fig. 4 two-bucket
 * communication/computation split to the full phase vector.
 *
 * Phases (both engines; see DESIGN.md "Observability layer" for the
 * exact B vs. O boundaries):
 *  - lock-wait:  RDLock snatch (+ WRLock grab on MINOS-B);
 *  - inv-fanout: tx-path software cost until the INVs leave the host
 *                send queue;
 *  - persist:    one durable append (host NVM on B, dFIFO enqueue on
 *                O), recorded wherever it runs — critical path or
 *                background;
 *  - ack-gather: first INV send to the arrival of the gating ACK set;
 *  - val:        post-gate completion work on the client path (glb
 *                raises, VAL fan-out, PCIe bookkeeping on O).
 *
 * Span recording piggybacks on simulated timestamps the engines already
 * take (sim.now() at existing await boundaries), so attaching phase
 * stats or a recorder never changes simulated time.
 */

#ifndef MINOS_OBS_PHASE_HH
#define MINOS_OBS_PHASE_HH

#include <array>
#include <string>

#include "common/units.hh"
#include "obs/recorder.hh"
#include "stats/stats.hh"

namespace minos::obs {

class MetricsRegistry;

/** A named slice of the write critical path. */
enum class Phase : std::uint8_t
{
    LockWait,
    InvFanout,
    Persist,
    AckGather,
    Val,
};

inline constexpr int numPhases = 5;

/** Stable lowercase name ("lock-wait", "inv-fanout", ...). */
const char *phaseName(Phase p);

/** Per-phase latency series aggregated over a run. */
class WritePhaseStats
{
  public:
    void
    add(Phase p, Tick duration)
    {
        series_[static_cast<std::size_t>(p)].add(duration);
    }

    const stats::LatencySeries &
    series(Phase p) const
    {
        return series_[static_cast<std::size_t>(p)];
    }

    /** True when no span has been recorded yet. */
    bool empty() const;

    /** Fixed-width per-phase latency table (count/mean/p50/p99). */
    std::string table() const;

    /** Register one histogram per non-empty phase under @p prefix. */
    void registerInto(MetricsRegistry &reg,
                      const std::string &prefix) const;

  private:
    std::array<stats::LatencySeries, numPhases> series_;
};

/**
 * Record one completed phase span: aggregate the duration into
 * @p phases (when attached) and lay SpanBegin/SpanEnd records into
 * @p rec (when attached and the Phase category is enabled). Either
 * pointer may be null; both timestamps are simulated times the caller
 * already holds, so this never advances the simulation.
 */
inline void
recordSpan(FlightRecorder *rec, WritePhaseStats *phases, Phase p,
           Tick t0, Tick t1, std::int32_t node, std::int64_t txn)
{
    if (phases)
        phases->add(p, t1 - t0);
    if (rec) {
        rec->record(t0, Category::Phase, EventKind::SpanBegin, node,
                    static_cast<std::int64_t>(p), txn);
        rec->record(t1, Category::Phase, EventKind::SpanEnd, node,
                    static_cast<std::int64_t>(p), txn);
    }
}

} // namespace minos::obs

#endif // MINOS_OBS_PHASE_HH
