/**
 * @file
 * Chrome trace-event JSON exporter for the flight recorder.
 *
 * Renders a snapshot of the ring as a JSON object loadable in Perfetto
 * or chrome://tracing: one track (pid) per node, instant events for
 * protocol/message/lock/FIFO records, and async begin/end pairs for
 * phase spans (async, not B/E, because concurrent transactions on one
 * node overlap and would break synchronous nesting). Timestamps are
 * simulated nanoseconds converted to the format's microseconds, so the
 * timeline reads in simulated time.
 */

#ifndef MINOS_OBS_CHROME_TRACE_HH
#define MINOS_OBS_CHROME_TRACE_HH

#include <string>
#include <vector>

#include "obs/recorder.hh"

namespace minos::obs {

/** Render tick-ordered @p records as Chrome trace-event JSON. */
std::string chromeTraceJson(const std::vector<Record> &records);

/** Convenience: export the recorder's tick-ordered snapshot. */
std::string chromeTraceJson(const FlightRecorder &rec);

} // namespace minos::obs

#endif // MINOS_OBS_CHROME_TRACE_HH
