/**
 * @file
 * The metrics registry: a name -> {counter, gauge, histogram} map with
 * one JSON serializer shared by tools/minos_sim (--metrics-out) and the
 * figure benches (bench_util.hh metrics blobs).
 *
 * The registry is a *sink*, not a live instrument: subsystems publish
 * snapshots of their own counter structs at the end of a run
 * (NodeCounters::registerInto, registerEventCore, FIFO peaks, phase
 * histograms), so the hot paths keep their plain struct fields and the
 * registry costs nothing while the simulation runs. Names are stored in
 * ordered maps, so serialization order — and therefore the emitted JSON
 * byte stream — is deterministic for identical runs.
 */

#ifndef MINOS_OBS_METRICS_HH
#define MINOS_OBS_METRICS_HH

#include <cstdint>
#include <map>
#include <string>

#include "common/units.hh"
#include "stats/stats.hh"

namespace minos::obs {

/** Deterministically ordered name -> value metric sink. */
class MetricsRegistry
{
  public:
    /** Publish a monotonically-counting value (events, ops, drops). */
    void counter(const std::string &name, std::uint64_t value);

    /** Publish a point-in-time level (depth, rate, fraction). */
    void gauge(const std::string &name, double value);

    /** Publish the summary of a latency series. */
    void histogram(const std::string &name,
                   const stats::LatencySeries &series);

    bool empty() const;
    void clear();

    /**
     * Serialize as one JSON object:
     * {"counters":{...},"gauges":{...},"histograms":{name:
     *  {"count":..,"mean":..,"p50":..,"p95":..,"p99":..,
     *   "min":..,"max":..}}}.
     * Key order follows the ordered maps, so identical registries
     * serialize byte-identically.
     */
    std::string json() const;

  private:
    struct HistSummary
    {
        std::uint64_t count = 0;
        double mean = 0;
        Tick p50 = 0;
        Tick p95 = 0;
        Tick p99 = 0;
        Tick min = 0;
        Tick max = 0;
    };

    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, HistSummary> histograms_;
};

/** Publish the event-core counters under @p prefix ("sim." etc.). */
void registerEventCore(MetricsRegistry &reg, const std::string &prefix,
                       const stats::EventCoreCounters &c);

/** JSON-escape @p s (quotes, backslashes, control characters). */
std::string jsonEscape(const std::string &s);

/** Render a finite double as a JSON number (non-finite becomes 0). */
std::string jsonNumber(double v);

} // namespace minos::obs

#endif // MINOS_OBS_METRICS_HH
