#include "obs/audit.hh"

#include <sstream>

#include "check/predicates.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"

namespace minos::obs {

using simproto::PersistModel;

namespace {

constexpr std::uint64_t
nodeBit(std::int32_t node)
{
    return (node >= 0 && node < 64) ? (1ull << node) : 0;
}

bool
hasNode(std::uint64_t mask, std::int32_t node)
{
    return (mask & nodeBit(node)) != 0;
}

} // namespace

// ---------------------------------------------------------------------
// OpLedger
// ---------------------------------------------------------------------

OpLedger::Applied
OpLedger::apply(const Record &rec)
{
    Applied ap;
    switch (rec.kind) {
      case EventKind::ClientOpBegin:
        if (opType(rec.aux) != OpType::Write || rec.a1 == 0)
            return ap;
        ap.id = {rec.a0, static_cast<std::uint64_t>(rec.a1)};
        {
            auto [it, inserted] = ops_.try_emplace(ap.id);
            it->second.coordinator = rec.node;
            ap.op = &it->second;
            ap.newOp = inserted;
        }
        return ap;

      case EventKind::ClientOpEnd:
        if (rec.a1 == 0)
            return ap;
        ap.id = {rec.a0, static_cast<std::uint64_t>(rec.a1)};
        ap.op = find(ap.id);
        if (ap.op && opType(rec.aux) == OpType::Write)
            ap.op->endedObsolete = opObsolete(rec.aux);
        return ap;

      case EventKind::InvFanout:
      case EventKind::SnicBroadcastInv:
        ap.id = {rec.a0, static_cast<std::uint64_t>(rec.a1)};
        ap.op = find(ap.id);
        if (ap.op)
            ap.op->fanout = true;
        return ap;

      case EventKind::InvObsolete:
        ap.id = {rec.a0, static_cast<std::uint64_t>(rec.a1)};
        ap.op = find(ap.id);
        if (ap.op)
            ap.op->obsoleteNodes |= nodeBit(rec.node);
        return ap;

      case EventKind::PersistDone:
        ap.id = {rec.a0, static_cast<std::uint64_t>(rec.a1)};
        ap.op = find(ap.id);
        if (ap.op)
            ap.op->persistNodes |= nodeBit(rec.node);
        return ap;

      case EventKind::AckReceived: {
        if (ackFlavor(rec.aux) == AckFlavor::ScopePersist)
            return ap;
        ap.id = {rec.a0, static_cast<std::uint64_t>(rec.a1)};
        ap.op = find(ap.id);
        if (!ap.op)
            return ap;
        std::uint64_t bit = nodeBit(ackSender(rec.aux));
        switch (ackFlavor(rec.aux)) {
          case AckFlavor::Combined:
            ap.duplicateAck = (ap.op->seenAck & bit) != 0;
            ap.op->seenAck |= bit;
            ++ap.op->acks;
            break;
          case AckFlavor::Consistency:
          case AckFlavor::ScopeConsistency:
            ap.duplicateAck = (ap.op->seenAckC & bit) != 0;
            ap.op->seenAckC |= bit;
            ++ap.op->acksC;
            break;
          case AckFlavor::Persistency:
            ap.duplicateAck = (ap.op->seenAckP & bit) != 0;
            ap.op->seenAckP |= bit;
            ++ap.op->acksP;
            break;
          case AckFlavor::ScopePersist:
            break;
        }
        return ap;
      }

      case EventKind::AckSent:
        // Send-side ACK records carry no gate state (gates fire on
        // receipt); they only locate the op for the send-time rules.
        if (ackFlavor(rec.aux) == AckFlavor::ScopePersist)
            return ap;
        ap.id = {rec.a0, static_cast<std::uint64_t>(rec.a1)};
        ap.op = find(ap.id);
        return ap;

      case EventKind::InvApplied:
      case EventKind::RdLockReleased:
      case EventKind::GlbRaised:
      case EventKind::ScopeMark:
        ap.id = {rec.a0, static_cast<std::uint64_t>(rec.a1)};
        ap.op = find(ap.id);
        return ap;

      case EventKind::ValSent:
        if (static_cast<ValFlavor>(rec.aux) == ValFlavor::ValPSc)
            return ap;
        ap.id = {rec.a0, static_cast<std::uint64_t>(rec.a1)};
        ap.op = find(ap.id);
        return ap;

      case EventKind::FollowerEnqueued:
      case EventKind::VfifoSkipped:
      case EventKind::FifoDepth:
      case EventKind::SpanBegin:
      case EventKind::SpanEnd:
        return ap;
    }
    return ap;
}

OpLedger::OpState *
OpLedger::find(const OpId &id)
{
    auto it = ops_.find(id);
    return it == ops_.end() ? nullptr : &it->second;
}

const OpLedger::OpState *
OpLedger::find(const OpId &id) const
{
    auto it = ops_.find(id);
    return it == ops_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------
// Auditor base
// ---------------------------------------------------------------------

Auditor::Auditor(const char *name, const AuditConfig *cfg,
                 const OpTraceIndex *index)
    : name_(name), cfg_(cfg), index_(index)
{
}

void
Auditor::violate(const char *rule, Tick when, const OpId &id,
                 std::string detail)
{
    violateRaw(rule, when, std::move(detail),
               index_ ? index_->render(id) : std::string());
}

void
Auditor::violateRaw(const char *rule, Tick when, std::string detail,
                    std::string trace)
{
    ++violationCount_;
    if (violations_.size() < maxStoredViolations)
        violations_.push_back(AuditViolation{rule, when,
                                             std::move(detail),
                                             std::move(trace)});
}

void
Auditor::registerInto(MetricsRegistry &reg) const
{
    std::string prefix = std::string("audit.") + name_ + ".";
    reg.counter(prefix + "violations", violationCount_);
    reg.counter(prefix + "ops_audited", opsAudited_);
}

// ---------------------------------------------------------------------
// ConsistencyAuditor (Table I conds. 2b/2c)
// ---------------------------------------------------------------------

ConsistencyAuditor::ConsistencyAuditor(const AuditConfig *cfg,
                                       const OpTraceIndex *index)
    : Auditor("consistency", cfg, index)
{
}

bool
ConsistencyAuditor::gateReached(const OpLedger::OpState &st) const
{
    return check::consistencyAcksComplete(cfg().model, st.acks,
                                          st.acksC, needed());
}

void
ConsistencyAuditor::onRecord(const Record &rec)
{
    OpLedger::Applied ap = ledger_.apply(rec);
    if (ap.newOp)
        ++opsAudited_;
    if (!ap.op)
        return;
    const OpLedger::OpState &st = *ap.op;

    switch (rec.kind) {
      case EventKind::GlbRaised:
        // Cond. 2c: glb_volatileTS must not pass a write until all of
        // its consistency ACKs are in.
        if (rec.aux == 0 && !gateReached(st))
            violate("C1-glb-volatile-before-acks", rec.when, ap.id,
                    "glb_volatileTS raised at node " +
                        std::to_string(rec.node) + " with " +
                        std::to_string(st.acks + st.acksC) + "/" +
                        std::to_string(needed()) +
                        " consistency ACKs");
        break;

      case EventKind::ValSent: {
        ValFlavor f = static_cast<ValFlavor>(rec.aux);
        if ((f == ValFlavor::Val || f == ValFlavor::ValC ||
             f == ValFlavor::ValCSc) &&
            !gateReached(st))
            violate("C2-val-before-acks", rec.when, ap.id,
                    "consistency VAL sent with " +
                        std::to_string(st.acks + st.acksC) + "/" +
                        std::to_string(needed()) +
                        " consistency ACKs");
        break;
      }

      case EventKind::RdLockReleased:
        // A write's RDLock may only drop after its gate, or on a
        // replica that cut the write as obsolete.
        if (!gateReached(st) && !hasNode(st.obsoleteNodes, rec.node) &&
            !st.endedObsolete)
            violate("C3-rdlock-released-early", rec.when, ap.id,
                    "RDLock released at node " +
                        std::to_string(rec.node) +
                        " before the consistency gate (" +
                        std::to_string(st.acks + st.acksC) + "/" +
                        std::to_string(needed()) + " ACKs)");
        break;

      case EventKind::ClientOpEnd:
        // Cond. 2b flip side: a validated read may only observe writes
        // whose consistency ACKs are all in.
        if (opType(rec.aux) == OpType::Read && !gateReached(st))
            violate("C4-read-before-validation", rec.when, ap.id,
                    "read at node " + std::to_string(rec.node) +
                        " observed a write with " +
                        std::to_string(st.acks + st.acksC) + "/" +
                        std::to_string(needed()) +
                        " consistency ACKs");
        break;

      default:
        break;
    }
}

// ---------------------------------------------------------------------
// PersistencyAuditor (Table I conds. 3a/3b, per model)
// ---------------------------------------------------------------------

PersistencyAuditor::PersistencyAuditor(const AuditConfig *cfg,
                                       const OpTraceIndex *index)
    : Auditor("persistency", cfg, index)
{
}

bool
PersistencyAuditor::persistGateReached(
    const OpLedger::OpState &st) const
{
    return check::persistencyAcksComplete(cfg().model, st.acks,
                                          st.acksP, needed());
}

void
PersistencyAuditor::onRecord(const Record &rec)
{
    if (rec.kind == EventKind::ScopeMark) {
        scopeWrites_[static_cast<std::uint64_t>(rec.a0) >> 32]
            .push_back({rec.a0 & 0xffffffff,
                        static_cast<std::uint64_t>(rec.a1)});
    }
    if (rec.kind == EventKind::AckSent &&
        ackFlavor(rec.aux) == AckFlavor::ScopePersist) {
        // <Lin, Scope> cond.: a follower's [ACK_P]sc certifies that
        // everything written into the scope is durable there. Checked
        // when the ACK leaves the follower: by receipt time the scope
        // may have flushed anyway, masking a premature acknowledgment.
        std::int32_t sender = ackSender(rec.aux);
        auto it = scopeWrites_.find(
            static_cast<std::uint64_t>(rec.a0));
        if (it != scopeWrites_.end() && sender >= 0) {
            for (const OpId &id : it->second) {
                const OpLedger::OpState *st = ledger_.find(id);
                if (st && st->fanout &&
                    !hasNode(st->persistNodes | st->obsoleteNodes,
                             sender))
                    violate("P4-scope-ack-before-flush", rec.when, id,
                            "[ACK_P]sc from node " +
                                std::to_string(sender) + " for scope " +
                                std::to_string(rec.a0) +
                                " with an in-scope write not yet "
                                "durable there");
            }
        }
        return;
    }

    OpLedger::Applied ap = ledger_.apply(rec);
    if (ap.newOp)
        ++opsAudited_;
    if (!ap.op)
        return;
    const OpLedger::OpState &st = *ap.op;

    switch (rec.kind) {
      case EventKind::AckSent: {
        // Cond. 3a: an ACK carrying persistency (ACK_P, or Synch's
        // combined ACK) certifies durability at its sender, so the
        // sender must be durable (or an obsolete-cut) when the ACK
        // leaves. Receipt time is too late to check: the persist often
        // completes while the ACK is still in the network.
        AckFlavor f = ackFlavor(rec.aux);
        std::int32_t sender = ackSender(rec.aux);
        if ((f == AckFlavor::Persistency ||
             f == AckFlavor::Combined) &&
            sender >= 0 &&
            !hasNode(st.persistNodes | st.obsoleteNodes, sender))
            violate("P1-ack-before-persist", rec.when, ap.id,
                    "persistency ACK sent by node " +
                        std::to_string(sender) +
                        " before its persist completed");
        break;
      }

      case EventKind::ValSent: {
        // Cond. 3b: no persistency validation before all ACK_Ps.
        ValFlavor f = static_cast<ValFlavor>(rec.aux);
        bool certifies_persist =
            f == ValFlavor::ValP ||
            (f == ValFlavor::Val &&
             simproto::tracksPersistPerWrite(cfg().model));
        if (certifies_persist && !persistGateReached(st))
            violate("P2-val-before-persist-acks", rec.when, ap.id,
                    "persistency VAL sent with " +
                        std::to_string(st.acks + st.acksP) + "/" +
                        std::to_string(needed()) +
                        " persistency ACKs");
        break;
      }

      case EventKind::GlbRaised:
        // Cond. 3b: glb_durableTS must not pass a write until all of
        // its persistency ACKs are in. Event/Scope never raise it per
        // write, so any such raise there is a violation too.
        if (rec.aux == 1 && !persistGateReached(st))
            violate("P6-glb-durable-before-acks", rec.when, ap.id,
                    "glb_durableTS raised at node " +
                        std::to_string(rec.node) + " with " +
                        std::to_string(st.acks + st.acksP) + "/" +
                        std::to_string(needed()) +
                        " persistency ACKs");
        break;

      case EventKind::ClientOpEnd:
        // Model-specific read rule: Synch and REnf promise any
        // readable record is already durable on every replica (REnf:
        // "no read returns before the record is durable everywhere").
        if (opType(rec.aux) == OpType::Read &&
            check::readImpliesDurableEverywhere(cfg().model) &&
            !persistGateReached(st))
            violate("P3-read-before-durable", rec.when, ap.id,
                    "read at node " + std::to_string(rec.node) +
                        " observed a write with " +
                        std::to_string(st.acks + st.acksP) + "/" +
                        std::to_string(needed()) +
                        " persistency ACKs");
        break;

      default:
        break;
    }
}

void
PersistencyAuditor::finish()
{
    // Quiescence (cond. 3a at end of run): every fanned-out write must
    // be durable (or have been cut as obsolete) on every node — all
    // five models eventually persist everything they applied.
    for (const auto &[id, st] : ledger_.all()) {
        if (!st.fanout)
            continue;
        std::uint64_t covered = st.persistNodes | st.obsoleteNodes;
        std::string missing;
        for (int n = 0; n < cfg().numNodes; ++n) {
            if (hasNode(covered, n))
                continue;
            if (!missing.empty())
                missing += ',';
            missing += std::to_string(n);
        }
        if (!missing.empty())
            violate("P5-not-durable-at-quiescence", 0, id,
                    "write never became durable on node(s) " +
                        missing);
    }
}

// ---------------------------------------------------------------------
// AckConservationAuditor
// ---------------------------------------------------------------------

AckConservationAuditor::AckConservationAuditor(
    const AuditConfig *cfg, const OpTraceIndex *index)
    : Auditor("ack_conservation", cfg, index)
{
}

void
AckConservationAuditor::onRecord(const Record &rec)
{
    if (rec.kind == EventKind::AckReceived &&
        ackFlavor(rec.aux) == AckFlavor::ScopePersist) {
        std::int32_t sender = ackSender(rec.aux);
        ScopeAcks &sa = scopeAcks_[static_cast<std::uint64_t>(rec.a0)];
        if (sender >= 0) {
            if (hasNode(sa.senders, sender))
                violateRaw("A2-duplicate-scope-ack", rec.when,
                           "duplicate [ACK_P]sc from node " +
                               std::to_string(sender) + " for scope " +
                               std::to_string(rec.a0),
                           "");
            sa.senders |= nodeBit(sender);
        }
        return;
    }

    OpLedger::Applied ap = ledger_.apply(rec);
    if (ap.newOp)
        ++opsAudited_;

    if (rec.kind == EventKind::ClientOpEnd &&
        opType(rec.aux) == OpType::PersistSc) {
        ScopeAcks &sa = scopeAcks_[static_cast<std::uint64_t>(rec.a0)];
        sa.completed = true;
        sa.endedAt = rec.when;
        return;
    }

    if (rec.kind != EventKind::AckReceived)
        return;

    if (!ap.op || !ap.op->fanout) {
        violate("A1-orphan-ack", rec.when, ap.id,
                "ACK received for a write that never fanned out");
        return;
    }
    if (ap.duplicateAck)
        violate("A2-duplicate-ack", rec.when, ap.id,
                "duplicate ACK (same family and sender) from node " +
                    std::to_string(ackSender(rec.aux)));
}

void
AckConservationAuditor::finish()
{
    for (const auto &[id, st] : ledger_.all()) {
        if (!st.fanout)
            continue;
        // Exactly N-1 consistency-family ACKs (followers answer with
        // the family even when they cut the INV as obsolete).
        bool synch = cfg().model == PersistModel::Synch;
        int consistency = synch ? st.acks : st.acksC;
        if (consistency != needed())
            violate("A3-consistency-acks-unbalanced", 0, id,
                    std::to_string(consistency) + "/" +
                        std::to_string(needed()) +
                        " consistency-family ACKs at quiescence");
        if (simproto::tracksPersistPerWrite(cfg().model) && !synch &&
            st.acksP != needed())
            violate("A3-persist-acks-unbalanced", 0, id,
                    std::to_string(st.acksP) + "/" +
                        std::to_string(needed()) +
                        " ACK_Ps at quiescence");
    }
    for (const auto &[scope, sa] : scopeAcks_) {
        if (!sa.completed)
            continue;
        int got = 0;
        for (int n = 0; n < 64; ++n)
            got += hasNode(sa.senders, n) ? 1 : 0;
        if (got != needed())
            violateRaw("A4-scope-acks-unbalanced", sa.endedAt,
                       "[PERSIST]sc for scope " +
                           std::to_string(scope) + " completed with " +
                           std::to_string(got) + "/" +
                           std::to_string(needed()) + " [ACK_P]sc",
                       "");
    }
}

// ---------------------------------------------------------------------
// FifoWatchdog
// ---------------------------------------------------------------------

FifoWatchdog::FifoWatchdog(const AuditConfig *cfg,
                           const OpTraceIndex *index)
    : Auditor("fifo", cfg, index)
{
}

std::string
FifoWatchdog::renderHistory(const NodeState &st) const
{
    std::ostringstream os;
    os << "recent FIFO activity on this node:\n";
    // The history vector is a bounded ring; start at the oldest entry.
    std::size_t n = st.history.size();
    std::size_t start = (n == historyPerNode) ? st.historyNext : 0;
    for (std::size_t i = 0; i < n; ++i)
        os << "  " << renderRecord(st.history[(start + i) % n])
           << '\n';
    return os.str();
}

void
FifoWatchdog::onRecord(const Record &rec)
{
    if (rec.kind != EventKind::FifoDepth &&
        rec.kind != EventKind::VfifoSkipped)
        return;

    NodeState &st = nodes_[rec.node];
    if (st.history.size() < historyPerNode) {
        st.history.push_back(rec);
    } else {
        st.history[st.historyNext] = rec;
        st.historyNext = (st.historyNext + 1) % historyPerNode;
    }

    if (rec.kind == EventKind::VfifoSkipped) {
        // Drains walk the vFIFO in enqueue order, so skipped entry ids
        // are strictly increasing per node.
        if (rec.a0 <= st.lastSkipId)
            violateRaw("F3-skip-order", rec.when,
                       "vFIFO skipped entry " + std::to_string(rec.a0) +
                           " after entry " +
                           std::to_string(st.lastSkipId),
                       renderHistory(st));
        st.lastSkipId = rec.a0;
        return;
    }

    ++opsAudited_;
    int fifo = (rec.a0 == 0) ? 0 : 1;
    std::int64_t depth = rec.a1;
    int cap = (fifo == 0) ? cfg().vfifoCap : cfg().dfifoCap;
    const char *name = (fifo == 0) ? "vFIFO" : "dFIFO";
    // Samples are taken just after each push, so depth is at least one
    // and, with a bound configured, never beyond it.
    if (depth < 1 || (cap > 0 && depth > cap))
        violateRaw("F1-depth-out-of-bounds", rec.when,
                   std::string(name) + " depth " +
                       std::to_string(depth) + " outside [1, " +
                       (cap > 0 ? std::to_string(cap) : "inf") +
                       "] at node " + std::to_string(rec.node),
                   renderHistory(st));
    std::int64_t last = st.lastDepth[fifo];
    if (last >= 0 && depth > last + 1)
        violateRaw("F2-depth-jump", rec.when,
                   std::string(name) + " depth jumped " +
                       std::to_string(last) + " -> " +
                       std::to_string(depth) +
                       " across one push at node " +
                       std::to_string(rec.node),
                   renderHistory(st));
    st.lastDepth[fifo] = depth;
}

// ---------------------------------------------------------------------
// AuditBundle
// ---------------------------------------------------------------------

AuditBundle::AuditBundle()
    : consistency_(&cfg_, &index_), persistency_(&cfg_, &index_),
      acks_(&cfg_, &index_), fifo_(&cfg_, &index_)
{
}

void
AuditBundle::configure(const AuditConfig &cfg)
{
    cfg_ = cfg;
}

void
AuditBundle::attach(FlightRecorder &rec)
{
    if (attached_ == &rec)
        return;
    MINOS_ASSERT(!attached_,
                 "AuditBundle is already attached to a recorder");
    attached_ = &rec;
    // The index must observe each record before the auditors so a
    // violation's rendered trace includes the triggering event.
    rec.addSink(&index_);
    rec.addSink(&consistency_);
    rec.addSink(&persistency_);
    rec.addSink(&acks_);
    rec.addSink(&fifo_);
}

void
AuditBundle::detach()
{
    if (!attached_)
        return;
    attached_->removeSink(&index_);
    attached_->removeSink(&consistency_);
    attached_->removeSink(&persistency_);
    attached_->removeSink(&acks_);
    attached_->removeSink(&fifo_);
    attached_ = nullptr;
}

void
AuditBundle::finish()
{
    if (finished_)
        return;
    finished_ = true;
    consistency_.finish();
    persistency_.finish();
    acks_.finish();
    fifo_.finish();
}

std::vector<const Auditor *>
AuditBundle::auditors() const
{
    return {&consistency_, &persistency_, &acks_, &fifo_};
}

std::uint64_t
AuditBundle::violationCount() const
{
    std::uint64_t total = 0;
    for (const Auditor *a : auditors())
        total += a->violationCount();
    return total;
}

std::uint64_t
AuditBundle::opsAudited() const
{
    return consistency_.opsAudited();
}

std::string
AuditBundle::report(std::size_t maxViolations) const
{
    std::ostringstream os;
    std::size_t shown = 0;
    for (const Auditor *a : auditors()) {
        for (const AuditViolation &v : a->violations()) {
            if (shown == maxViolations) {
                os << "... ("
                   << violationCount() - static_cast<std::uint64_t>(
                                             shown)
                   << " more violations)\n";
                return os.str();
            }
            os << "[" << a->name() << "] " << v.rule << " at "
               << v.when << "ns: " << v.detail << '\n';
            if (!v.trace.empty())
                os << v.trace;
            ++shown;
        }
    }
    return os.str();
}

void
AuditBundle::registerInto(MetricsRegistry &reg) const
{
    for (const Auditor *a : auditors())
        a->registerInto(reg);
    reg.counter("audit.ops_indexed",
                static_cast<std::uint64_t>(index_.ops()));
}

} // namespace minos::obs
