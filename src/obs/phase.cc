#include "obs/phase.hh"

#include "obs/metrics.hh"

namespace minos::obs {

const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::LockWait:
        return "lock-wait";
      case Phase::InvFanout:
        return "inv-fanout";
      case Phase::Persist:
        return "persist";
      case Phase::AckGather:
        return "ack-gather";
      case Phase::Val:
        return "val";
    }
    return "?";
}

bool
WritePhaseStats::empty() const
{
    for (const auto &s : series_)
        if (!s.empty())
            return false;
    return true;
}

std::string
WritePhaseStats::table() const
{
    stats::Table t({"phase", "count", "mean us", "p50 us", "p95 us",
                    "p99 us", "max us"});
    for (int i = 0; i < numPhases; ++i) {
        const auto &s = series_[i];
        if (s.empty())
            continue;
        t.addRow({phaseName(static_cast<Phase>(i)),
                  std::to_string(s.count()),
                  stats::Table::fmt(s.mean() / 1e3),
                  stats::Table::fmt(s.p50() / 1e3),
                  stats::Table::fmt(s.percentile(95.0) / 1e3),
                  stats::Table::fmt(s.p99() / 1e3),
                  stats::Table::fmt(s.max() / 1e3)});
    }
    return t.str();
}

void
WritePhaseStats::registerInto(MetricsRegistry &reg,
                              const std::string &prefix) const
{
    for (int i = 0; i < numPhases; ++i) {
        const auto &s = series_[i];
        if (s.empty())
            continue;
        reg.histogram(prefix + "phase." +
                          phaseName(static_cast<Phase>(i)) + ".ns",
                      s);
    }
}

} // namespace minos::obs
