#include "obs/recorder.hh"

#include <algorithm>
#include <sstream>

#include "kv/timestamp.hh"
#include "obs/phase.hh"

namespace minos::obs {

const char *
categoryName(Category cat)
{
    switch (cat) {
      case Category::Protocol:
        return "protocol";
      case Category::Message:
        return "message";
      case Category::Lock:
        return "lock";
      case Category::Fifo:
        return "fifo";
      case Category::Recovery:
        return "recovery";
      case Category::Phase:
        return "phase";
    }
    return "?";
}

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::InvFanout:
        return "INV fan-out";
      case EventKind::InvApplied:
        return "INV applied";
      case EventKind::InvObsolete:
        return "INV obsolete";
      case EventKind::RdLockReleased:
        return "RDLock released";
      case EventKind::SnicBroadcastInv:
        return "SNIC broadcast INV";
      case EventKind::FollowerEnqueued:
        return "follower enqueued";
      case EventKind::VfifoSkipped:
        return "vFIFO skipped";
      case EventKind::FifoDepth:
        return "FIFO depth";
      case EventKind::SpanBegin:
        return "span begin";
      case EventKind::SpanEnd:
        return "span end";
      case EventKind::AckReceived:
        return "ACK received";
      case EventKind::AckSent:
        return "ACK sent";
      case EventKind::PersistDone:
        return "persist done";
      case EventKind::ValSent:
        return "VAL sent";
      case EventKind::ClientOpBegin:
        return "client op begin";
      case EventKind::ClientOpEnd:
        return "client op end";
      case EventKind::GlbRaised:
        return "glb raised";
      case EventKind::ScopeMark:
        return "scope mark";
    }
    return "?";
}

bool
categoryFromName(const std::string &name, Category &out)
{
    for (int i = 0; i < numCategories; ++i) {
        Category cat = static_cast<Category>(i);
        if (name == categoryName(cat)) {
            out = cat;
            return true;
        }
    }
    return false;
}

namespace {

std::string
tsArg(std::int64_t packed)
{
    std::ostringstream os;
    os << kv::Timestamp::unpack(static_cast<std::uint64_t>(packed));
    return os.str();
}

const char *
ackFlavorName(AckFlavor f)
{
    switch (f) {
      case AckFlavor::Combined:
        return "ACK";
      case AckFlavor::Consistency:
        return "ACK_C";
      case AckFlavor::Persistency:
        return "ACK_P";
      case AckFlavor::ScopeConsistency:
        return "ACK_C_SC";
      case AckFlavor::ScopePersist:
        return "ACK_P_SC";
    }
    return "?";
}

const char *
valFlavorName(ValFlavor f)
{
    switch (f) {
      case ValFlavor::Val:
        return "VAL";
      case ValFlavor::ValC:
        return "VAL_C";
      case ValFlavor::ValP:
        return "VAL_P";
      case ValFlavor::ValCSc:
        return "VAL_C_SC";
      case ValFlavor::ValPSc:
        return "VAL_P_SC";
    }
    return "?";
}

const char *
opTypeName(OpType t)
{
    switch (t) {
      case OpType::Write:
        return "write";
      case OpType::Read:
        return "read";
      case OpType::PersistSc:
        return "[PERSIST]sc";
    }
    return "?";
}

} // namespace

std::string
renderRecord(const Record &rec)
{
    std::ostringstream os;
    os << rec.when << "ns [" << categoryName(rec.category) << "] node "
       << rec.node << ": ";
    switch (rec.kind) {
      case EventKind::InvFanout:
      case EventKind::InvApplied:
      case EventKind::InvObsolete:
      case EventKind::SnicBroadcastInv:
        os << eventKindName(rec.kind) << " key=" << rec.a0
           << " ts=" << tsArg(rec.a1);
        break;
      case EventKind::RdLockReleased:
        os << "RDLock released key=" << rec.a0
           << " owner=" << tsArg(rec.a1);
        break;
      case EventKind::FollowerEnqueued:
        os << "follower enqueued key=" << rec.a0 << " entry=" << rec.a1;
        break;
      case EventKind::VfifoSkipped:
        os << "vFIFO skipped entry=" << rec.a0
           << " ts=" << tsArg(rec.a1);
        break;
      case EventKind::FifoDepth:
        os << (rec.a0 == 0 ? "vFIFO" : "dFIFO")
           << " depth=" << rec.a1;
        break;
      case EventKind::SpanBegin:
      case EventKind::SpanEnd:
        os << eventKindName(rec.kind) << " "
           << phaseName(static_cast<Phase>(rec.a0))
           << " txn=" << tsArg(rec.a1);
        break;
      case EventKind::AckReceived:
      case EventKind::AckSent:
        os << ackFlavorName(ackFlavor(rec.aux))
           << (rec.kind == EventKind::AckSent ? " sent by "
                                              : " received from ")
           << ackSender(rec.aux);
        if (ackFlavor(rec.aux) == AckFlavor::ScopePersist)
            os << " scope=" << rec.a0;
        else
            os << " key=" << rec.a0 << " ts=" << tsArg(rec.a1);
        break;
      case EventKind::PersistDone:
        os << "persist done key=" << rec.a0 << " ts=" << tsArg(rec.a1);
        break;
      case EventKind::ValSent:
        os << valFlavorName(static_cast<ValFlavor>(rec.aux))
           << " sent";
        if (static_cast<ValFlavor>(rec.aux) == ValFlavor::ValPSc)
            os << " scope=" << rec.a0;
        else
            os << " key=" << rec.a0 << " ts=" << tsArg(rec.a1);
        break;
      case EventKind::ClientOpBegin:
      case EventKind::ClientOpEnd:
        os << opTypeName(opType(rec.aux)) << " "
           << (rec.kind == EventKind::ClientOpBegin ? "begin" : "end");
        if (opType(rec.aux) == OpType::PersistSc)
            os << " scope=" << rec.a0;
        else
            os << " key=" << rec.a0;
        if (rec.a1 != 0)
            os << " ts=" << tsArg(rec.a1);
        if (opObsolete(rec.aux))
            os << " (obsolete)";
        break;
      case EventKind::GlbRaised:
        os << (rec.aux == 0 ? "glb_volatileTS" : "glb_durableTS")
           << " raised key=" << rec.a0 << " ts=" << tsArg(rec.a1);
        break;
      case EventKind::ScopeMark:
        os << "scope mark scope=" << (rec.a0 >> 32)
           << " key=" << (rec.a0 & 0xffffffff)
           << " ts=" << tsArg(rec.a1);
        break;
    }
    return os.str();
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 1))
{
    for (bool &b : enabled_)
        b = true;
}

void
FlightRecorder::setEnabled(Category cat, bool enabled)
{
    enabled_[static_cast<int>(cat)] = enabled;
}

void
FlightRecorder::addSink(RecordSink *sink)
{
    if (sink)
        sinks_.push_back(sink);
}

void
FlightRecorder::removeSink(RecordSink *sink)
{
    sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink),
                 sinks_.end());
}

std::vector<Record>
FlightRecorder::snapshot() const
{
    std::vector<Record> out;
    out.reserve(used_);
    // When the ring has wrapped, the oldest retained record sits at
    // next_; otherwise the ring starts at slot 0.
    std::size_t start = (used_ == ring_.size()) ? next_ : 0;
    for (std::size_t i = 0; i < used_; ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

std::vector<Record>
FlightRecorder::sortedSnapshot() const
{
    std::vector<Record> out = snapshot();
    std::stable_sort(out.begin(), out.end(),
                     [](const Record &a, const Record &b) {
                         return a.when < b.when;
                     });
    return out;
}

std::string
FlightRecorder::str() const
{
    std::string out;
    for (const Record &rec : sortedSnapshot()) {
        out += renderRecord(rec);
        out += '\n';
    }
    return out;
}

void
FlightRecorder::clear()
{
    next_ = 0;
    used_ = 0;
    recorded_ = 0;
}

} // namespace minos::obs
