/**
 * @file
 * Per-operation causal trace index: reconstructs the end-to-end
 * timeline of every coordinated write (client admit -> INV fan-out ->
 * per-follower apply/persist -> ACK gather -> VAL) from the flight
 * recorder's event stream.
 *
 * The index is a RecordSink, so it sees every record the engines emit
 * regardless of ring capacity or category muting — a violation found
 * near the end of a long run can still render the full history of the
 * offending operation even after the ring overwrote it.
 *
 * Operations are keyed by (key, packed TS_WR): a write timestamp alone
 * is *not* unique across keys (two keys written once by node 0 both
 * carry TS 1.0), which is also why the engines key their pending-write
 * tables by the same pair.
 */

#ifndef MINOS_OBS_OPTRACE_HH
#define MINOS_OBS_OPTRACE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/recorder.hh"

namespace minos::obs {

/** Identity of one coordinated write: (key, packed TS_WR). */
struct OpId
{
    std::int64_t key = 0;
    std::uint64_t ts = 0;

    bool
    operator==(const OpId &o) const
    {
        return key == o.key && ts == o.ts;
    }
};

struct OpIdHash
{
    std::size_t
    operator()(const OpId &id) const
    {
        // splitmix64-style finalizer over the xor of the halves.
        std::uint64_t x =
            static_cast<std::uint64_t>(id.key) * 0x9e3779b97f4a7c15ull ^
            id.ts;
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ull;
        x ^= x >> 27;
        return static_cast<std::size_t>(x);
    }
};

/**
 * RecordSink that groups protocol records by operation and renders
 * per-op timelines for AuditViolation reports.
 */
class OpTraceIndex : public RecordSink
{
  public:
    /** @param maxEventsPerOp retained records per op (rest counted). */
    explicit OpTraceIndex(std::size_t maxEventsPerOp = 48);

    void onRecord(const Record &rec) override;

    /** Number of distinct operations seen. */
    std::size_t ops() const { return ops_.size(); }

    /** True when at least one record was indexed under @p id. */
    bool knows(const OpId &id) const { return ops_.count(id) > 0; }

    /**
     * Render the causal timeline of @p id, one line per record in
     * arrival order. Empty string for an unknown op.
     */
    std::string render(const OpId &id) const;

  private:
    struct OpTrace
    {
        std::vector<Record> events;
        std::uint64_t total = 0; ///< including events beyond the cap
    };

    std::size_t maxEventsPerOp_;
    std::unordered_map<OpId, OpTrace, OpIdHash> ops_;
};

} // namespace minos::obs

#endif // MINOS_OBS_OPTRACE_HH
