/**
 * @file
 * The MINOS-O SmartNIC hardware queues (paper §V-B.4, Fig. 5(b)).
 *
 * - vFIFO (volatile FIFO, in SNIC DRAM): replaces the WRLock. Updates are
 *   enqueued atomically; a hardware drain engine dequeues entries in
 *   order, skips obsolete ones, and DMAs fresh ones into the host LLC
 *   (updating volatileTS). A write cannot release the RDLock until its
 *   entry has drained.
 * - dFIFO (durable FIFO, in SNIC NVM): an update is durable the moment it
 *   is enqueued; the drain engine pushes entries to the host NVM log in
 *   the background, off the critical path.
 *
 * Both queues are bounded (Table III: 5 entries each; Fig. 13 sweeps the
 * size); enqueues block while the queue is full.
 */

#ifndef MINOS_SNIC_FIFO_HH
#define MINOS_SNIC_FIFO_HH

#include <cstdint>
#include <deque>

#include "kv/store.hh"
#include "nvm/log.hh"
#include "nvm/model.hh"
#include "sim/condition.hh"
#include "sim/network.hh"
#include "simproto/config.hh"

namespace minos::snic {

/** Sentinel for "no FIFO entry". */
inline constexpr std::uint64_t noEntry = ~0ull;

/**
 * The volatile FIFO: serializes updates to the host LLC and filters
 * obsolete ones, eliminating the WRLock.
 */
class VFifo
{
  public:
    /**
     * @param store the node's LLC-resident record store
     * @param pcie_to_host the SNIC->host PCIe link the DMA engine shares
     * @param progress node-wide progress condition (notified on LLC
     *        updates so coherent-field spins wake up)
     */
    VFifo(sim::Simulator &sim, const simproto::ClusterConfig &cfg,
          kv::SimStore &store, sim::Link &pcie_to_host,
          sim::Condition &progress, kv::NodeId node = -1);

    /**
     * Atomically enqueue one update. Suspends while the FIFO is full;
     * pays the Table III vFIFO write latency. Returns the entry id.
     */
    sim::Task<std::uint64_t> enqueue(kv::Key key, kv::Value value,
                                     kv::Timestamp ts);

    /** Suspend until entry @p id has drained (applied or skipped). */
    sim::Task<void> waitDrained(std::uint64_t id);

    bool
    isDrained(std::uint64_t id) const
    {
        return id == noEntry || id < drainedThrough_;
    }

    /** Entries skipped at drain because they were obsolete. */
    std::uint64_t skippedObsolete() const { return skipped_; }

    std::size_t occupancy() const { return queue_.size(); }

    /** Deepest the queue has ever been (explains Fig. 13). */
    std::size_t peakOccupancy() const { return peak_; }

  private:
    struct Entry
    {
        std::uint64_t id;
        kv::Key key;
        kv::Value value;
        kv::Timestamp ts;
    };

    sim::Process drainLoop();

    sim::Simulator &sim_;
    const simproto::ClusterConfig &cfg_;
    kv::SimStore &store_;
    sim::Link &pcieToHost_;
    sim::Condition &progress_;
    sim::Condition slots_;
    std::deque<Entry> queue_;
    std::size_t reserved_ = 0; ///< slots claimed, write still in flight
    std::uint64_t nextId_ = 0;
    std::uint64_t drainedThrough_ = 0; ///< ids < this are drained
    std::uint64_t skipped_ = 0;
    std::size_t peak_ = 0;
    kv::NodeId node_;
};

/**
 * The durable FIFO: an enqueued update is durable (SNIC NVM). The drain
 * engine pushes entries to the host NVM log in the background.
 */
class DFifo
{
  public:
    DFifo(sim::Simulator &sim, const simproto::ClusterConfig &cfg,
          nvm::DurableLog &log, sim::Link &pcie_to_host,
          sim::Condition &progress, kv::NodeId node = -1);

    /**
     * Atomically enqueue (and thereby persist) one update of
     * @p size_bytes. Suspends while the FIFO is full. The entry is
     * appended to the durable log here — this is the durability point.
     */
    sim::Task<std::uint64_t> enqueue(kv::Key key, kv::Value value,
                                     kv::Timestamp ts,
                                     std::uint32_t size_bytes);

    /**
     * Persist a protocol marker (e.g. the [PERSIST]sc record) without
     * adding a data entry to the durable log.
     */
    sim::Task<std::uint64_t> enqueueMarker(std::uint32_t size_bytes);

    bool
    isDrained(std::uint64_t id) const
    {
        return id == noEntry || id < drainedThrough_;
    }

    std::size_t occupancy() const { return queue_.size(); }

    /** Deepest the queue has ever been (explains Fig. 13). */
    std::size_t peakOccupancy() const { return peak_; }

  private:
    struct Entry
    {
        std::uint64_t id;
        std::uint32_t bytes;
    };

    sim::Process drainLoop();

    sim::Simulator &sim_;
    const simproto::ClusterConfig &cfg_;
    nvm::DurableLog &log_;
    nvm::NvmModel hostNvm_;
    sim::Link &pcieToHost_;
    sim::Condition &progress_;
    sim::Condition slots_;
    std::deque<Entry> queue_;
    std::size_t reserved_ = 0; ///< slots claimed, write still in flight
    std::uint64_t nextId_ = 0;
    std::uint64_t drainedThrough_ = 0;
    std::size_t peak_ = 0;
    kv::NodeId node_;
};

} // namespace minos::snic

#endif // MINOS_SNIC_FIFO_HH
