/**
 * @file
 * The simulated MINOS-O cluster: NodeO hosts+SmartNICs joined by the
 * Table III fabric. Unlike MINOS-B, protocol messages travel
 * SNIC-to-SNIC without crossing the remote PCIe: only the coordinator's
 * host touches PCIe (batched INV down, batched ACK up), which is the
 * heart of the offload win.
 *
 * The fabric honors the Fig. 12 ablation toggles:
 *  - batching: host->SNIC INV and SNIC->host ACK each become a single
 *    PCIe message instead of one per follower;
 *  - broadcast: the SNIC deposits an INV/VAL once and a hardware FSM
 *    fans it out (one wire serialization); without it, each copy pays
 *    the deposit cost, the inter-message gap, and its own serialization
 *    — and a batched INV must additionally be unpacked per destination
 *    (the reason Combined+batching is *slower* than Combined alone).
 */

#ifndef MINOS_SNIC_CLUSTER_O_HH
#define MINOS_SNIC_CLUSTER_O_HH

#include <memory>
#include <vector>

#include "sim/network.hh"
#include "snic/node_o.hh"

namespace minos::snic {

/** MINOS-O cluster (paper §V) on the simulated machine. */
class ClusterO : public simproto::DdpCluster
{
  public:
    ClusterO(sim::Simulator &sim, const ClusterConfig &cfg,
             PersistModel model,
             OffloadOptions opts = OffloadOptions::minosO());

    sim::Task<OpStats> clientWrite(kv::NodeId node, kv::Key key,
                                   kv::Value value,
                                   net::ScopeId scope) override;
    sim::Task<OpStats> clientRead(kv::NodeId node, kv::Key key) override;
    sim::Task<OpStats> persistScope(kv::NodeId node,
                                    net::ScopeId scope) override;

    int numNodes() const override { return cfg_.numNodes; }
    PersistModel model() const override { return model_; }

    NodeO &node(kv::NodeId id);
    const ClusterConfig &config() const { return cfg_; }
    const OffloadOptions &options() const { return opts_; }

    /** Host -> local SNIC: send the INV(s) for one write over PCIe. */
    void hostSendInv(kv::NodeId src, net::Message tmpl);

    /** Host -> local SNIC: send a control message (e.g. [PERSIST]sc). */
    void hostSendControl(kv::NodeId src, net::Message msg);

    /** SNIC -> SNIC point-to-point (ACK family). */
    void snicUnicast(net::Message msg);

    /**
     * SNIC -> all other SNICs (INV/VAL family).
     * @param from_batched the message arrived batched from the host and
     *        must be unpacked per destination unless broadcast hardware
     *        consumes it directly.
     */
    void snicMulticast(kv::NodeId src, net::Message tmpl,
                       bool from_batched);

    /** SNIC -> local host over PCIe; @p deliver runs at arrival. */
    void snicNotifyHost(kv::NodeId src, std::uint32_t bytes,
                        sim::EventFn deliver);

    /** The SNIC->host DMA queues used by the FIFO drain engines. */
    sim::Link &vfifoDma(kv::NodeId id);
    sim::Link &dfifoDma(kv::NodeId id);

  private:
    struct Fabric
    {
        Fabric(sim::Simulator &sim, const ClusterConfig &cfg)
            : pcieDown(sim, cfg.pcieLatencyNs, cfg.pcieBwBytesPerSec,
                       cfg.pcieMsgOverheadNs),
              pcieUp(sim, cfg.pcieLatencyNs, cfg.pcieBwBytesPerSec,
                     cfg.pcieMsgOverheadNs),
              // The drain engines stream descriptors in bursts; the
              // per-transfer overhead is far below the doorbell cost of
              // host-posted messages.
              pcieDmaV(sim, cfg.pcieLatencyNs, cfg.pcieBwBytesPerSec,
                       /*per_msg_overhead=*/30),
              pcieDmaD(sim, cfg.pcieLatencyNs, cfg.pcieBwBytesPerSec,
                       /*per_msg_overhead=*/30),
              netOut(sim, cfg.netLatencyNs, cfg.netBwBytesPerSec)
        {
        }

        sim::Link pcieDown; ///< host -> SNIC
        sim::Link pcieUp;   ///< SNIC -> host messages
        sim::Link pcieDmaV; ///< vFIFO drain DMA queue
        sim::Link pcieDmaD; ///< dFIFO drain DMA queue
        sim::Link netOut;   ///< SNIC egress port
        sim::SerialStage snicTx; ///< SNIC send engine
    };

    Tick depositCost(net::MsgType type) const;

    sim::Simulator &sim_;
    ClusterConfig cfg_;
    PersistModel model_;
    OffloadOptions opts_;
    std::vector<std::unique_ptr<Fabric>> fabric_;
    std::vector<std::unique_ptr<NodeO>> nodes_;
};

} // namespace minos::snic

#endif // MINOS_SNIC_CLUSTER_O_HH
