#include "fifo.hh"

#include <algorithm>

#include "obs/phase.hh"

namespace minos::snic {

using kv::Key;
using kv::Timestamp;
using kv::Value;

namespace {

/** Scale a per-1KB FIFO write latency to the record size. */
Tick
scaledFifoLatency(Tick ns_per_kb, std::uint32_t bytes)
{
    if (bytes == 0)
        return 0;
    Tick t = static_cast<Tick>(static_cast<double>(ns_per_kb) *
                               static_cast<double>(bytes) / 1024.0);
    return t > 0 ? t : 1;
}

} // namespace

// ---------------------------------------------------------------------
// VFifo
// ---------------------------------------------------------------------

VFifo::VFifo(sim::Simulator &sim, const simproto::ClusterConfig &cfg,
             kv::SimStore &store, sim::Link &pcie_to_host,
             sim::Condition &progress, kv::NodeId node)
    : sim_(sim), cfg_(cfg), store_(store), pcieToHost_(pcie_to_host),
      progress_(progress), slots_(sim), node_(node)
{
    sim_.spawn(drainLoop());
}

sim::Task<std::uint64_t>
VFifo::enqueue(Key key, Value value, Timestamp ts)
{
    const std::size_t cap =
        cfg_.vfifoEntries > 0
            ? static_cast<std::size_t>(cfg_.vfifoEntries)
            : ~std::size_t{0};
    // The ignoreFifoCap test mutation drops the back-pressure wait so
    // the FIFO watchdog can prove it notices over-capacity depths.
    if (!cfg_.mutations.ignoreFifoCap) {
        // Claim the slot before the doorbell write suspends: the entry
        // must have a home by the time the write lands, or concurrent
        // enqueuers would push the occupancy past the hardware cap.
        while (queue_.size() + reserved_ >= cap)
            co_await slots_.wait();
        ++reserved_;
    }
    co_await sim::delay(
        scaledFifoLatency(cfg_.vfifoWriteNs, cfg_.recordBytes));
    if (!cfg_.mutations.ignoreFifoCap)
        --reserved_;
    std::uint64_t id = nextId_++;
    queue_.push_back(Entry{id, key, value, ts});
    peak_ = std::max(peak_, queue_.size());
    if (cfg_.trace)
        cfg_.trace->record(sim_.now(), obs::Category::Fifo,
                           obs::EventKind::FifoDepth, node_, /*a0=*/0,
                           static_cast<std::int64_t>(queue_.size()));
    slots_.notifyAll(); // wakes the drain loop
    co_return id;
}

sim::Task<void>
VFifo::waitDrained(std::uint64_t id)
{
    while (!isDrained(id))
        co_await progress_.wait();
}

sim::Process
VFifo::drainLoop()
{
    // The drain engine is pipelined: it issues the next DMA as soon as
    // the previous one has been accepted by the PCIe channel (the
    // channel's serialization paces it); the LLC update lands at DMA
    // arrival. Arrivals on one link are monotonic, so entries still
    // apply in FIFO order.
    for (;;) {
        while (queue_.empty())
            co_await slots_.wait();
        Entry e = queue_.front();
        queue_.pop_front();
        slots_.notifyAll(); // the slot frees when the engine claims it

        // The hardware checks obsoleteness before updating the LLC
        // (§V-B.4): stale entries are skipped without a DMA.
        kv::Record &rec = store_.at(e.key);
        if (!(rec.volatileTs > e.ts)) {
            Tick arrival = pcieToHost_.transfer(cfg_.recordBytes);
            VFifo *self = this;
            sim_.schedule(arrival, [self, e] {
                kv::Record &r = self->store_.at(e.key);
                // Re-check at apply time: a newer entry cannot have
                // overtaken us (in-order arrivals), but the issue-time
                // check is the architectural one; keep both.
                if (!(r.volatileTs > e.ts)) {
                    r.value = e.value;
                    r.volatileTs = e.ts;
                } else {
                    ++self->skipped_;
                }
                self->drainedThrough_ =
                    std::max(self->drainedThrough_, e.id + 1);
                self->progress_.notifyAll();
            });
            // Pace the engine by the channel's serialization, not the
            // end-to-end completion.
            Tick busy = pcieToHost_.busyUntil();
            if (busy > sim_.now())
                co_await sim::delay(busy - sim_.now());
        } else {
            ++skipped_;
            if (cfg_.trace)
                cfg_.trace->record(
                    sim_.now(), obs::Category::Fifo,
                    obs::EventKind::VfifoSkipped, node_,
                    static_cast<std::int64_t>(e.id),
                    static_cast<std::int64_t>(e.ts.pack()));
            drainedThrough_ = std::max(drainedThrough_, e.id + 1);
            progress_.notifyAll();
        }
    }
}

// ---------------------------------------------------------------------
// DFifo
// ---------------------------------------------------------------------

DFifo::DFifo(sim::Simulator &sim, const simproto::ClusterConfig &cfg,
             nvm::DurableLog &log, sim::Link &pcie_to_host,
             sim::Condition &progress, kv::NodeId node)
    : sim_(sim), cfg_(cfg), log_(log), hostNvm_(cfg.persistNsPerKb),
      pcieToHost_(pcie_to_host), progress_(progress), slots_(sim),
      node_(node)
{
    sim_.spawn(drainLoop());
}

sim::Task<std::uint64_t>
DFifo::enqueue(Key key, Value value, Timestamp ts,
               std::uint32_t size_bytes)
{
    // The MINOS-O persist phase is the durable enqueue; instrumenting
    // it here covers the coordinator, follower, and background paths.
    Tick t0 = sim_.now();
    std::uint64_t id = co_await enqueueMarker(size_bytes);
    // Durability point: the update now lives in the SNIC's NVM.
    log_.append({key, value, ts});
    if (cfg_.trace)
        cfg_.trace->record(sim_.now(), obs::Category::Protocol,
                           obs::EventKind::PersistDone, node_,
                           static_cast<std::int64_t>(key),
                           static_cast<std::int64_t>(ts.pack()));
    obs::recordSpan(cfg_.trace, cfg_.phases, obs::Phase::Persist, t0,
                    sim_.now(), node_,
                    static_cast<std::int64_t>(ts.pack()));
    progress_.notifyAll();
    co_return id;
}

sim::Task<std::uint64_t>
DFifo::enqueueMarker(std::uint32_t size_bytes)
{
    const std::size_t cap =
        cfg_.dfifoEntries > 0
            ? static_cast<std::size_t>(cfg_.dfifoEntries)
            : ~std::size_t{0};
    // Slot reservation mirrors the vFIFO: claim before the write
    // latency so concurrent enqueuers cannot overshoot the cap.
    while (queue_.size() + reserved_ >= cap)
        co_await slots_.wait();
    ++reserved_;
    co_await sim::delay(
        scaledFifoLatency(cfg_.dfifoWriteNs, size_bytes));
    --reserved_;
    std::uint64_t id = nextId_++;
    queue_.push_back(Entry{id, size_bytes});
    peak_ = std::max(peak_, queue_.size());
    if (cfg_.trace)
        cfg_.trace->record(sim_.now(), obs::Category::Fifo,
                           obs::EventKind::FifoDepth, node_, /*a0=*/1,
                           static_cast<std::int64_t>(queue_.size()));
    slots_.notifyAll();
    progress_.notifyAll();
    co_return id;
}

sim::Process
DFifo::drainLoop()
{
    // Pipelined like the vFIFO engine: push the already-durable entry
    // to the host NVM log in the background, paced by the DMA channel's
    // serialization (the host NVM's per-entry persist latency is not an
    // inverse throughput; writes stream into the log).
    for (;;) {
        while (queue_.empty())
            co_await slots_.wait();
        Entry e = queue_.front();
        queue_.pop_front();
        slots_.notifyAll();

        Tick arrival = pcieToHost_.transfer(e.bytes);
        DFifo *self = this;
        sim_.schedule(arrival, [self, e] {
            self->drainedThrough_ =
                std::max(self->drainedThrough_, e.id + 1);
            self->progress_.notifyAll();
        });
        Tick busy = pcieToHost_.busyUntil();
        if (busy > sim_.now())
            co_await sim::delay(busy - sim_.now());
    }
}

} // namespace minos::snic
