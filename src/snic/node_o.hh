/**
 * @file
 * MINOS-Offload node: the DDP protocols re-designed for the MINOS-O
 * SmartNIC (paper §V, Figs. 6-8).
 *
 * Division of labor per client-write (Fig. 8, <Lin, Synch>):
 *  - Host: process the request, generate TS_WR, obsoleteness check,
 *    Snatch RDLock, send a (batched) INV to the SNIC, spin for the
 *    (batched) ACK -> return to client.
 *  - Coordinator SNIC: broadcast INV to all followers, enqueue the
 *    update to vFIFO and dFIFO, collect ACKs, send the batched ACK to
 *    the host, wait for the vFIFO drain, release the RDLock, send VALs.
 *  - Follower SNIC: obsoleteness check, Snatch RDLock, enqueue to
 *    vFIFO/dFIFO, ACK; on VAL wait for the drain and release the RDLock.
 *    The follower host is never invoked.
 *
 * The WRLock is gone: the vFIFO serializes LLC updates and skips
 * obsolete ones. RDLock_Owner, volatileTS, glb_volatileTS and
 * glb_durableTS live in the selective-coherence range shared by host and
 * SNIC; accesses pay the coherence-module cost instead of a PCIe round
 * trip.
 */

#ifndef MINOS_SNIC_NODE_O_HH
#define MINOS_SNIC_NODE_O_HH

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "kv/store.hh"
#include "net/message.hh"
#include "nvm/log.hh"
#include "obs/recorder.hh"
#include "sim/condition.hh"
#include "sim/network.hh"
#include "simproto/cluster.hh"
#include "simproto/counters.hh"
#include "snic/fifo.hh"

namespace minos::snic {

class ClusterO;

using simproto::ClusterConfig;
using simproto::OffloadOptions;
using simproto::OpStats;
using simproto::PersistModel;

/** One MINOS-O node: host engine + SmartNIC engine. */
class NodeO
{
  public:
    NodeO(sim::Simulator &sim, ClusterO &cluster,
          const ClusterConfig &cfg, PersistModel model, kv::NodeId id);

    NodeO(const NodeO &) = delete;
    NodeO &operator=(const NodeO &) = delete;

    kv::NodeId id() const { return id_; }

    /** Host-side client-write (Fig. 8 left, host part). */
    sim::Task<OpStats> clientWrite(kv::Key key, kv::Value value,
                                   net::ScopeId scope);

    /** Host-side local read: stalls only on the (coherent) RDLock. */
    sim::Task<OpStats> clientRead(kv::Key key);

    /** Host side of the [PERSIST]sc transaction (Fig. 7(e)). */
    sim::Task<OpStats> persistScope(net::ScopeId scope);

    /** Deliver a network message into this node's SmartNIC. */
    void deliverToSnic(net::Message msg);

    /** @{ Introspection for tests. */
    const kv::Record &record(kv::Key key) const { return store_.at(key); }
    const nvm::DurableLog &log() const { return log_; }
    std::size_t pendingTxns() const { return pending_.size(); }
    std::uint64_t obsoleteInvs() const { return obsoleteInvs_; }
    const VFifo &vfifo() const { return vfifo_; }
    const DFifo &dfifo() const { return dfifo_; }
    /** Protocol activity counters. */
    const simproto::NodeCounters &counters() const { return counters_; }
    /** @} */

    /** Durable database obtained by replaying this node's NVM log. */
    nvm::DurableDb durableDb() const;

  private:
    /**
     * Per-transaction bookkeeping, shared by host and SNIC engines.
     * Held via shared_ptr because host worker, SNIC handlers, and
     * completion tails overlap in time and the map entry may be retired
     * while a suspended holder still needs the object.
     */
    struct PendingTxn
    {
        int needed = 0;
        int acks = 0;
        int acksC = 0;
        int acksP = 0;
        // Host-side mirror counters, bumped when a forwarded ACK
        // arrives over PCIe (no-batching mode).
        int hostAcks = 0;
        int hostAcksC = 0;
        int hostAcksP = 0;
        bool hostDone = false;   ///< client gate reached at the host
        bool invProcessed = false; ///< SNIC already did the enqueues
        std::uint64_t vfifoId = noEntry;
        bool vfifoAssigned = false;
        std::uint64_t dfifoId = noEntry;
        bool dfifoEnqueued = false;
        bool releasedByValC = false; ///< follower: VAL_C processed
        bool gateFired = false; ///< client gate already handled
        Tick tFirstSend = 0;
        Tick tGateAck = 0;
        Tick handleNsSum = 0;
        int handleCnt = 0;
    };

    using TxnPtr = std::shared_ptr<PendingTxn>;

    using TxnKey = std::pair<kv::Key, std::uint64_t>;

    struct TxnKeyHash
    {
        std::size_t
        operator()(const TxnKey &k) const noexcept
        {
            return std::hash<std::uint64_t>()(k.first * 0x9E3779B9u) ^
                   std::hash<std::uint64_t>()(k.second);
        }
    };

    static TxnKey
    txnKey(kv::Key key, const kv::Timestamp &ts)
    {
        return {key, ts.pack()};
    }

    // ---- shared protocol primitives ----
    bool obsolete(const kv::Record &rec, const kv::Timestamp &ts) const;
    void snatchRdLock(kv::Record &rec, const kv::Timestamp &ts);
    void releaseRdLockIfOwner(kv::Record &rec, kv::Key key,
                              const kv::Timestamp &ts);
    void raiseGlbVolatile(kv::Record &rec, kv::Key key,
                          const kv::Timestamp &ts);
    void raiseGlbDurable(kv::Record &rec, kv::Key key,
                         const kv::Timestamp &ts);
    kv::Timestamp makeWriteTs(kv::Key key, kv::Record &rec);

    /** Lay one flight-recorder event at the current simulated time. */
    void
    traceEvent(obs::Category cat, obs::EventKind kind, std::int64_t a0,
               std::int64_t a1, std::uint16_t aux = 0) const
    {
        if (cfg_.trace)
            cfg_.trace->record(sim_.now(), cat, kind, id_, a0, a1,
                               aux);
    }

    /** The persistency-gate threshold (mutable by the
     *  dropOnePersistAck test mutation). */
    int
    persistNeeded(const PendingTxn &txn) const
    {
        return cfg_.mutations.dropOnePersistAck ? txn.needed - 1
                                                : txn.needed;
    }

    /** Spin helper: ConsistencySpin (+ PersistencySpin per model). */
    sim::Task<void> handleObsolete(kv::Key key, kv::Timestamp observed);

    // ---- SNIC engine ----
    sim::Process snicDispatcher();
    sim::Process snicHandle(net::Message msg);
    sim::Task<void> snicOnCoordinatorInv(net::Message msg);
    sim::Task<void> snicOnFollowerInv(net::Message msg,
                                      Tick t_handle0);
    sim::Task<void> snicOnAck(net::Message msg);
    sim::Task<void> snicOnVal(net::Message msg);
    sim::Task<void> snicOnPersistSc(net::Message msg,
                                    Tick t_handle0);

    /** Coordinator SNIC: post-gate completion work per model. */
    sim::Process snicCompleteSynchLike(kv::Key key, kv::Timestamp ts,
                                       net::ScopeId scope, TxnPtr txn);
    /** Strict coordinator: VAL_C after drain, then VAL_P after gate. */
    sim::Process snicStrictTail(kv::Key key, kv::Timestamp ts,
                                TxnPtr txn);

    /** Enqueue update into vFIFO (+ dFIFO per model) for txn. */
    sim::Task<void> snicEnqueueUpdate(net::Message msg, TxnPtr txn);

    /**
     * Fire the client-gate actions (notify host, raise glb fields,
     * spawn the completion tail) exactly once, as soon as the per-model
     * gate condition holds. Called after every ACK and after the local
     * dFIFO enqueue (which participates in the Strict gate).
     */
    void maybeFireClientGate(kv::Key key, kv::Timestamp ts,
                             net::ScopeId scope, const TxnPtr &txn);

    /** Notify the host that the client gate is reached (PCIe). */
    void notifyHostGate(TxnPtr txn);

    /** Forward one ACK to the host over PCIe (no-batching mode). */
    void forwardAckToHost(const net::Message &msg, TxnPtr txn);

    /** Background dFIFO enqueue for weak models (Event/Scope). */
    void dfifoInBackground(kv::Key key, kv::Value value,
                           kv::Timestamp ts, net::ScopeId scope,
                           std::uint32_t bytes);

    /** Message-type helpers (scoped variants for <Lin, Scope>). */
    net::MsgType invType() const;
    net::MsgType ackCType() const;
    net::MsgType valCType() const;

    /** True when this txn's client gate is satisfied SNIC-side. */
    bool snicGateReached(const PendingTxn &txn) const;

    friend class ClusterO;

    sim::Simulator &sim_;
    ClusterO &cluster_;
    const ClusterConfig &cfg_;
    PersistModel model_;
    kv::NodeId id_;

    kv::SimStore store_;
    nvm::DurableLog log_;

    sim::CorePool hostCores_;
    sim::CorePool snicCores_;
    sim::Mailbox<net::Message> snicRx_;
    sim::Condition progress_;

    VFifo vfifo_;
    DFifo dfifo_;

    std::unordered_map<TxnKey, TxnPtr, TxnKeyHash> pending_;
    std::unordered_map<net::ScopeId, PendingTxn> scopePending_;
    std::unordered_map<net::ScopeId, int> scopeUnpersisted_;
    std::unordered_map<kv::Key, std::int64_t> nextLocalVersion_;
    std::uint64_t obsoleteInvs_ = 0;
    simproto::NodeCounters counters_;
};

} // namespace minos::snic

#endif // MINOS_SNIC_NODE_O_HH
