#include "cluster_o.hh"

#include "obs/audit.hh"

namespace minos::snic {

using kv::NodeId;
using net::Message;
using net::MsgType;

ClusterO::ClusterO(sim::Simulator &sim, const ClusterConfig &cfg,
                   PersistModel model, OffloadOptions opts)
    : sim_(sim), cfg_(cfg), model_(model), opts_(opts)
{
    MINOS_ASSERT(cfg_.numNodes >= 2, "a cluster needs >= 2 nodes");
    MINOS_ASSERT(cfg_.numNodes <= 64, "destMask limits nodes to 64");
    MINOS_ASSERT(opts_.offload,
                 "ClusterO is the offloaded engine; 'Combined' is its "
                 "minimum configuration (offload=true)");
    if (cfg_.audit) {
        MINOS_ASSERT(cfg_.trace,
                     "auditors ride the flight recorder's sink bus; "
                     "set ClusterConfig::trace too");
        cfg_.audit->configure({cfg_.numNodes, model_,
                               cfg_.vfifoEntries, cfg_.dfifoEntries});
        cfg_.audit->attach(*cfg_.trace);
    }
    fabric_.reserve(static_cast<std::size_t>(cfg_.numNodes));
    nodes_.reserve(static_cast<std::size_t>(cfg_.numNodes));
    for (int i = 0; i < cfg_.numNodes; ++i)
        fabric_.push_back(std::make_unique<Fabric>(sim_, cfg_));
    // Nodes reference pcieToHost() during construction, so the fabric
    // must be complete first.
    for (int i = 0; i < cfg_.numNodes; ++i)
        nodes_.push_back(std::make_unique<NodeO>(
            sim_, *this, cfg_, model_, static_cast<NodeId>(i)));
}

NodeO &
ClusterO::node(NodeId id)
{
    MINOS_ASSERT(id >= 0 && id < cfg_.numNodes, "bad node id ", id);
    return *nodes_[static_cast<std::size_t>(id)];
}

sim::Link &
ClusterO::vfifoDma(NodeId id)
{
    MINOS_ASSERT(id >= 0 && id < cfg_.numNodes, "bad node id ", id);
    return fabric_[static_cast<std::size_t>(id)]->pcieDmaV;
}

sim::Link &
ClusterO::dfifoDma(NodeId id)
{
    MINOS_ASSERT(id >= 0 && id < cfg_.numNodes, "bad node id ", id);
    return fabric_[static_cast<std::size_t>(id)]->pcieDmaD;
}

sim::Task<OpStats>
ClusterO::clientWrite(NodeId node_id, kv::Key key, kv::Value value,
                      net::ScopeId scope)
{
    return node(node_id).clientWrite(key, value, scope);
}

sim::Task<OpStats>
ClusterO::clientRead(NodeId node_id, kv::Key key)
{
    return node(node_id).clientRead(key);
}

sim::Task<OpStats>
ClusterO::persistScope(NodeId node_id, net::ScopeId scope)
{
    return node(node_id).persistScope(scope);
}

Tick
ClusterO::depositCost(MsgType type) const
{
    return net::carriesData(type) ? cfg_.sendInvNs : cfg_.sendAckNs;
}

void
ClusterO::hostSendInv(NodeId src, Message tmpl)
{
    auto &fab = *fabric_[static_cast<std::size_t>(src)];
    NodeO *snic = nodes_[static_cast<std::size_t>(src)].get();
    int dests = cfg_.followers();

    if (opts_.batching) {
        // One PCIe crossing carries the payload once plus a destination
        // map (8B per follower).
        std::uint64_t bytes =
            tmpl.sizeBytes + 8u * static_cast<unsigned>(dests);
        Message m = tmpl;
        m.destMask = (std::uint64_t{1} << cfg_.numNodes) - 1;
        m.destMask &= ~(std::uint64_t{1} << src);
        Tick arrival = fab.pcieDown.transferFrom(sim_.now(), bytes);
        sim_.schedule(arrival, [snic, m] { snic->deliverToSnic(m); });
        return;
    }

    // No batching: the host posts one INV per follower; each crosses
    // PCIe individually. The SNIC does the protocol work on the first
    // one of the transaction and forwards each as it arrives.
    for (int d = 0; d < cfg_.numNodes; ++d) {
        if (d == src)
            continue;
        Message m = tmpl;
        m.destMask = std::uint64_t{1} << d;
        Tick arrival = fab.pcieDown.transferFrom(sim_.now(),
                                                 m.sizeBytes);
        sim_.schedule(arrival, [snic, m] { snic->deliverToSnic(m); });
    }
}

void
ClusterO::hostSendControl(NodeId src, Message msg)
{
    auto &fab = *fabric_[static_cast<std::size_t>(src)];
    NodeO *snic = nodes_[static_cast<std::size_t>(src)].get();
    Tick arrival = fab.pcieDown.transferFrom(sim_.now(), msg.sizeBytes);
    sim_.schedule(arrival, [snic, msg] { snic->deliverToSnic(msg); });
}

void
ClusterO::snicUnicast(Message msg)
{
    MINOS_ASSERT(msg.src != msg.dst, "SNIC unicast to self");
    auto &fab = *fabric_[static_cast<std::size_t>(msg.src)];
    // Table III's inter-message gap applies to fan-outs of the same
    // message (no broadcast support), not to independent unicasts.
    Tick deposited = fab.snicTx.occupyFrom(sim_.now(),
                                           depositCost(msg.type));
    Tick arrival = fab.netOut.transferFrom(deposited, msg.sizeBytes);
    NodeO *dst = nodes_[static_cast<std::size_t>(msg.dst)].get();
    sim_.schedule(arrival, [dst, msg] { dst->deliverToSnic(msg); });
}

void
ClusterO::snicMulticast(NodeId src, Message tmpl, bool from_batched)
{
    auto &fab = *fabric_[static_cast<std::size_t>(src)];

    if (opts_.broadcast) {
        // Broadcast hardware (§V-B.3): deposit once, fill the
        // Destination Map register, one wire serialization; a batched
        // message is consumed directly, no unpacking.
        Tick deposited = fab.snicTx.occupyFrom(sim_.now(),
                                               depositCost(tmpl.type));
        Tick arrival = fab.netOut.transferFrom(deposited,
                                               tmpl.sizeBytes);
        for (int d = 0; d < cfg_.numNodes; ++d) {
            if (d == src)
                continue;
            Message m = tmpl;
            m.dst = static_cast<NodeId>(d);
            m.destMask = 0;
            NodeO *dst = nodes_[static_cast<std::size_t>(d)].get();
            sim_.schedule(arrival, [dst, m] { dst->deliverToSnic(m); });
        }
        return;
    }

    // No broadcast: each copy is deposited individually (with the
    // inter-message gap) and serialized on the wire; a batched message
    // additionally pays the per-destination unpack (§VIII-D).
    Tick ready = sim_.now();
    for (int d = 0; d < cfg_.numNodes; ++d) {
        if (d == src)
            continue;
        Message m = tmpl;
        m.dst = static_cast<NodeId>(d);
        m.destMask = 0;
        Tick service = depositCost(m.type) + cfg_.interMsgGapNs;
        if (from_batched)
            service += cfg_.snicUnpackPerDestNs;
        Tick deposited = fab.snicTx.occupyFrom(ready, service);
        Tick arrival = fab.netOut.transferFrom(deposited, m.sizeBytes);
        NodeO *dst = nodes_[static_cast<std::size_t>(d)].get();
        sim_.schedule(arrival, [dst, m] { dst->deliverToSnic(m); });
    }
}

void
ClusterO::snicNotifyHost(NodeId src, std::uint32_t bytes,
                         sim::EventFn deliver)
{
    auto &fab = *fabric_[static_cast<std::size_t>(src)];
    Tick arrival = fab.pcieUp.transferFrom(sim_.now(), bytes);
    sim_.schedule(arrival, std::move(deliver));
}

} // namespace minos::snic
