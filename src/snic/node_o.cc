#include "node_o.hh"

#include "snic/cluster_o.hh"

#include "simproto/trace_map.hh"

#include "obs/phase.hh"

namespace minos::snic {

using kv::Key;
using kv::NodeId;
using kv::Record;
using kv::Timestamp;
using kv::Value;
using net::Message;
using net::MsgType;
using net::ScopeId;
using simproto::isScopeModel;
using simproto::needsPersistencySpin;
using simproto::persistOnCriticalPath;
using simproto::tracksPersistPerWrite;
using simproto::usesSplitAcks;

NodeO::NodeO(sim::Simulator &sim, ClusterO &cluster,
             const ClusterConfig &cfg, PersistModel model, NodeId id)
    : sim_(sim), cluster_(cluster), cfg_(cfg), model_(model), id_(id),
      store_(cfg.numRecords), hostCores_(sim, cfg.hostCores),
      snicCores_(sim, cfg.snicCores), snicRx_(sim), progress_(sim),
      vfifo_(sim, cfg, store_, cluster.vfifoDma(id), progress_, id),
      dfifo_(sim, cfg, log_, cluster.dfifoDma(id), progress_, id)
{
    sim_.spawn(snicDispatcher());
}

// ---------------------------------------------------------------------
// Shared primitives
// ---------------------------------------------------------------------

bool
NodeO::obsolete(const Record &rec, const Timestamp &ts) const
{
    return kv::isObsolete(rec, ts);
}

void
NodeO::snatchRdLock(Record &rec, const Timestamp &ts)
{
    if (rec.rdLockOwner < ts) {
        rec.rdLockOwner = ts;
        ++counters_.rdLockSnatches;
    }
}

void
NodeO::releaseRdLockIfOwner(Record &rec, Key key, const Timestamp &ts)
{
    if (rec.rdLockOwner == ts) {
        rec.rdLockOwner = Timestamp::none();
        traceEvent(obs::Category::Lock, obs::EventKind::RdLockReleased,
                   static_cast<std::int64_t>(key),
                   static_cast<std::int64_t>(ts.pack()));
        progress_.notifyAll();
    }
}

void
NodeO::raiseGlbVolatile(Record &rec, Key key, const Timestamp &ts)
{
    if (rec.glbVolatileTs < ts) {
        rec.glbVolatileTs = ts;
        traceEvent(obs::Category::Protocol, obs::EventKind::GlbRaised,
                   static_cast<std::int64_t>(key),
                   static_cast<std::int64_t>(ts.pack()), 0);
        progress_.notifyAll();
    }
}

void
NodeO::raiseGlbDurable(Record &rec, Key key, const Timestamp &ts)
{
    if (rec.glbDurableTs < ts) {
        rec.glbDurableTs = ts;
        traceEvent(obs::Category::Protocol, obs::EventKind::GlbRaised,
                   static_cast<std::int64_t>(key),
                   static_cast<std::int64_t>(ts.pack()), 1);
        progress_.notifyAll();
    }
}

Timestamp
NodeO::makeWriteTs(Key key, Record &rec)
{
    auto &next = nextLocalVersion_[key];
    std::int64_t ver = std::max(rec.volatileTs.version + 1, next);
    next = ver + 1;
    return Timestamp{ver, id_};
}

sim::Task<void>
NodeO::handleObsolete(Key key, Timestamp observed)
{
    Record &rec = store_.at(key);
    while (rec.glbVolatileTs < observed)
        co_await progress_.wait();
    if (needsPersistencySpin(model_)) {
        while (rec.glbDurableTs < observed)
            co_await progress_.wait();
    }
}

MsgType
NodeO::invType() const
{
    return isScopeModel(model_) ? MsgType::INV_SC : MsgType::INV;
}

MsgType
NodeO::ackCType() const
{
    if (model_ == PersistModel::Synch)
        return MsgType::ACK;
    return isScopeModel(model_) ? MsgType::ACK_C_SC : MsgType::ACK_C;
}

MsgType
NodeO::valCType() const
{
    switch (model_) {
      case PersistModel::Synch:
      case PersistModel::REnf:
        return MsgType::VAL;
      case PersistModel::Strict:
      case PersistModel::Event:
        return MsgType::VAL_C;
      case PersistModel::Scope:
        return MsgType::VAL_C_SC;
    }
    return MsgType::VAL;
}

bool
NodeO::snicGateReached(const PendingTxn &txn) const
{
    switch (model_) {
      case PersistModel::Synch:
        return txn.acks >= txn.needed;
      case PersistModel::Strict:
        return txn.acksC >= txn.needed &&
               txn.acksP >= persistNeeded(txn) && txn.dfifoEnqueued;
      case PersistModel::REnf:
      case PersistModel::Event:
      case PersistModel::Scope:
        return txn.acksC >= txn.needed;
    }
    return false;
}

// ---------------------------------------------------------------------
// Host engine
// ---------------------------------------------------------------------

sim::Task<OpStats>
NodeO::clientWrite(Key key, Value value, ScopeId scope)
{
    OpStats st;
    Tick t0 = sim_.now();
    ++counters_.writesCoordinated;
    co_await hostCores_.compute(cfg_.clientReqNs);

    Record &rec = store_.at(key);
    Timestamp ts = makeWriteTs(key, rec);
    traceEvent(obs::Category::Protocol, obs::EventKind::ClientOpBegin,
               static_cast<std::int64_t>(key),
               static_cast<std::int64_t>(ts.pack()),
               obs::opAux(obs::OpType::Write, false));

    if (obsolete(rec, ts)) {
        ++counters_.writesObsoleteCut;
        Timestamp observed = rec.volatileTs;
        co_await handleObsolete(key, observed);
        st.obsolete = true;
        st.latencyNs = sim_.now() - t0;
        st.compNs = static_cast<double>(st.latencyNs);
        traceEvent(obs::Category::Protocol, obs::EventKind::ClientOpEnd,
                   static_cast<std::int64_t>(key),
                   static_cast<std::int64_t>(ts.pack()),
                   obs::opAux(obs::OpType::Write, true));
        co_return st;
    }

    // Snatch RDLock on the coherent metadata (Fig. 8 line 8).
    Tick t_lock0 = sim_.now();
    co_await hostCores_.compute(cfg_.hostSyncNs + cfg_.coherenceNs);
    snatchRdLock(rec, ts);
    Tick t_lock1 = sim_.now();

    // Fig. 8 line 9: re-check (no WRLock in MINOS-O).
    if (obsolete(rec, ts)) {
        st.obsolete = true;
        ++counters_.writesObsoleteCut;
        Timestamp observed = rec.volatileTs;
        co_await handleObsolete(key, observed);
        releaseRdLockIfOwner(rec, key, ts);
        st.latencyNs = sim_.now() - t0;
        st.compNs = static_cast<double>(st.latencyNs);
        traceEvent(obs::Category::Protocol, obs::EventKind::ClientOpEnd,
                   static_cast<std::int64_t>(key),
                   static_cast<std::int64_t>(ts.pack()),
                   obs::opAux(obs::OpType::Write, true));
        co_return st;
    }

    // Register the transaction, then send the (batched) INV.
    auto txn = std::make_shared<PendingTxn>();
    txn->needed = cfg_.followers();
    auto [it, inserted] = pending_.emplace(txnKey(key, ts), txn);
    MINOS_ASSERT(inserted, "duplicate TS_WR ", ts, " key ", key);

    const bool batching = cluster_.options().batching;
    co_await hostCores_.compute(
        batching ? cfg_.hostSendNs
                 : cfg_.hostSendNs * cfg_.followers());
    txn->tFirstSend = sim_.now();

    Message m;
    m.type = invType();
    m.src = id_;
    m.key = key;
    m.tsWr = ts;
    m.value = value;
    m.scope = scope;
    m.sizeBytes = cfg_.recordBytes + net::controlMsgBytes;
    cluster_.hostSendInv(id_, m);
    traceEvent(obs::Category::Message, obs::EventKind::InvFanout,
               static_cast<std::int64_t>(key),
               static_cast<std::int64_t>(ts.pack()));
    if (isScopeModel(model_))
        traceEvent(obs::Category::Protocol, obs::EventKind::ScopeMark,
                   (static_cast<std::int64_t>(scope) << 32) |
                       static_cast<std::int64_t>(key),
                   static_cast<std::int64_t>(ts.pack()));
    if (cfg_.mutations.releaseRdLockEarly)
        releaseRdLockIfOwner(rec, key, ts);

    // Fig. 8 lines 13-14: spin for the (batched) ACK. Without batching
    // the host counts the individually-forwarded ACKs itself.
    auto host_gate = [&]() -> bool {
        if (batching)
            return txn->hostDone;
        switch (model_) {
          case PersistModel::Synch:
            return txn->hostAcks >= txn->needed;
          case PersistModel::Strict:
            return txn->hostAcksC >= txn->needed &&
                   txn->hostAcksP >= persistNeeded(*txn) &&
                   txn->dfifoEnqueued;
          default:
            return txn->hostAcksC >= txn->needed;
        }
    };
    while (!host_gate())
        co_await progress_.wait();
    txn->tGateAck = sim_.now();
    co_await hostCores_.compute(cfg_.bookkeepNs);

    // Host-side phase spans; every timestamp was taken at an await
    // point the protocol already had, so recording never moves
    // simulated time.
    if (cfg_.trace || cfg_.phases) {
        auto token = static_cast<std::int64_t>(ts.pack());
        obs::recordSpan(cfg_.trace, cfg_.phases, obs::Phase::LockWait,
                        t_lock0, t_lock1, id_, token);
        obs::recordSpan(cfg_.trace, cfg_.phases, obs::Phase::InvFanout,
                        t_lock1, txn->tFirstSend, id_, token);
        obs::recordSpan(cfg_.trace, cfg_.phases, obs::Phase::AckGather,
                        txn->tFirstSend, txn->tGateAck, id_, token);
        obs::recordSpan(cfg_.trace, cfg_.phases, obs::Phase::Val,
                        txn->tGateAck, sim_.now(), id_, token);
    }

    st.latencyNs = sim_.now() - t0;
    if (txn->handleCnt > 0 && txn->tGateAck > txn->tFirstSend) {
        double handle_avg =
            static_cast<double>(txn->handleNsSum) / txn->handleCnt;
        double comm =
            static_cast<double>(txn->tGateAck - txn->tFirstSend) -
            handle_avg;
        comm = std::max(0.0, comm);
        comm = std::min(comm, static_cast<double>(st.latencyNs));
        st.commNs = comm;
    }
    st.compNs = static_cast<double>(st.latencyNs) - st.commNs;
    traceEvent(obs::Category::Protocol, obs::EventKind::ClientOpEnd,
               static_cast<std::int64_t>(key),
               static_cast<std::int64_t>(ts.pack()),
               obs::opAux(obs::OpType::Write, false));
    co_return st;
}

sim::Task<OpStats>
NodeO::clientRead(Key key)
{
    OpStats st;
    Tick t0 = sim_.now();
    traceEvent(obs::Category::Protocol, obs::EventKind::ClientOpBegin,
               static_cast<std::int64_t>(key), 0,
               obs::opAux(obs::OpType::Read, false));
    co_await hostCores_.compute(cfg_.clientReqNs);
    Record &rec = store_.at(key);
    while (!rec.rdLockFree())
        co_await progress_.wait();
    co_await hostCores_.compute(cfg_.llcReadNs);
    st.value = rec.value;
    // The end record carries the observed write's TS so the auditors
    // can tie the read into that write's causal timeline.
    traceEvent(obs::Category::Protocol, obs::EventKind::ClientOpEnd,
               static_cast<std::int64_t>(key),
               static_cast<std::int64_t>(rec.volatileTs.pack()),
               obs::opAux(obs::OpType::Read, false));
    st.latencyNs = sim_.now() - t0;
    st.compNs = static_cast<double>(st.latencyNs);
    co_return st;
}

sim::Task<OpStats>
NodeO::persistScope(ScopeId scope)
{
    OpStats st;
    Tick t0 = sim_.now();
    if (!isScopeModel(model_))
        co_return st;

    traceEvent(obs::Category::Protocol, obs::EventKind::ClientOpBegin,
               static_cast<std::int64_t>(scope), 0,
               obs::opAux(obs::OpType::PersistSc, false));
    co_await hostCores_.compute(cfg_.clientReqNs);
    auto [it, inserted] = scopePending_.emplace(scope, PendingTxn{});
    MINOS_ASSERT(inserted, "duplicate [PERSIST]sc for scope ", scope);
    PendingTxn &txn = it->second;
    txn.needed = cfg_.followers();

    co_await hostCores_.compute(cfg_.hostSendNs);
    Message m;
    m.type = MsgType::PERSIST_SC;
    m.src = id_;
    m.scope = scope;
    m.sizeBytes = net::controlMsgBytes;
    m.destMask = 1; // marks "from host" for the local SNIC
    cluster_.hostSendControl(id_, m);

    while (!txn.hostDone)
        co_await progress_.wait();
    co_await hostCores_.compute(cfg_.bookkeepNs);
    scopePending_.erase(scope);

    traceEvent(obs::Category::Protocol, obs::EventKind::ClientOpEnd,
               static_cast<std::int64_t>(scope), 0,
               obs::opAux(obs::OpType::PersistSc, false));
    st.latencyNs = sim_.now() - t0;
    st.compNs = static_cast<double>(st.latencyNs);
    co_return st;
}

// ---------------------------------------------------------------------
// SNIC engine: dispatch
// ---------------------------------------------------------------------

void
NodeO::deliverToSnic(Message msg)
{
    snicRx_.send(std::move(msg));
}

sim::Process
NodeO::snicDispatcher()
{
    for (;;) {
        Message m = co_await snicRx_.recv();
        sim_.spawn(snicHandle(std::move(m)));
    }
}

sim::Process
NodeO::snicHandle(Message msg)
{
    // Handling time starts at SNIC receive-queue deposit.
    Tick t_rx = sim_.now();
    co_await snicCores_.compute(cfg_.snicDispatchNs);
    switch (msg.type) {
      case MsgType::INV:
      case MsgType::INV_SC:
        if (msg.destMask != 0) {
            counters_.invsSent +=
                static_cast<std::uint64_t>(cfg_.followers());
            co_await snicOnCoordinatorInv(msg);
        } else {
            ++counters_.invsReceived;
            co_await snicOnFollowerInv(msg, t_rx);
        }
        break;
      case MsgType::ACK:
      case MsgType::ACK_C:
      case MsgType::ACK_P:
      case MsgType::ACK_C_SC:
      case MsgType::ACK_P_SC:
        ++counters_.acksReceived;
        co_await snicOnAck(msg);
        break;
      case MsgType::VAL:
      case MsgType::VAL_C:
      case MsgType::VAL_P:
      case MsgType::VAL_C_SC:
      case MsgType::VAL_P_SC:
        ++counters_.valsReceived;
        co_await snicOnVal(msg);
        break;
      case MsgType::PERSIST_SC:
        co_await snicOnPersistSc(msg, t_rx);
        break;
    }
}

// ---------------------------------------------------------------------
// SNIC engine: coordinator side
// ---------------------------------------------------------------------

sim::Task<void>
NodeO::snicEnqueueUpdate(Message msg, TxnPtr txn)
{
    // Fig. 8 line 17: enqueue to vFIFO and dFIFO. The dFIFO enqueue is
    // in the handler's path when persistency gates the protocol
    // (Synch/Strict/REnf); the weak models defer it to the background.
    txn->vfifoId = co_await vfifo_.enqueue(msg.key, msg.value,
                                           msg.tsWr);
    txn->vfifoAssigned = true;
    progress_.notifyAll();
    if (tracksPersistPerWrite(model_)) {
        txn->dfifoId = co_await dfifo_.enqueue(msg.key, msg.value,
                                               msg.tsWr,
                                               cfg_.recordBytes);
        ++counters_.persists;
        txn->dfifoEnqueued = true;
        progress_.notifyAll();
    } else {
        dfifoInBackground(msg.key, msg.value, msg.tsWr, msg.scope,
                          cfg_.recordBytes);
        txn->dfifoEnqueued = true; // durability tracked via scope map
    }
    // The Strict client gate includes the local durable enqueue; the
    // last ACK may already have arrived.
    maybeFireClientGate(msg.key, msg.tsWr, msg.scope, txn);
}

sim::Task<void>
NodeO::snicOnCoordinatorInv(Message msg)
{
    auto it = pending_.find(txnKey(msg.key, msg.tsWr));
    MINOS_ASSERT(it != pending_.end(),
                 "coordinator INV without a registered transaction");
    TxnPtr txn = it->second;

    if (cluster_.options().batching) {
        // Fig. 8 lines 15-17: broadcast, then enqueue.
        if (cfg_.trace)
            cfg_.trace->record(sim_.now(), obs::Category::Message,
                               obs::EventKind::SnicBroadcastInv, id_,
                               static_cast<std::int64_t>(msg.key),
                               static_cast<std::int64_t>(
                                   msg.tsWr.pack()));
        Message out = msg;
        out.destMask = 0;
        cluster_.snicMulticast(id_, out, /*from_batched=*/true);
        co_await snicEnqueueUpdate(msg, txn);
    } else {
        // One INV per follower arrives over PCIe; forward each, do the
        // protocol work (enqueues) once, on the first.
        int dst = 0;
        std::uint64_t mask = msg.destMask;
        while (!(mask & 1)) {
            mask >>= 1;
            ++dst;
        }
        Message out = msg;
        out.dst = static_cast<NodeId>(dst);
        out.destMask = 0;
        cluster_.snicUnicast(out);
        if (!txn->invProcessed) {
            txn->invProcessed = true;
            co_await snicEnqueueUpdate(msg, txn);
        }
    }
}

sim::Task<void>
NodeO::snicOnAck(Message msg)
{
    co_await snicCores_.compute(cfg_.bookkeepNs);
    // Recorded before the pending-table lookups so stray ACKs (for
    // already-retired transactions) are still visible to the auditors.
    if (msg.type == MsgType::ACK_P_SC)
        traceEvent(obs::Category::Protocol, obs::EventKind::AckReceived,
                   static_cast<std::int64_t>(msg.scope), 0,
                   obs::ackAux(simproto::ackFlavorOf(msg.type),
                               msg.src));
    else
        traceEvent(obs::Category::Protocol, obs::EventKind::AckReceived,
                   static_cast<std::int64_t>(msg.key),
                   static_cast<std::int64_t>(msg.tsWr.pack()),
                   obs::ackAux(simproto::ackFlavorOf(msg.type),
                               msg.src));
    if (msg.type == MsgType::ACK_P_SC) {
        auto its = scopePending_.find(msg.scope);
        if (its == scopePending_.end())
            co_return;
        PendingTxn &txn = its->second;
        ++txn.acksP;
        if (txn.acksP >= txn.needed) {
            // Gate: notify the host (client return) and terminate the
            // [PERSIST]sc with [VAL_P]sc.
            ScopeId scope = msg.scope;
            NodeO *self = this;
            cluster_.snicNotifyHost(
                id_, net::controlMsgBytes, [self, scope] {
                    auto it2 = self->scopePending_.find(scope);
                    if (it2 != self->scopePending_.end()) {
                        it2->second.hostDone = true;
                        self->progress_.notifyAll();
                    }
                });
            traceEvent(obs::Category::Protocol,
                       obs::EventKind::ValSent,
                       static_cast<std::int64_t>(scope), 0,
                       static_cast<std::uint16_t>(
                           obs::ValFlavor::ValPSc));
            Message val;
            val.type = MsgType::VAL_P_SC;
            val.src = id_;
            val.scope = scope;
            val.sizeBytes = net::controlMsgBytes;
            cluster_.snicMulticast(id_, val, /*from_batched=*/false);
        }
        progress_.notifyAll();
        co_return;
    }

    auto it = pending_.find(txnKey(msg.key, msg.tsWr));
    if (it == pending_.end())
        co_return; // stray ACK
    TxnPtr txn = it->second;

    switch (msg.type) {
      case MsgType::ACK: ++txn->acks; break;
      case MsgType::ACK_C:
      case MsgType::ACK_C_SC: ++txn->acksC; break;
      case MsgType::ACK_P: ++txn->acksP; break;
      default:
        MINOS_PANIC("unexpected ACK type ", net::msgTypeName(msg.type));
    }
    txn->handleNsSum += msg.handleNs;
    ++txn->handleCnt;

    if (!cluster_.options().batching)
        forwardAckToHost(msg, txn); // Fig. 6: pass every ACK to host

    // Strict: the consistency gate spawns the VAL_C -> VAL_P tail.
    if (model_ == PersistModel::Strict &&
        msg.type == MsgType::ACK_C && txn->acksC == txn->needed) {
        Record &rec = store_.at(msg.key);
        raiseGlbVolatile(rec, msg.key, msg.tsWr);
        sim_.spawn(snicStrictTail(msg.key, msg.tsWr, txn));
    }

    maybeFireClientGate(msg.key, msg.tsWr, msg.scope, txn);

    // REnf persistency tail: all ACK_Ps + local durable -> VALs+unlock.
    if (model_ == PersistModel::REnf && msg.type == MsgType::ACK_P &&
        txn->acksP == persistNeeded(*txn)) {
        Record &rec = store_.at(msg.key);
        raiseGlbDurable(rec, msg.key, msg.tsWr);
        sim_.spawn(snicCompleteSynchLike(msg.key, msg.tsWr, msg.scope,
                                         txn));
    }

    progress_.notifyAll();
}

void
NodeO::maybeFireClientGate(Key key, Timestamp ts, ScopeId scope,
                           const TxnPtr &txn)
{
    if (txn->gateFired || !snicGateReached(*txn))
        return;
    txn->gateFired = true;
    if (cluster_.options().batching)
        notifyHostGate(txn);
    Record &rec = store_.at(key);
    switch (model_) {
      case PersistModel::Synch:
        raiseGlbVolatile(rec, key, ts);
        raiseGlbDurable(rec, key, ts);
        sim_.spawn(snicCompleteSynchLike(key, ts, scope, txn));
        break;
      case PersistModel::Strict:
        raiseGlbDurable(rec, key, ts);
        // VAL_C/VAL_P sequencing handled by snicStrictTail.
        break;
      case PersistModel::REnf:
        raiseGlbVolatile(rec, key, ts);
        // VALs + unlock wait for all ACK_Ps (REnf tail in snicOnAck).
        break;
      case PersistModel::Event:
      case PersistModel::Scope:
        raiseGlbVolatile(rec, key, ts);
        sim_.spawn(snicCompleteSynchLike(key, ts, scope, txn));
        break;
    }
    progress_.notifyAll();
}

sim::Process
NodeO::snicCompleteSynchLike(Key key, Timestamp ts, ScopeId scope,
                             TxnPtr txn)
{
    // Fig. 8 lines 21-24: wait for the vFIFO drain, release the RDLock
    // if still owner, broadcast the VALs, retire the transaction.
    while (!txn->vfifoAssigned)
        co_await progress_.wait();
    co_await vfifo_.waitDrained(txn->vfifoId);

    Record &rec = store_.at(key);
    co_await snicCores_.compute(cfg_.snicSyncNs + cfg_.coherenceNs);
    releaseRdLockIfOwner(rec, key, ts);

    traceEvent(obs::Category::Protocol, obs::EventKind::ValSent,
               static_cast<std::int64_t>(key),
               static_cast<std::int64_t>(ts.pack()),
               static_cast<std::uint16_t>(
                   simproto::valFlavorOf(valCType())));
    Message val;
    val.type = valCType();
    val.src = id_;
    val.key = key;
    val.tsWr = ts;
    val.scope = scope;
    val.sizeBytes = net::controlMsgBytes;
    counters_.valsSent += static_cast<std::uint64_t>(cfg_.followers());
    cluster_.snicMulticast(id_, val, /*from_batched=*/false);
    pending_.erase(txnKey(key, ts));
    progress_.notifyAll();
}

sim::Process
NodeO::snicStrictTail(Key key, Timestamp ts, TxnPtr txn)
{
    // Strict: VAL_C after the local drain, VAL_P strictly after VAL_C
    // once the persistency gate is reached (Fig. 3(i) ordering).
    while (!txn->vfifoAssigned)
        co_await progress_.wait();
    co_await vfifo_.waitDrained(txn->vfifoId);

    Record &rec = store_.at(key);
    co_await snicCores_.compute(cfg_.snicSyncNs + cfg_.coherenceNs);
    releaseRdLockIfOwner(rec, key, ts);

    traceEvent(obs::Category::Protocol, obs::EventKind::ValSent,
               static_cast<std::int64_t>(key),
               static_cast<std::int64_t>(ts.pack()),
               static_cast<std::uint16_t>(obs::ValFlavor::ValC));
    Message val;
    val.type = MsgType::VAL_C;
    val.src = id_;
    val.key = key;
    val.tsWr = ts;
    val.sizeBytes = net::controlMsgBytes;
    counters_.valsSent += static_cast<std::uint64_t>(cfg_.followers());
    cluster_.snicMulticast(id_, val, /*from_batched=*/false);

    while (!(txn->acksP >= persistNeeded(*txn) && txn->dfifoEnqueued))
        co_await progress_.wait();
    raiseGlbDurable(rec, key, ts);
    traceEvent(obs::Category::Protocol, obs::EventKind::ValSent,
               static_cast<std::int64_t>(key),
               static_cast<std::int64_t>(ts.pack()),
               static_cast<std::uint16_t>(obs::ValFlavor::ValP));
    Message valp = val;
    valp.type = MsgType::VAL_P;
    counters_.valsSent += static_cast<std::uint64_t>(cfg_.followers());
    cluster_.snicMulticast(id_, valp, /*from_batched=*/false);
    pending_.erase(txnKey(key, ts));
    progress_.notifyAll();
}

void
NodeO::notifyHostGate(TxnPtr txn)
{
    NodeO *self = this;
    cluster_.snicNotifyHost(id_, net::controlMsgBytes,
                            [self, txn = std::move(txn)] {
                                txn->hostDone = true;
                                self->progress_.notifyAll();
                            });
}

void
NodeO::forwardAckToHost(const Message &msg, TxnPtr txn)
{
    NodeO *self = this;
    MsgType type = msg.type;
    cluster_.snicNotifyHost(
        id_, net::controlMsgBytes, [self, txn, type] {
            struct HostBookkeep
            {
                static sim::Process
                run(NodeO *self, TxnPtr txn, MsgType type)
                {
                    co_await self->hostCores_.compute(
                        self->cfg_.bookkeepNs);
                    switch (type) {
                      case MsgType::ACK: ++txn->hostAcks; break;
                      case MsgType::ACK_C:
                      case MsgType::ACK_C_SC: ++txn->hostAcksC; break;
                      case MsgType::ACK_P: ++txn->hostAcksP; break;
                      default: break;
                    }
                    self->progress_.notifyAll();
                }
            };
            self->sim_.spawn(
                HostBookkeep::run(self, std::move(txn), type));
        });
}

// ---------------------------------------------------------------------
// SNIC engine: follower side
// ---------------------------------------------------------------------

sim::Task<void>
NodeO::snicOnFollowerInv(Message msg, Tick t_handle0)
{
    Record &rec = store_.at(msg.key);

    auto send_ack = [&](MsgType type, Tick handle) {
        traceEvent(obs::Category::Protocol, obs::EventKind::AckSent,
                   static_cast<std::int64_t>(msg.key),
                   static_cast<std::int64_t>(msg.tsWr.pack()),
                   obs::ackAux(simproto::ackFlavorOf(type), id_));
        Message resp = net::makeResponse(msg, type);
        resp.handleNs = handle;
        ++counters_.acksSent;
        cluster_.snicUnicast(resp);
    };

    auto obsolete_acks = [&](Timestamp observed) -> sim::Task<void> {
        if (usesSplitAcks(model_)) {
            while (rec.glbVolatileTs < observed)
                co_await progress_.wait();
            send_ack(ackCType(), sim_.now() - t_handle0);
            if (tracksPersistPerWrite(model_)) {
                while (rec.glbDurableTs < observed)
                    co_await progress_.wait();
                send_ack(MsgType::ACK_P, sim_.now() - t_handle0);
            }
        } else {
            co_await handleObsolete(msg.key, observed);
            send_ack(MsgType::ACK, sim_.now() - t_handle0);
        }
    };

    if (obsolete(rec, msg.tsWr)) {
        ++obsoleteInvs_;
        ++counters_.invsObsolete;
        traceEvent(obs::Category::Protocol, obs::EventKind::InvObsolete,
                   static_cast<std::int64_t>(msg.key),
                   static_cast<std::int64_t>(msg.tsWr.pack()));
        co_await obsolete_acks(rec.volatileTs);
        co_return;
    }

    // Snatch the RDLock on the coherent metadata (Fig. 8 line 33).
    co_await snicCores_.compute(cfg_.snicSyncNs + cfg_.coherenceNs);
    snatchRdLock(rec, msg.tsWr);

    if (obsolete(rec, msg.tsWr)) {
        ++obsoleteInvs_;
        ++counters_.invsObsolete;
        traceEvent(obs::Category::Protocol, obs::EventKind::InvObsolete,
                   static_cast<std::int64_t>(msg.key),
                   static_cast<std::int64_t>(msg.tsWr.pack()));
        Timestamp observed = rec.volatileTs;
        co_await obsolete_acks(observed);
        releaseRdLockIfOwner(rec, msg.key, msg.tsWr);
        co_return;
    }

    // Track the follower-side transaction so the VAL can find the
    // vFIFO entry to wait on.
    auto txn = std::make_shared<PendingTxn>();
    auto [it, inserted] = pending_.emplace(txnKey(msg.key, msg.tsWr),
                                           txn);
    if (!inserted)
        co_return; // duplicate INV: cannot happen with this fabric

    // Fig. 8 lines 34-35 + Fig. 7 per-model ACK points.
    txn->vfifoId = co_await vfifo_.enqueue(msg.key, msg.value,
                                           msg.tsWr);
    txn->vfifoAssigned = true;
    if (cfg_.trace)
        cfg_.trace->record(sim_.now(), obs::Category::Fifo,
                           obs::EventKind::FollowerEnqueued, id_,
                           static_cast<std::int64_t>(msg.key),
                           static_cast<std::int64_t>(txn->vfifoId));
    progress_.notifyAll();
    switch (model_) {
      case PersistModel::Synch:
        if (cfg_.mutations.ackBeforePersist) {
            // Mutation: acknowledge durability before it exists.
            send_ack(MsgType::ACK, sim_.now() - t_handle0);
            txn->dfifoId = co_await dfifo_.enqueue(msg.key, msg.value,
                                                   msg.tsWr,
                                                   cfg_.recordBytes);
        } else {
            txn->dfifoId = co_await dfifo_.enqueue(msg.key, msg.value,
                                                   msg.tsWr,
                                                   cfg_.recordBytes);
            send_ack(MsgType::ACK, sim_.now() - t_handle0);
        }
        ++counters_.persists;
        if (cfg_.mutations.duplicateAck)
            send_ack(MsgType::ACK, sim_.now() - t_handle0);
        break;
      case PersistModel::Strict:
      case PersistModel::REnf:
        send_ack(MsgType::ACK_C, sim_.now() - t_handle0);
        if (cfg_.mutations.duplicateAck)
            send_ack(MsgType::ACK_C, sim_.now() - t_handle0);
        if (cfg_.mutations.ackBeforePersist) {
            send_ack(MsgType::ACK_P, sim_.now() - t_handle0);
            txn->dfifoId = co_await dfifo_.enqueue(msg.key, msg.value,
                                                   msg.tsWr,
                                                   cfg_.recordBytes);
        } else {
            txn->dfifoId = co_await dfifo_.enqueue(msg.key, msg.value,
                                                   msg.tsWr,
                                                   cfg_.recordBytes);
            send_ack(MsgType::ACK_P, sim_.now() - t_handle0);
        }
        ++counters_.persists;
        break;
      case PersistModel::Event:
      case PersistModel::Scope:
        send_ack(ackCType(), sim_.now() - t_handle0);
        if (cfg_.mutations.duplicateAck)
            send_ack(ackCType(), sim_.now() - t_handle0);
        dfifoInBackground(msg.key, msg.value, msg.tsWr, msg.scope,
                          cfg_.recordBytes);
        break;
    }
}

sim::Task<void>
NodeO::snicOnVal(Message msg)
{
    co_await snicCores_.compute(cfg_.bookkeepNs);
    Record &rec = store_.at(msg.key);

    auto it = pending_.find(txnKey(msg.key, msg.tsWr));
    TxnPtr txn = (it != pending_.end()) ? it->second : nullptr;

    switch (msg.type) {
      case MsgType::VAL:
        raiseGlbVolatile(rec, msg.key, msg.tsWr);
        raiseGlbDurable(rec, msg.key, msg.tsWr);
        break;
      case MsgType::VAL_C:
      case MsgType::VAL_C_SC:
        raiseGlbVolatile(rec, msg.key, msg.tsWr);
        break;
      case MsgType::VAL_P:
        raiseGlbDurable(rec, msg.key, msg.tsWr);
        // Wait for the VAL_C side to finish before retiring (VAL_C is
        // sent first but its handler may still be draining).
        if (txn) {
            while (!txn->releasedByValC)
                co_await progress_.wait();
            pending_.erase(txnKey(msg.key, msg.tsWr));
            progress_.notifyAll();
        }
        co_return;
      case MsgType::VAL_P_SC:
        co_return; // terminates the [PERSIST]sc at the follower
      default:
        MINOS_PANIC("unexpected VAL type ", net::msgTypeName(msg.type));
    }

    if (!txn)
        co_return; // VAL for an INV we cut short as obsolete: discarded

    // Fig. 8 lines 39-42: wait for the drain, then release the RDLock.
    while (!txn->vfifoAssigned)
        co_await progress_.wait();
    co_await vfifo_.waitDrained(txn->vfifoId);
    co_await snicCores_.compute(cfg_.snicSyncNs + cfg_.coherenceNs);
    releaseRdLockIfOwner(rec, msg.key, msg.tsWr);
    txn->releasedByValC = true;
    progress_.notifyAll();

    // Strict keeps the txn alive until VAL_P.
    if (model_ != PersistModel::Strict) {
        pending_.erase(txnKey(msg.key, msg.tsWr));
        progress_.notifyAll();
    }
}

sim::Task<void>
NodeO::snicOnPersistSc(Message msg, Tick t_handle0)
{
    if (msg.destMask != 0) {
        // Coordinator SNIC: broadcast to followers, flush local scope.
        Message out = msg;
        out.destMask = 0;
        cluster_.snicMulticast(id_, out, /*from_batched=*/false);
        while (scopeUnpersisted_[msg.scope] > 0)
            co_await progress_.wait();
        // Persist the [PERSIST]sc marker itself (small dFIFO entry).
        co_await dfifo_.enqueueMarker(net::controlMsgBytes);
        // ACKs collected in snicOnAck; nothing else to do here.
        co_return;
    }

    // Follower SNIC: flush the scope's outstanding dFIFO enqueues,
    // persist the marker, acknowledge. The ackBeforePersist mutation
    // skips the scope-flush wait, certifying durability the node does
    // not have.
    if (!cfg_.mutations.ackBeforePersist) {
        while (scopeUnpersisted_[msg.scope] > 0)
            co_await progress_.wait();
    }
    co_await dfifo_.enqueueMarker(net::controlMsgBytes);
    traceEvent(obs::Category::Protocol, obs::EventKind::AckSent,
               static_cast<std::int64_t>(msg.scope), 0,
               obs::ackAux(obs::AckFlavor::ScopePersist, id_));
    Message resp = net::makeResponse(msg, MsgType::ACK_P_SC);
    resp.handleNs = sim_.now() - t_handle0;
    cluster_.snicUnicast(resp);
}

void
NodeO::dfifoInBackground(Key key, Value value, Timestamp ts,
                         ScopeId scope, std::uint32_t bytes)
{
    if (isScopeModel(model_))
        ++scopeUnpersisted_[scope];
    struct Launcher
    {
        static sim::Process
        run(NodeO *self, Key key, Value value, Timestamp ts,
            ScopeId scope, std::uint32_t bytes)
        {
            co_await self->dfifo_.enqueue(key, value, ts, bytes);
            ++self->counters_.persists;
            if (isScopeModel(self->model_)) {
                if (--self->scopeUnpersisted_[scope] == 0)
                    self->progress_.notifyAll();
            }
        }
    };
    sim_.spawn(Launcher::run(this, key, value, ts, scope, bytes));
}

nvm::DurableDb
NodeO::durableDb() const
{
    nvm::DurableDb db;
    log_.applyTo(db);
    return db;
}

} // namespace minos::snic
