/**
 * @file
 * Deterministic pseudo-random sources for workload generation.
 *
 * Includes the YCSB-style scrambled zipfian generator (Gray et al.,
 * "Quickly Generating Billion-Record Synthetic Databases") used by the
 * paper's default workload, plus a uniform generator for the Fig. 14
 * key-distribution sensitivity study.
 */

#ifndef MINOS_COMMON_RANDOM_HH
#define MINOS_COMMON_RANDOM_HH

#include <cstdint>
#include <random>

namespace minos {

/**
 * Small, fast, seedable PRNG (xoshiro256**).
 *
 * Deterministic across platforms so experiment output is reproducible.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). @pre bound > 0 */
    std::uint64_t nextUint(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform integer in [lo, hi]. */
    std::int64_t nextInt(std::int64_t lo, std::int64_t hi);

    // UniformRandomBitGenerator interface.
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }
    result_type operator()() { return next(); }

  private:
    std::uint64_t s[4];
};

/** Key-distribution interface: produces keys in [0, numKeys). */
class KeyDistribution
{
  public:
    virtual ~KeyDistribution() = default;

    /** Draw the next key. */
    virtual std::uint64_t next(Rng &rng) = 0;

    /** Number of distinct keys this distribution can produce. */
    virtual std::uint64_t numKeys() const = 0;
};

/** Uniform keys over [0, numKeys). */
class UniformKeys : public KeyDistribution
{
  public:
    explicit UniformKeys(std::uint64_t num_keys);

    std::uint64_t next(Rng &rng) override;
    std::uint64_t numKeys() const override { return numKeys_; }

  private:
    std::uint64_t numKeys_;
};

/**
 * Scrambled zipfian keys over [0, numKeys) with skew theta
 * (YCSB default 0.99).
 *
 * The raw zipfian rank is scrambled with an FNV-style hash so hot keys are
 * spread over the key space, matching YCSB's ScrambledZipfianGenerator.
 */
class ZipfianKeys : public KeyDistribution
{
  public:
    ZipfianKeys(std::uint64_t num_keys, double theta = 0.99);

    std::uint64_t next(Rng &rng) override;
    std::uint64_t numKeys() const override { return numKeys_; }

    /** Raw (unscrambled) zipfian rank; rank 0 is the hottest. */
    std::uint64_t nextRank(Rng &rng);

  private:
    std::uint64_t numKeys_;
    double theta_;
    double zetan_;
    double alpha_;
    double eta_;
    double zeta2Theta_;
};

/** 64-bit FNV-1a hash, used for zipfian scrambling. */
std::uint64_t fnv1aHash64(std::uint64_t value);

} // namespace minos

#endif // MINOS_COMMON_RANDOM_HH
