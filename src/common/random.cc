#include "random.hh"

#include <cmath>

#include "logging.hh"

namespace minos {

namespace {

/** splitmix64, used to expand the seed into xoshiro state. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &w : s)
        w = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

std::uint64_t
Rng::nextUint(std::uint64_t bound)
{
    MINOS_ASSERT(bound > 0, "nextUint bound must be positive");
    // Lemire's multiply-shift rejection-free mapping is fine here; a tiny
    // modulo bias is irrelevant for workload generation, but avoid it
    // anyway via 128-bit multiply.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
}

double
Rng::nextDouble()
{
    return (next() >> 11) * 0x1.0p-53;
}

std::int64_t
Rng::nextInt(std::int64_t lo, std::int64_t hi)
{
    MINOS_ASSERT(lo <= hi, "nextInt empty range");
    return lo + static_cast<std::int64_t>(
        nextUint(static_cast<std::uint64_t>(hi - lo) + 1));
}

UniformKeys::UniformKeys(std::uint64_t num_keys) : numKeys_(num_keys)
{
    MINOS_ASSERT(num_keys > 0, "UniformKeys needs >= 1 key");
}

std::uint64_t
UniformKeys::next(Rng &rng)
{
    return rng.nextUint(numKeys_);
}

namespace {

double
zeta(std::uint64_t n, double theta)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

} // namespace

ZipfianKeys::ZipfianKeys(std::uint64_t num_keys, double theta)
    : numKeys_(num_keys), theta_(theta)
{
    MINOS_ASSERT(num_keys > 0, "ZipfianKeys needs >= 1 key");
    MINOS_ASSERT(theta > 0.0 && theta < 1.0,
                 "zipfian theta must be in (0, 1)");
    zetan_ = zeta(numKeys_, theta_);
    zeta2Theta_ = zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(numKeys_),
                           1.0 - theta_)) /
           (1.0 - zeta2Theta_ / zetan_);
}

std::uint64_t
ZipfianKeys::nextRank(Rng &rng)
{
    // Gray et al. rejection-free inversion.
    double u = rng.nextDouble();
    double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    auto rank = static_cast<std::uint64_t>(
        static_cast<double>(numKeys_) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    if (rank >= numKeys_)
        rank = numKeys_ - 1;
    return rank;
}

std::uint64_t
ZipfianKeys::next(Rng &rng)
{
    return fnv1aHash64(nextRank(rng)) % numKeys_;
}

std::uint64_t
fnv1aHash64(std::uint64_t value)
{
    std::uint64_t hash = 0xCBF29CE484222325ull;
    for (int i = 0; i < 8; ++i) {
        hash ^= (value >> (i * 8)) & 0xFF;
        hash *= 0x100000001B3ull;
    }
    return hash;
}

} // namespace minos
