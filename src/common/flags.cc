#include "flags.hh"

#include <cstdlib>

#include "logging.hh"

namespace minos {

Flags::Flags(int argc, const char *const *argv)
{
    if (argc > 0)
        program_ = argv[0];
    bool flags_done = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (flags_done || arg.rfind("--", 0) != 0) {
            positional_.push_back(std::move(arg));
            continue;
        }
        if (arg == "--") {
            flags_done = true;
            continue;
        }
        std::string body = arg.substr(2);
        auto eq = body.find('=');
        if (eq != std::string::npos) {
            values_[body.substr(0, eq)] = body.substr(eq + 1);
            continue;
        }
        // `--name value` unless the next token is another flag.
        if (i + 1 < argc) {
            std::string next = argv[i + 1];
            if (next.rfind("--", 0) != 0) {
                values_[body] = next;
                ++i;
                continue;
            }
        }
        values_[body] = ""; // bare boolean switch
    }
}

bool
Flags::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

std::string
Flags::getString(const std::string &name, const std::string &dflt) const
{
    auto it = values_.find(name);
    return it == values_.end() ? dflt : it->second;
}

std::vector<std::string>
Flags::getStrings(const std::string &name, char sep) const
{
    std::vector<std::string> out;
    auto it = values_.find(name);
    if (it == values_.end())
        return out;
    const std::string &v = it->second;
    std::size_t start = 0;
    while (start <= v.size()) {
        std::size_t end = v.find(sep, start);
        if (end == std::string::npos)
            end = v.size();
        if (end > start)
            out.push_back(v.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

std::int64_t
Flags::getInt(const std::string &name, std::int64_t dflt) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return dflt;
    char *end = nullptr;
    std::int64_t v = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0')
        MINOS_FATAL("flag --", name, " expects an integer, got '",
                    it->second, "'");
    return v;
}

double
Flags::getDouble(const std::string &name, double dflt) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return dflt;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        MINOS_FATAL("flag --", name, " expects a number, got '",
                    it->second, "'");
    return v;
}

bool
Flags::getBool(const std::string &name, bool dflt) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return dflt;
    const std::string &v = it->second;
    if (v.empty() || v == "1" || v == "true" || v == "yes")
        return true;
    if (v == "0" || v == "false" || v == "no")
        return false;
    return dflt;
}

std::vector<std::string>
Flags::unknownFlags(const std::vector<std::string> &known) const
{
    std::vector<std::string> unknown;
    for (const auto &[name, value] : values_) {
        bool found = false;
        for (const auto &k : known)
            found |= (k == name);
        if (!found)
            unknown.push_back(name);
    }
    return unknown;
}

} // namespace minos
