/**
 * @file
 * Status-message and error-reporting helpers in the spirit of gem5's
 * base/logging.hh.
 *
 * Severity ladder:
 *   - panic():  an internal invariant of MINOS itself is broken; aborts.
 *   - fatal():  the user asked for something impossible (bad config);
 *               exits with status 1.
 *   - warn():   something is degraded but the run can continue.
 *   - inform(): status messages with no negative connotation.
 */

#ifndef MINOS_COMMON_LOGGING_HH
#define MINOS_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

namespace minos {

namespace detail {

/** Stream-concatenate all arguments into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Set to false to silence inform() output (benchmarks do this). */
void setVerbose(bool verbose);
bool verbose();

} // namespace minos

/** Unrecoverable internal error: print and abort. */
#define MINOS_PANIC(...) \
    ::minos::detail::panicImpl(__FILE__, __LINE__, \
                               ::minos::detail::concat(__VA_ARGS__))

/** Unrecoverable user error: print and exit(1). */
#define MINOS_FATAL(...) \
    ::minos::detail::fatalImpl(__FILE__, __LINE__, \
                               ::minos::detail::concat(__VA_ARGS__))

/** Non-fatal warning. */
#define MINOS_WARN(...) \
    ::minos::detail::warnImpl(::minos::detail::concat(__VA_ARGS__))

/** Informational message, suppressed when verbosity is off. */
#define MINOS_INFORM(...) \
    ::minos::detail::informImpl(::minos::detail::concat(__VA_ARGS__))

/** Panic unless the given internal invariant holds. */
#define MINOS_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            MINOS_PANIC("assertion '", #cond, "' failed: ", \
                        ::minos::detail::concat(__VA_ARGS__)); \
        } \
    } while (0)

#endif // MINOS_COMMON_LOGGING_HH
