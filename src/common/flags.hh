/**
 * @file
 * Minimal command-line flag parsing for the tools and harnesses.
 *
 * Supports `--name=value`, `--name value`, and bare boolean `--name`
 * switches, plus positional arguments. Unknown-flag detection lets
 * tools fail fast on typos.
 */

#ifndef MINOS_COMMON_FLAGS_HH
#define MINOS_COMMON_FLAGS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace minos {

/** Parsed command line. */
class Flags
{
  public:
    /**
     * Parse @p argv. Flags start with `--`; everything else is
     * positional. `--` alone ends flag parsing.
     */
    Flags(int argc, const char *const *argv);

    /** True if the flag was given (with or without a value). */
    bool has(const std::string &name) const;

    /** String value, or @p dflt when absent. */
    std::string getString(const std::string &name,
                          const std::string &dflt = "") const;

    /**
     * Value split on @p sep (default comma), empty pieces dropped:
     * `--trace-categories=lock,fifo` -> {"lock","fifo"}. Empty when the
     * flag is absent or has no value.
     */
    std::vector<std::string> getStrings(const std::string &name,
                                        char sep = ',') const;

    /**
     * Integer value, or @p dflt when absent. Malformed values are a
     * fatal user error.
     */
    std::int64_t getInt(const std::string &name,
                        std::int64_t dflt = 0) const;

    /** Double value, or @p dflt when absent. */
    double getDouble(const std::string &name, double dflt = 0.0) const;

    /**
     * Boolean: true when the flag appears with no value or with
     * "1"/"true"/"yes"; false for "0"/"false"/"no"; @p dflt otherwise.
     */
    bool getBool(const std::string &name, bool dflt = false) const;

    /** Positional arguments in order. */
    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** Program name (argv[0]). */
    const std::string &program() const { return program_; }

    /**
     * Flags given on the command line that are not in @p known —
     * use to reject typos.
     */
    std::vector<std::string>
    unknownFlags(const std::vector<std::string> &known) const;

  private:
    std::string program_;
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

} // namespace minos

#endif // MINOS_COMMON_FLAGS_HH
