/**
 * @file
 * Time and size units used across MINOS.
 *
 * Simulated time is kept as an integral count of nanoseconds (Tick).
 * Helper literals/constants make configuration tables (Table II/III of the
 * paper) read naturally, e.g. `500 * US` or `persistNsPerKb = 1295`.
 */

#ifndef MINOS_COMMON_UNITS_HH
#define MINOS_COMMON_UNITS_HH

#include <cstdint>

namespace minos {

/** Simulated time in nanoseconds. */
using Tick = std::int64_t;

/** One nanosecond. */
inline constexpr Tick NS = 1;
/** One microsecond. */
inline constexpr Tick US = 1000 * NS;
/** One millisecond. */
inline constexpr Tick MS = 1000 * US;
/** One second. */
inline constexpr Tick SEC = 1000 * MS;

/** Sizes in bytes. */
inline constexpr std::uint64_t KiB = 1024;
inline constexpr std::uint64_t MiB = 1024 * KiB;
inline constexpr std::uint64_t GiB = 1024 * MiB;

/**
 * Time to serialize @p bytes over a link of @p bytes_per_sec bandwidth,
 * rounded up to a whole tick.
 */
constexpr Tick
serializationDelay(std::uint64_t bytes, double bytes_per_sec)
{
    if (bytes_per_sec <= 0.0)
        return 0;
    double ns = static_cast<double>(bytes) * 1e9 / bytes_per_sec;
    return static_cast<Tick>(ns) + ((ns > static_cast<Tick>(ns)) ? 1 : 0);
}

} // namespace minos

#endif // MINOS_COMMON_UNITS_HH
