/**
 * @file
 * Closed-loop workload driver for the simulated clusters.
 *
 * Mirrors the paper's setup (§VII): every node runs `workersPerNode`
 * client workers (one per busy core) that issue its YCSB request stream
 * back-to-back; reads are local, writes replicate to all other nodes.
 * For <Lin, Scope>, each worker closes its scope with a [PERSIST]sc
 * every `scopeSize` writes.
 */

#ifndef MINOS_SIMPROTO_DRIVER_HH
#define MINOS_SIMPROTO_DRIVER_HH

#include <cstdint>

#include "obs/metrics.hh"
#include "sim/simulator.hh"
#include "simproto/cluster.hh"
#include "stats/stats.hh"
#include "workload/deathstar.hh"
#include "workload/ycsb.hh"

namespace minos::simproto {

/** Driver parameters. */
struct DriverConfig
{
    /** Total requests issued by each node (paper default 100,000). */
    std::uint64_t requestsPerNode = 2000;
    /** Concurrent client workers per node (0 = one per host core). */
    int workersPerNode = 0;
    /** Writes per scope before [PERSIST]sc (<Lin, Scope> only). */
    int scopeSize = 10;
    /** Workload shape. */
    workload::YcsbConfig ycsb;
};

/** Aggregated measurement of one run. */
struct RunResult
{
    stats::LatencySeries writeLat;
    stats::LatencySeries readLat;
    stats::LatencySeries persistLat; ///< [PERSIST]sc transactions
    stats::Breakdown breakdown;      ///< write comm/comp split (Fig. 4)
    stats::EventCoreCounters eventCore; ///< simulator event-core stats
    Tick duration = 0;               ///< makespan of the run
    std::uint64_t writes = 0;
    std::uint64_t reads = 0;
    std::uint64_t obsoleteWrites = 0;

    double
    writeThroughput() const
    {
        return stats::opsPerSec(writes, duration);
    }

    double
    readThroughput() const
    {
        return stats::opsPerSec(reads, duration);
    }

    double
    totalThroughput() const
    {
        return stats::opsPerSec(writes + reads, duration);
    }
};

/**
 * Run @p driver_cfg's workload to completion on @p cluster and return the
 * measurements. Calls sim.run(); the simulator must be otherwise idle.
 */
RunResult runWorkload(sim::Simulator &sim, DdpCluster &cluster,
                      const DriverConfig &driver_cfg);

/**
 * Publish one run's results under @p prefix: throughput and duration
 * gauges, op counters, write/read/persist latency histograms, the
 * Fig. 4 comm/comp split, and the event-core counters.
 */
void registerRunMetrics(obs::MetricsRegistry &reg,
                        const std::string &prefix,
                        const RunResult &res);

/** Parameters of a microservice end-to-end latency run (Fig. 11). */
struct MicroserviceConfig
{
    int invocationsPerNode = 20;
    int workersPerNode = 2;
    std::uint64_t numRecords = 100'000;
    std::uint64_t seed = 7;
};

/** Result: end-to-end latency of each function invocation. */
struct MicroserviceResult
{
    stats::LatencySeries e2eLat;
    stats::EventCoreCounters eventCore; ///< simulator event-core stats
};

/**
 * Run the DeathStar-style function @p spec on every node of @p cluster:
 * each invocation pays the client<->service round trips plus its GET/SET
 * sequence through the DDP protocols (paper §VIII-C). For <Lin, Scope>,
 * each invocation forms one scope closed by [PERSIST]sc.
 */
MicroserviceResult runMicroservice(sim::Simulator &sim,
                                   DdpCluster &cluster,
                                   const workload::FunctionSpec &spec,
                                   const MicroserviceConfig &mcfg);

} // namespace minos::simproto

#endif // MINOS_SIMPROTO_DRIVER_HH
