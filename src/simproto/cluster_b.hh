/**
 * @file
 * The simulated MINOS-B cluster: N NodeB hosts joined by the Table II/III
 * fabric (per-node PCIe host<->NIC links, dumb-NIC send engines, and
 * NIC-to-NIC network links).
 *
 * The fabric also implements the message-path variants of the Fig. 12
 * ablation that apply to MINOS-B (batching and broadcast on a dumb NIC):
 *  - plain:       one PCIe crossing + one NIC deposit (+ inter-message
 *                 gap) + one wire serialization per destination;
 *  - batching:    a single PCIe crossing carrying all destinations, then
 *                 per-destination NIC unpack + deposit + wire;
 *  - broadcast:   without batching the host still generates one message
 *                 per destination, so a dumb NIC has nothing to fan out
 *                 and the path is unchanged (the paper finds no
 *                 noticeable effect); with batching, the NIC deposits
 *                 once and the wire carries one copy.
 */

#ifndef MINOS_SIMPROTO_CLUSTER_B_HH
#define MINOS_SIMPROTO_CLUSTER_B_HH

#include <memory>
#include <vector>

#include "sim/network.hh"
#include "simproto/node_b.hh"

namespace minos::simproto {

/** MINOS-B cluster (paper §III/§IV) on the simulated machine. */
class ClusterB : public DdpCluster
{
  public:
    /**
     * @param opts message-path options for the ablation study; offload
     *             must be false (that is ClusterO's job).
     */
    ClusterB(sim::Simulator &sim, const ClusterConfig &cfg,
             PersistModel model,
             OffloadOptions opts = OffloadOptions::minosB());

    sim::Task<OpStats> clientWrite(kv::NodeId node, kv::Key key,
                                   kv::Value value,
                                   net::ScopeId scope) override;
    sim::Task<OpStats> clientRead(kv::NodeId node, kv::Key key) override;
    sim::Task<OpStats> persistScope(kv::NodeId node,
                                    net::ScopeId scope) override;

    int numNodes() const override { return cfg_.numNodes; }
    PersistModel model() const override { return model_; }

    NodeB &node(kv::NodeId id);
    const ClusterConfig &config() const { return cfg_; }
    const OffloadOptions &options() const { return opts_; }

    /** Send @p msg (src/dst filled in) through the full B fabric. */
    void unicast(net::Message msg);

    /**
     * Fan @p tmpl out from @p src to every other node, honoring the
     * batching/broadcast options.
     */
    void multicast(kv::NodeId src, net::Message tmpl);

  private:
    /** Per-node fabric state. */
    struct Fabric
    {
        Fabric(sim::Simulator &sim, const ClusterConfig &cfg)
            : pcieOut(sim, cfg.pcieLatencyNs, cfg.pcieBwBytesPerSec,
                      cfg.pcieMsgOverheadNs),
              pcieIn(sim, cfg.pcieLatencyNs, cfg.pcieBwBytesPerSec,
                     cfg.pcieMsgOverheadNs),
              netOut(sim, cfg.netLatencyNs, cfg.netBwBytesPerSec)
        {
        }

        sim::Link pcieOut; ///< host send queue -> NIC
        sim::Link pcieIn;  ///< NIC -> host receive queue
        sim::Link netOut;  ///< NIC egress port -> wire
        sim::SerialStage nicTx; ///< NIC send engine (deposit + gap)
    };

    /** NIC deposit cost for a message type (Table III). */
    Tick depositCost(net::MsgType type) const;

    /** Final delivery: remote PCIe leg + handoff to the dst node. */
    void deliverAt(Tick wire_arrival, net::Message msg);

    sim::Simulator &sim_;
    ClusterConfig cfg_;
    PersistModel model_;
    OffloadOptions opts_;
    std::vector<std::unique_ptr<Fabric>> fabric_;
    std::vector<std::unique_ptr<NodeB>> nodes_;
};

} // namespace minos::simproto

#endif // MINOS_SIMPROTO_CLUSTER_B_HH
