/**
 * @file
 * Common interface of the simulated DDP clusters (MINOS-B and MINOS-O).
 *
 * The workload driver (driver.hh) runs against this interface, so every
 * experiment can swap engines and models freely.
 */

#ifndef MINOS_SIMPROTO_CLUSTER_HH
#define MINOS_SIMPROTO_CLUSTER_HH

#include "common/units.hh"
#include "kv/record.hh"
#include "net/message.hh"
#include "sim/process.hh"
#include "simproto/config.hh"
#include "simproto/models.hh"

namespace minos::simproto {

/** Per-operation result and timing detail. */
struct OpStats
{
    /** End-to-end client latency of the operation. */
    Tick latencyNs = 0;
    /**
     * Communication share (paper §IV): host-send-queue to
     * host-receive-queue time of the critical-path messages, minus the
     * average follower handling time. Writes only.
     */
    double commNs = 0;
    /** Computation share: latency minus communication. Writes only. */
    double compNs = 0;
    /** Value observed (reads). */
    kv::Value value = 0;
    /** The write was cut short as obsolete (§III-A "Outdated Writes"). */
    bool obsolete = false;
};

/**
 * A simulated leaderless DDP cluster: any node can coordinate writes and
 * serve local reads (paper §II-A).
 */
class DdpCluster
{
  public:
    virtual ~DdpCluster() = default;

    /**
     * Run the client-write algorithm with @p node as Coordinator.
     * For <Lin, Scope>, @p scope tags the write's scope.
     * Must be awaited from a simulator process.
     */
    virtual sim::Task<OpStats> clientWrite(kv::NodeId node, kv::Key key,
                                           kv::Value value,
                                           net::ScopeId scope) = 0;

    /** Run the client-read algorithm locally on @p node. */
    virtual sim::Task<OpStats> clientRead(kv::NodeId node,
                                          kv::Key key) = 0;

    /**
     * Run the [PERSIST]sc transaction of <Lin, Scope> with @p node as
     * Coordinator. No-op (zero-latency) for other models.
     */
    virtual sim::Task<OpStats> persistScope(kv::NodeId node,
                                            net::ScopeId scope) = 0;

    virtual int numNodes() const = 0;
    virtual PersistModel model() const = 0;

    /** The cluster's full parameter set (diagnostics wiring included). */
    virtual const ClusterConfig &config() const = 0;
};

} // namespace minos::simproto

#endif // MINOS_SIMPROTO_CLUSTER_HH
