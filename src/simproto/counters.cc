#include "counters.hh"

#include <sstream>

#include "obs/metrics.hh"

namespace minos::simproto {

NodeCounters &
NodeCounters::operator+=(const NodeCounters &o)
{
    invsSent += o.invsSent;
    valsSent += o.valsSent;
    acksSent += o.acksSent;
    invsReceived += o.invsReceived;
    acksReceived += o.acksReceived;
    valsReceived += o.valsReceived;
    writesCoordinated += o.writesCoordinated;
    writesObsoleteCut += o.writesObsoleteCut;
    invsObsolete += o.invsObsolete;
    rdLockSnatches += o.rdLockSnatches;
    persists += o.persists;
    return *this;
}

std::string
NodeCounters::str() const
{
    std::ostringstream os;
    os << "  sent: INV " << invsSent << ", VAL " << valsSent
       << ", ACK " << acksSent << "\n"
       << "  received: INV " << invsReceived << ", ACK "
       << acksReceived << ", VAL " << valsReceived << "\n"
       << "  writes coordinated " << writesCoordinated
       << " (obsolete-cut " << writesObsoleteCut << "), obsolete INVs "
       << invsObsolete << "\n"
       << "  RDLock snatches " << rdLockSnatches << ", persists "
       << persists << "\n";
    return os.str();
}

void
NodeCounters::registerInto(obs::MetricsRegistry &reg,
                           const std::string &prefix) const
{
    reg.counter(prefix + "invs_sent", invsSent);
    reg.counter(prefix + "vals_sent", valsSent);
    reg.counter(prefix + "acks_sent", acksSent);
    reg.counter(prefix + "invs_received", invsReceived);
    reg.counter(prefix + "acks_received", acksReceived);
    reg.counter(prefix + "vals_received", valsReceived);
    reg.counter(prefix + "writes_coordinated", writesCoordinated);
    reg.counter(prefix + "writes_obsolete_cut", writesObsoleteCut);
    reg.counter(prefix + "invs_obsolete", invsObsolete);
    reg.counter(prefix + "rdlock_snatches", rdLockSnatches);
    reg.counter(prefix + "persists", persists);
}

} // namespace minos::simproto
