#include "counters.hh"

#include <sstream>

namespace minos::simproto {

NodeCounters &
NodeCounters::operator+=(const NodeCounters &o)
{
    invsSent += o.invsSent;
    valsSent += o.valsSent;
    acksSent += o.acksSent;
    invsReceived += o.invsReceived;
    acksReceived += o.acksReceived;
    valsReceived += o.valsReceived;
    writesCoordinated += o.writesCoordinated;
    writesObsoleteCut += o.writesObsoleteCut;
    invsObsolete += o.invsObsolete;
    rdLockSnatches += o.rdLockSnatches;
    persists += o.persists;
    return *this;
}

std::string
NodeCounters::str() const
{
    std::ostringstream os;
    os << "  sent: INV " << invsSent << ", VAL " << valsSent
       << ", ACK " << acksSent << "\n"
       << "  received: INV " << invsReceived << ", ACK "
       << acksReceived << ", VAL " << valsReceived << "\n"
       << "  writes coordinated " << writesCoordinated
       << " (obsolete-cut " << writesObsoleteCut << "), obsolete INVs "
       << invsObsolete << "\n"
       << "  RDLock snatches " << rdLockSnatches << ", persists "
       << persists << "\n";
    return os.str();
}

} // namespace minos::simproto
