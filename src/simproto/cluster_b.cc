#include "cluster_b.hh"

#include "obs/audit.hh"

namespace minos::simproto {

using kv::NodeId;
using net::Message;
using net::MsgType;

ClusterB::ClusterB(sim::Simulator &sim, const ClusterConfig &cfg,
                   PersistModel model, OffloadOptions opts)
    : sim_(sim), cfg_(cfg), model_(model), opts_(opts)
{
    MINOS_ASSERT(cfg_.numNodes >= 2, "a cluster needs >= 2 nodes");
    MINOS_ASSERT(cfg_.numNodes <= 64, "destMask limits nodes to 64");
    MINOS_ASSERT(!opts_.offload,
                 "ClusterB models the host-side engine; use ClusterO "
                 "for offloaded configurations");
    if (cfg_.audit) {
        MINOS_ASSERT(cfg_.trace,
                     "auditors ride the flight recorder's sink bus; "
                     "set ClusterConfig::trace too");
        cfg_.audit->configure(
            {cfg_.numNodes, model_, /*vfifoCap=*/0, /*dfifoCap=*/0});
        cfg_.audit->attach(*cfg_.trace);
    }
    fabric_.reserve(static_cast<std::size_t>(cfg_.numNodes));
    nodes_.reserve(static_cast<std::size_t>(cfg_.numNodes));
    for (int i = 0; i < cfg_.numNodes; ++i) {
        fabric_.push_back(std::make_unique<Fabric>(sim_, cfg_));
        nodes_.push_back(std::make_unique<NodeB>(
            sim_, *this, cfg_, model_, static_cast<NodeId>(i)));
    }
}

NodeB &
ClusterB::node(NodeId id)
{
    MINOS_ASSERT(id >= 0 && id < cfg_.numNodes, "bad node id ", id);
    return *nodes_[static_cast<std::size_t>(id)];
}

sim::Task<OpStats>
ClusterB::clientWrite(NodeId node_id, kv::Key key, kv::Value value,
                      net::ScopeId scope)
{
    return node(node_id).clientWrite(key, value, scope);
}

sim::Task<OpStats>
ClusterB::clientRead(NodeId node_id, kv::Key key)
{
    return node(node_id).clientRead(key);
}

sim::Task<OpStats>
ClusterB::persistScope(NodeId node_id, net::ScopeId scope)
{
    return node(node_id).persistScope(scope);
}

Tick
ClusterB::depositCost(MsgType type) const
{
    return net::carriesData(type) ? cfg_.sendInvNs : cfg_.sendAckNs;
}

void
ClusterB::deliverAt(Tick wire_arrival, Message msg)
{
    // Remote NIC -> host receive queue over the destination's PCIe.
    auto &dst_fab = *fabric_[static_cast<std::size_t>(msg.dst)];
    Tick at_host = dst_fab.pcieIn.transferFrom(wire_arrival,
                                               msg.sizeBytes);
    NodeB *dst = nodes_[static_cast<std::size_t>(msg.dst)].get();
    sim_.schedule(at_host, [dst, msg] { dst->deliver(msg); });
}

void
ClusterB::unicast(Message msg)
{
    MINOS_ASSERT(msg.src >= 0 && msg.src < cfg_.numNodes &&
                 msg.dst >= 0 && msg.dst < cfg_.numNodes &&
                 msg.src != msg.dst,
                 "bad unicast endpoints ", msg.src, "->", msg.dst);
    auto &fab = *fabric_[static_cast<std::size_t>(msg.src)];
    // Host send queue -> NIC over PCIe.
    Tick at_nic = fab.pcieOut.transferFrom(sim_.now(), msg.sizeBytes);
    // NIC send engine deposit. Table III's inter-message gap applies to
    // fan-outs of the same message, not to independent unicasts.
    Tick deposited = fab.nicTx.occupyFrom(at_nic,
                                          depositCost(msg.type));
    // Wire.
    Tick arrival = fab.netOut.transferFrom(deposited, msg.sizeBytes);
    deliverAt(arrival, msg);
}

void
ClusterB::multicast(NodeId src, Message tmpl)
{
    auto &fab = *fabric_[static_cast<std::size_t>(src)];

    if (!opts_.batching) {
        // The host generates one message per destination; each crosses
        // PCIe, is deposited by the NIC, and is serialized on the wire
        // individually. (Broadcast cannot help here: there is no single
        // message for the dumb NIC to fan out — §VIII-D finds B+bcast
        // has no noticeable effect.)
        for (int d = 0; d < cfg_.numNodes; ++d) {
            if (d == src)
                continue;
            Message m = tmpl;
            m.dst = static_cast<NodeId>(d);
            Tick at_nic = fab.pcieOut.transferFrom(sim_.now(),
                                                   m.sizeBytes);
            Tick deposited = fab.nicTx.occupyFrom(
                at_nic, depositCost(m.type) + cfg_.interMsgGapNs);
            Tick arrival = fab.netOut.transferFrom(deposited,
                                                   m.sizeBytes);
            deliverAt(arrival, m);
        }
        return;
    }

    // Batching: a single host->NIC message carries all destinations
    // (payload once + 8B of header per destination).
    int dests = cfg_.followers();
    std::uint64_t batched_bytes =
        tmpl.sizeBytes + 8u * static_cast<unsigned>(dests);
    Tick at_nic = fab.pcieOut.transferFrom(sim_.now(), batched_bytes);

    if (!opts_.broadcast) {
        // The dumb NIC unpacks the batch per destination, then deposits
        // and serializes each copy individually.
        Tick unpack_done = at_nic;
        for (int d = 0; d < cfg_.numNodes; ++d) {
            if (d == src)
                continue;
            Message m = tmpl;
            m.dst = static_cast<NodeId>(d);
            unpack_done = fab.nicTx.occupyFrom(
                unpack_done, cfg_.snicUnpackPerDestNs +
                                 depositCost(m.type) +
                                 cfg_.interMsgGapNs);
            Tick arrival = fab.netOut.transferFrom(unpack_done,
                                                   m.sizeBytes);
            deliverAt(arrival, m);
        }
        return;
    }

    // Batching + broadcast: one deposit, one wire serialization; the
    // network replicates the copy to every destination.
    Tick deposited = fab.nicTx.occupyFrom(at_nic,
                                          depositCost(tmpl.type));
    Tick arrival = fab.netOut.transferFrom(deposited, tmpl.sizeBytes);
    for (int d = 0; d < cfg_.numNodes; ++d) {
        if (d == src)
            continue;
        Message m = tmpl;
        m.dst = static_cast<NodeId>(d);
        deliverAt(arrival, m);
    }
}

} // namespace minos::simproto
