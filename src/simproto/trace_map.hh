/**
 * @file
 * Mapping between the wire message taxonomy (net::MsgType) and the
 * flight recorder's compact ACK/VAL flavor encodings (obs/recorder.hh).
 *
 * Lives in simproto (not obs) on purpose: the obs layer stays free of
 * net dependencies, while both engines share one authoritative mapping
 * when they lay AckReceived/ValSent records.
 */

#ifndef MINOS_SIMPROTO_TRACE_MAP_HH
#define MINOS_SIMPROTO_TRACE_MAP_HH

#include "net/message.hh"
#include "obs/recorder.hh"

namespace minos::simproto {

constexpr obs::AckFlavor
ackFlavorOf(net::MsgType t)
{
    switch (t) {
      case net::MsgType::ACK_C:
        return obs::AckFlavor::Consistency;
      case net::MsgType::ACK_P:
        return obs::AckFlavor::Persistency;
      case net::MsgType::ACK_C_SC:
        return obs::AckFlavor::ScopeConsistency;
      case net::MsgType::ACK_P_SC:
        return obs::AckFlavor::ScopePersist;
      default:
        return obs::AckFlavor::Combined;
    }
}

constexpr obs::ValFlavor
valFlavorOf(net::MsgType t)
{
    switch (t) {
      case net::MsgType::VAL_C:
        return obs::ValFlavor::ValC;
      case net::MsgType::VAL_P:
        return obs::ValFlavor::ValP;
      case net::MsgType::VAL_C_SC:
        return obs::ValFlavor::ValCSc;
      case net::MsgType::VAL_P_SC:
        return obs::ValFlavor::ValPSc;
      default:
        return obs::ValFlavor::Val;
    }
}

} // namespace minos::simproto

#endif // MINOS_SIMPROTO_TRACE_MAP_HH
