#include "cluster_leader.hh"

namespace minos::simproto {

using kv::Key;
using kv::NodeId;
using kv::Value;
using net::ScopeId;

ClusterLeader::ClusterLeader(sim::Simulator &sim,
                             const ClusterConfig &cfg,
                             PersistModel model, NodeId leader)
    : sim_(sim), inner_(sim, cfg, model), leader_(leader)
{
    MINOS_ASSERT(leader >= 0 && leader < cfg.numNodes,
                 "bad leader id ", leader);
    paths_.reserve(static_cast<std::size_t>(cfg.numNodes));
    for (int i = 0; i < cfg.numNodes; ++i)
        paths_.push_back(std::make_unique<ForwardPath>(sim, cfg));
}

sim::Task<OpStats>
ClusterLeader::clientWrite(NodeId node, Key key, Value value,
                           ScopeId scope)
{
    if (node == leader_)
        co_return co_await inner_.clientWrite(leader_, key, value,
                                              scope);

    // Forward the write request (carrying the record) to the leader...
    Tick t0 = sim_.now();
    auto &path = *paths_[static_cast<std::size_t>(node)];
    Tick at_leader = path.toLeader.transferFrom(
        sim_.now(),
        inner_.config().recordBytes + net::controlMsgBytes);
    co_await sim::delay(at_leader - sim_.now());

    // ...the leader coordinates the full protocol...
    OpStats st = co_await inner_.clientWrite(leader_, key, value,
                                             scope);

    // ...and the response travels back to the origin node.
    Tick back = path.fromLeader.transferFrom(sim_.now(),
                                             net::controlMsgBytes);
    co_await sim::delay(back - sim_.now());

    st.latencyNs = sim_.now() - t0;
    st.compNs = static_cast<double>(st.latencyNs) - st.commNs;
    co_return st;
}

sim::Task<OpStats>
ClusterLeader::clientRead(NodeId node, Key key)
{
    // Reads are local; the RDLock/VAL machinery keeps them
    // linearizable just as in the leaderless engine.
    return inner_.clientRead(node, key);
}

sim::Task<OpStats>
ClusterLeader::persistScope(NodeId node, ScopeId scope)
{
    if (node == leader_)
        co_return co_await inner_.persistScope(leader_, scope);
    Tick t0 = sim_.now();
    auto &path = *paths_[static_cast<std::size_t>(node)];
    Tick at_leader = path.toLeader.transferFrom(sim_.now(),
                                                net::controlMsgBytes);
    co_await sim::delay(at_leader - sim_.now());
    OpStats st = co_await inner_.persistScope(leader_, scope);
    Tick back = path.fromLeader.transferFrom(sim_.now(),
                                             net::controlMsgBytes);
    co_await sim::delay(back - sim_.now());
    st.latencyNs = sim_.now() - t0;
    co_return st;
}

} // namespace minos::simproto
