/**
 * @file
 * MINOS-Baseline node: the detailed leaderless DDP write/read algorithms
 * of paper §III running on the host CPU (Fig. 2 for <Lin, Synch>, Fig. 3
 * deltas for the other persistency models).
 *
 * Protocol structure per client-write (Coordinator):
 *  1. generate TS_WR from the local record's volatileTS;
 *  2. obsoleteness check -> handleObsolete() (ConsistencySpin +
 *     PersistencySpin) and early return;
 *  3. Snatch RDLock; grab WRLock; re-check obsoleteness;
 *  4. send INVs to all Followers, update the local LLC copy, release
 *     WRLock;
 *  5. persist to the NVM log (critical path only for Synch/Strict);
 *  6. wait for the per-model ACK set; raise glb_volatileTS /
 *     glb_durableTS; release RDLock if still owner; send VALs.
 *
 * The Follower mirrors steps 2-5 and acknowledges; its RDLock is released
 * by the VAL.
 */

#ifndef MINOS_SIMPROTO_NODE_B_HH
#define MINOS_SIMPROTO_NODE_B_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "kv/store.hh"
#include "net/message.hh"
#include "nvm/log.hh"
#include "nvm/model.hh"
#include "obs/recorder.hh"
#include "sim/condition.hh"
#include "sim/network.hh"
#include "simproto/cluster.hh"
#include "simproto/counters.hh"

namespace minos::simproto {

class ClusterB;

/** One MINOS-B node: host CPU protocol engine + dumb NIC. */
class NodeB
{
  public:
    NodeB(sim::Simulator &sim, ClusterB &cluster,
          const ClusterConfig &cfg, PersistModel model, kv::NodeId id);

    NodeB(const NodeB &) = delete;
    NodeB &operator=(const NodeB &) = delete;

    kv::NodeId id() const { return id_; }

    /** Coordinator client-write algorithm (Fig. 2 left / Fig. 3). */
    sim::Task<OpStats> clientWrite(kv::Key key, kv::Value value,
                                   net::ScopeId scope);

    /** Local client-read: stalls only while the RDLock is taken. */
    sim::Task<OpStats> clientRead(kv::Key key);

    /** Coordinator side of the [PERSIST]sc transaction (<Lin,Scope>). */
    sim::Task<OpStats> persistScope(net::ScopeId scope);

    /** Deliver a message into this node's host receive queue. */
    void deliver(net::Message msg);

    /** @{ Introspection for tests and invariant checks. */
    const kv::Record &record(kv::Key key) const { return store_.at(key); }
    const nvm::DurableLog &log() const { return log_; }
    std::size_t pendingTxns() const { return pending_.size(); }
    /** INVs this node cut short as obsolete (follower side). */
    std::uint64_t obsoleteInvs() const { return obsoleteInvs_; }
    /** Protocol activity counters. */
    const NodeCounters &counters() const { return counters_; }
    /** @} */

    /** Durable database obtained by replaying this node's NVM log. */
    nvm::DurableDb durableDb() const;

  private:
    /** Coordinator-side bookkeeping for one outstanding client-write. */
    struct PendingTxn
    {
        int needed = 0;  ///< number of followers
        int acks = 0;    ///< combined ACKs (Synch)
        int acksC = 0;   ///< consistency ACKs
        int acksP = 0;   ///< persistency ACKs
        Tick tFirstSend = 0;
        Tick tGateAck = 0;      ///< arrival of the last gating ACK
        Tick handleNsSum = 0;   ///< follower handling time, gating ACKs
        int handleCnt = 0;
        bool localPersistDone = false; ///< coordinator's own persist
    };

    // ---- protocol helpers (paper §III-A primitives) ----

    /** Obsolete(TS_WR): local volatile copy already newer? */
    bool obsolete(const kv::Record &rec, const kv::Timestamp &ts) const;

    /**
     * handleObsolete(): ConsistencySpin (wait glb_volatileTS to reach the
     * newer write) then, for Synch/Strict/REnf, PersistencySpin (wait
     * glb_durableTS).
     */
    sim::Task<void> handleObsolete(kv::Key key, kv::Timestamp observed);

    /** Snatch RDLock: take it unless a younger write holds it. */
    void snatchRdLock(kv::Record &rec, const kv::Timestamp &ts);

    /** Release RDLock if @p ts is still the owner. */
    void releaseRdLockIfOwner(kv::Record &rec, kv::Key key,
                              const kv::Timestamp &ts);

    /** Spin-grab the WRLock (local-write mutual exclusion). */
    sim::Task<void> grabWrLock(kv::Record &rec);
    void releaseWrLock(kv::Record &rec);

    /** Raise-glb helpers (monotonic max) + progress notification. */
    void raiseGlbVolatile(kv::Record &rec, kv::Key key,
                          const kv::Timestamp &ts);
    void raiseGlbDurable(kv::Record &rec, kv::Key key,
                         const kv::Timestamp &ts);

    /** Lay one flight-recorder event at the current simulated time. */
    void
    traceEvent(obs::Category cat, obs::EventKind kind, std::int64_t a0,
               std::int64_t a1, std::uint16_t aux = 0) const
    {
        if (cfg_.trace)
            cfg_.trace->record(sim_.now(), cat, kind, id_, a0, a1,
                               aux);
    }

    /** The coordinator's persistency-gate threshold (mutable by the
     *  dropOnePersistAck test mutation). */
    int
    persistNeeded(const PendingTxn &txn) const
    {
        return cfg_.mutations.dropOnePersistAck ? txn.needed - 1
                                                : txn.needed;
    }

    /** Generate a unique TS_WR for a new client-write on @p key. */
    kv::Timestamp makeWriteTs(kv::Key key, kv::Record &rec);

    /** Fabric options (batching/broadcast) configured on the cluster. */
    const OffloadOptions &opts() const;

    /** Persist one update into the local NVM log (occupies a core). */
    sim::Task<void> persistToNvm(kv::Key key, kv::Value value,
                                 kv::Timestamp ts, net::ScopeId scope);

    /** Launch a background persist (weak models / coordinator REnf). */
    void persistInBackground(kv::Key key, kv::Value value,
                             kv::Timestamp ts, net::ScopeId scope);

    // ---- messaging ----

    /** Send the per-model INV flavor to every follower. */
    void sendInvs(kv::Key key, kv::Value value, kv::Timestamp ts,
                  net::ScopeId scope);

    /** Send the per-model VAL flavor(s) to every follower. */
    void sendVals(net::MsgType type, kv::Key key, kv::Timestamp ts,
                  net::ScopeId scope);

    /** Respond to a coordinator. */
    sim::Task<void> sendResponse(const net::Message &req,
                                 net::MsgType type, Tick handle_ns);

    // ---- receive-side handlers ----

    sim::Process dispatcher();
    sim::Process handleMessage(net::Message msg);
    sim::Task<void> onInv(net::Message msg, Tick t_handle0);
    sim::Task<void> onAck(net::Message msg, Tick t_rx);
    sim::Task<void> onVal(net::Message msg);
    sim::Task<void> onPersistSc(net::Message msg, Tick t_handle0);

    /** Background tail of the REnf coordinator (post-ACK_C work). */
    sim::Process renfTail(kv::Key key, kv::Timestamp ts);

    // ---- per-model gates ----

    /** Wait until the gating ACK set for client return is complete. */
    sim::Task<void> waitClientGate(PendingTxn &txn);

    /** INV/ACK_C/VAL message flavors for this model. */
    net::MsgType invType() const;
    net::MsgType ackCType() const;
    net::MsgType valCType() const;

    friend class ClusterB;

    sim::Simulator &sim_;
    ClusterB &cluster_;
    const ClusterConfig &cfg_;
    PersistModel model_;
    kv::NodeId id_;

    kv::SimStore store_;
    nvm::DurableLog log_;
    nvm::NvmModel nvm_;

    sim::CorePool cores_;
    sim::Mailbox<net::Message> rx_;
    sim::Condition progress_;

    /**
     * Coordinator transactions keyed by (key, TS_WR): TS_WR versions are
     * per-record, so the key participates in the identity.
     */
    using TxnKey = std::pair<kv::Key, std::uint64_t>;

    struct TxnKeyHash
    {
        std::size_t
        operator()(const TxnKey &k) const noexcept
        {
            return std::hash<std::uint64_t>()(k.first * 0x9E3779B9u) ^
                   std::hash<std::uint64_t>()(k.second);
        }
    };

    static TxnKey
    txnKey(kv::Key key, const kv::Timestamp &ts)
    {
        return {key, ts.pack()};
    }

    std::unordered_map<TxnKey, PendingTxn, TxnKeyHash> pending_;
    /** [PERSIST]sc transactions in flight, keyed by scope. */
    std::unordered_map<net::ScopeId, PendingTxn> scopePending_;
    /** Unpersisted scoped writes on this node, per scope. */
    std::unordered_map<net::ScopeId, int> scopeUnpersisted_;
    /** Per-record guard that keeps locally-issued TS_WR unique. */
    std::unordered_map<kv::Key, std::int64_t> nextLocalVersion_;
    /** Follower-side obsolete-INV count (tests/diagnostics). */
    std::uint64_t obsoleteInvs_ = 0;
    NodeCounters counters_;
};

} // namespace minos::simproto

#endif // MINOS_SIMPROTO_NODE_B_HH
