/**
 * @file
 * The DDP model taxonomy: Linearizable consistency combined with one of
 * five persistency models (paper §II-A).
 *
 * The helpers encode the per-model protocol differences of Fig. 3:
 * which ACK/VAL message types are exchanged, whether the NVM persist is
 * on the write critical path, and whether obsolete-write handling
 * requires the PersistencySpin.
 */

#ifndef MINOS_SIMPROTO_MODELS_HH
#define MINOS_SIMPROTO_MODELS_HH

#include <array>
#include <string_view>

namespace minos::simproto {

/** Persistency model combined with Linearizable consistency. */
enum class PersistModel : std::uint8_t
{
    Synch,  ///< persist with the volatile update, single ACK/VAL
    Strict, ///< split ACK_C/ACK_P and VAL_C/VAL_P, persist before return
    REnf,   ///< read-enforced: persisted by the time any replica is read
    Event,  ///< eventual: persist in the background, no persist messages
    Scope,  ///< eventual within a scope; [PERSIST]sc flushes the scope
};

/** All models, in the paper's presentation order. */
inline constexpr std::array<PersistModel, 5> allModels = {
    PersistModel::Synch, PersistModel::Strict, PersistModel::REnf,
    PersistModel::Event, PersistModel::Scope,
};

/** "<Lin, Synch>"-style display name. */
constexpr std::string_view
modelName(PersistModel m)
{
    switch (m) {
      case PersistModel::Synch: return "<Lin,Synch>";
      case PersistModel::Strict: return "<Lin,Strict>";
      case PersistModel::REnf: return "<Lin,REnf>";
      case PersistModel::Event: return "<Lin,Event>";
      case PersistModel::Scope: return "<Lin,Scope>";
    }
    return "<?>";
}

/** Short name without the consistency prefix. */
constexpr std::string_view
shortModelName(PersistModel m)
{
    switch (m) {
      case PersistModel::Synch: return "Synch";
      case PersistModel::Strict: return "Strict";
      case PersistModel::REnf: return "REnf";
      case PersistModel::Event: return "Event";
      case PersistModel::Scope: return "Scope";
    }
    return "?";
}

/**
 * True if the model separates consistency and persistency
 * acknowledgements (ACK_C / ACK_P). Synch uses a single combined ACK.
 */
constexpr bool
usesSplitAcks(PersistModel m)
{
    return m != PersistModel::Synch;
}

/**
 * True if the NVM persist sits on the write critical path (Fig. 3:
 * "For the rest of the models, persisting the update to NVM is performed
 * outside of the critical path").
 */
constexpr bool
persistOnCriticalPath(PersistModel m)
{
    return m == PersistModel::Synch || m == PersistModel::Strict;
}

/**
 * True if persistency is tracked with ACK_P/VAL_P messages at write
 * granularity. Event never tracks; Scope tracks only at [PERSIST]sc.
 */
constexpr bool
tracksPersistPerWrite(PersistModel m)
{
    return m == PersistModel::Synch || m == PersistModel::Strict ||
           m == PersistModel::REnf;
}

/**
 * True if handleObsolete() must run the PersistencySpin (Fig. 3: Event
 * and Scope skip it; accesses need not stall for outstanding persists).
 */
constexpr bool
needsPersistencySpin(PersistModel m)
{
    return tracksPersistPerWrite(m);
}

/** True for the <Lin, Scope> model (scoped message variants). */
constexpr bool
isScopeModel(PersistModel m)
{
    return m == PersistModel::Scope;
}

} // namespace minos::simproto

#endif // MINOS_SIMPROTO_MODELS_HH
