#include "node_b.hh"

#include "simproto/cluster_b.hh"
#include "simproto/trace_map.hh"

#include "obs/phase.hh"

namespace minos::simproto {

using kv::Key;
using kv::NodeId;
using kv::Record;
using kv::Timestamp;
using kv::Value;
using net::Message;
using net::MsgType;
using net::ScopeId;

NodeB::NodeB(sim::Simulator &sim, ClusterB &cluster,
             const ClusterConfig &cfg, PersistModel model, NodeId id)
    : sim_(sim), cluster_(cluster), cfg_(cfg), model_(model), id_(id),
      store_(cfg.numRecords), nvm_(cfg.persistNsPerKb),
      cores_(sim, cfg.hostCores), rx_(sim), progress_(sim)
{
    sim_.spawn(dispatcher());
}

// ---------------------------------------------------------------------
// Primitives (paper §III-A)
// ---------------------------------------------------------------------

bool
NodeB::obsolete(const Record &rec, const Timestamp &ts) const
{
    return kv::isObsolete(rec, ts);
}

sim::Task<void>
NodeB::handleObsolete(Key key, Timestamp observed)
{
    Record &rec = store_.at(key);
    // ConsistencySpin: wait until the newer write that obsoleted us is
    // visible cluster-wide (its glb_volatileTS reflects it).
    while (rec.glbVolatileTs < observed)
        co_await progress_.wait();
    // PersistencySpin: only models that stall accesses on outstanding
    // persists need it (Fig. 3: Event and Scope skip it).
    if (needsPersistencySpin(model_)) {
        while (rec.glbDurableTs < observed)
            co_await progress_.wait();
    }
}

void
NodeB::snatchRdLock(Record &rec, const Timestamp &ts)
{
    // (i) free -> grab; (ii) held by an older write -> snatch;
    // (iii) held by a younger write -> continue without it.
    if (rec.rdLockOwner < ts) {
        rec.rdLockOwner = ts;
        ++counters_.rdLockSnatches;
    }
}

void
NodeB::releaseRdLockIfOwner(Record &rec, Key key, const Timestamp &ts)
{
    if (rec.rdLockOwner == ts) {
        rec.rdLockOwner = Timestamp::none();
        if (cfg_.trace)
            cfg_.trace->record(sim_.now(), obs::Category::Lock,
                               obs::EventKind::RdLockReleased, id_,
                               static_cast<std::int64_t>(key),
                               static_cast<std::int64_t>(ts.pack()));
        progress_.notifyAll();
    }
}

sim::Task<void>
NodeB::grabWrLock(Record &rec)
{
    for (;;) {
        // One CAS attempt costs the host synchronization latency.
        co_await cores_.compute(cfg_.hostSyncNs);
        if (!rec.wrLock) {
            rec.wrLock = true;
            co_return;
        }
        while (rec.wrLock)
            co_await progress_.wait();
    }
}

void
NodeB::releaseWrLock(Record &rec)
{
    rec.wrLock = false;
    progress_.notifyAll();
}

void
NodeB::raiseGlbVolatile(Record &rec, Key key, const Timestamp &ts)
{
    if (rec.glbVolatileTs < ts) {
        rec.glbVolatileTs = ts;
        traceEvent(obs::Category::Protocol, obs::EventKind::GlbRaised,
                   static_cast<std::int64_t>(key),
                   static_cast<std::int64_t>(ts.pack()), 0);
        progress_.notifyAll();
    }
}

void
NodeB::raiseGlbDurable(Record &rec, Key key, const Timestamp &ts)
{
    if (rec.glbDurableTs < ts) {
        rec.glbDurableTs = ts;
        traceEvent(obs::Category::Protocol, obs::EventKind::GlbRaised,
                   static_cast<std::int64_t>(key),
                   static_cast<std::int64_t>(ts.pack()), 1);
        progress_.notifyAll();
    }
}

Timestamp
NodeB::makeWriteTs(Key key, Record &rec)
{
    // Paper: version = coordinator's volatileTS version + 1. Concurrent
    // local writers would collide on that rule alone, so a per-record
    // monotonic guard keeps locally-issued TS_WR unique; cross-node ties
    // are broken by node_id as usual.
    auto &next = nextLocalVersion_[key];
    std::int64_t ver = std::max(rec.volatileTs.version + 1, next);
    next = ver + 1;
    return Timestamp{ver, id_};
}

sim::Task<void>
NodeB::persistToNvm(Key key, Value value, Timestamp ts, ScopeId)
{
    // The core issues the persist (flush/drain instructions) and then
    // waits for the medium off-core; the event-driven runtime serves
    // other work meanwhile.
    Tick t0 = sim_.now();
    Tick lat = nvm_.persistLatency(cfg_.recordBytes);
    Tick issue = std::min<Tick>(lat, 200);
    co_await cores_.compute(issue);
    co_await sim::delay(lat - issue);
    log_.append({key, value, ts});
    ++counters_.persists;
    traceEvent(obs::Category::Protocol, obs::EventKind::PersistDone,
               static_cast<std::int64_t>(key),
               static_cast<std::int64_t>(ts.pack()));
    obs::recordSpan(cfg_.trace, cfg_.phases, obs::Phase::Persist, t0,
                    sim_.now(), id_,
                    static_cast<std::int64_t>(ts.pack()));
}

void
NodeB::persistInBackground(Key key, Value value, Timestamp ts,
                           ScopeId scope)
{
    if (isScopeModel(model_))
        ++scopeUnpersisted_[scope];
    struct Launcher
    {
        static sim::Process
        run(NodeB *self, Key key, Value value, Timestamp ts,
            ScopeId scope)
        {
            co_await self->persistToNvm(key, value, ts, scope);
            if (isScopeModel(self->model_)) {
                if (--self->scopeUnpersisted_[scope] == 0)
                    self->progress_.notifyAll();
            }
            // The REnf coordinator's background tail gates on the local
            // persist completing.
            auto it = self->pending_.find(txnKey(key, ts));
            if (it != self->pending_.end() && ts.node == self->id_) {
                it->second.localPersistDone = true;
                self->progress_.notifyAll();
            }
        }
    };
    sim_.spawn(Launcher::run(this, key, value, ts, scope));
}

// ---------------------------------------------------------------------
// Message-type selection per model
// ---------------------------------------------------------------------

MsgType
NodeB::invType() const
{
    return isScopeModel(model_) ? MsgType::INV_SC : MsgType::INV;
}

MsgType
NodeB::ackCType() const
{
    if (model_ == PersistModel::Synch)
        return MsgType::ACK;
    return isScopeModel(model_) ? MsgType::ACK_C_SC : MsgType::ACK_C;
}

MsgType
NodeB::valCType() const
{
    switch (model_) {
      case PersistModel::Synch:
      case PersistModel::REnf:
        return MsgType::VAL;
      case PersistModel::Strict:
      case PersistModel::Event:
        return MsgType::VAL_C;
      case PersistModel::Scope:
        return MsgType::VAL_C_SC;
    }
    return MsgType::VAL;
}

// ---------------------------------------------------------------------
// Messaging
// ---------------------------------------------------------------------

void
NodeB::sendInvs(Key key, Value value, Timestamp ts, ScopeId scope)
{
    Message m;
    m.type = invType();
    m.src = id_;
    m.key = key;
    m.tsWr = ts;
    m.value = value;
    m.scope = scope;
    m.sizeBytes = cfg_.recordBytes + net::controlMsgBytes;
    counters_.invsSent += static_cast<std::uint64_t>(cfg_.followers());
    cluster_.multicast(id_, m);
}

void
NodeB::sendVals(MsgType type, Key key, Timestamp ts, ScopeId scope)
{
    Message m;
    m.type = type;
    m.src = id_;
    m.key = key;
    m.tsWr = ts;
    m.scope = scope;
    m.sizeBytes = net::controlMsgBytes;
    counters_.valsSent += static_cast<std::uint64_t>(cfg_.followers());
    traceEvent(obs::Category::Message, obs::EventKind::ValSent,
               static_cast<std::int64_t>(key),
               static_cast<std::int64_t>(ts.pack()),
               static_cast<std::uint16_t>(valFlavorOf(type)));
    cluster_.multicast(id_, m);
}

sim::Task<void>
NodeB::sendResponse(const Message &req, MsgType type, Tick handle_ns)
{
    // Laid before the tx-path compute: the ACK certifies this node's
    // state at the moment it decides to acknowledge.
    if (type == MsgType::ACK_P_SC)
        traceEvent(obs::Category::Protocol, obs::EventKind::AckSent,
                   static_cast<std::int64_t>(req.scope), 0,
                   obs::ackAux(ackFlavorOf(type), id_));
    else
        traceEvent(obs::Category::Protocol, obs::EventKind::AckSent,
                   static_cast<std::int64_t>(req.key),
                   static_cast<std::int64_t>(req.tsWr.pack()),
                   obs::ackAux(ackFlavorOf(type), id_));
    co_await cores_.compute(cfg_.hostSendNs);
    ++counters_.acksSent;
    Message resp = net::makeResponse(req, type);
    resp.handleNs = handle_ns;
    cluster_.unicast(resp);
}

void
NodeB::deliver(Message msg)
{
    rx_.send(std::move(msg));
}

// ---------------------------------------------------------------------
// Client-write (Coordinator, Fig. 2 left / Fig. 3 deltas)
// ---------------------------------------------------------------------

sim::Task<OpStats>
NodeB::clientWrite(Key key, Value value, ScopeId scope)
{
    OpStats st;
    Tick t0 = sim_.now();
    ++counters_.writesCoordinated;
    co_await cores_.compute(cfg_.clientReqNs);

    Record &rec = store_.at(key);
    Timestamp ts = makeWriteTs(key, rec);
    traceEvent(obs::Category::Protocol, obs::EventKind::ClientOpBegin,
               static_cast<std::int64_t>(key),
               static_cast<std::int64_t>(ts.pack()),
               obs::opAux(obs::OpType::Write, false));

    // Line 5: early obsoleteness check.
    if (obsolete(rec, ts)) {
        Timestamp observed = rec.volatileTs;
        co_await handleObsolete(key, observed);
        st.obsolete = true;
        st.latencyNs = sim_.now() - t0;
        st.compNs = static_cast<double>(st.latencyNs);
        traceEvent(obs::Category::Protocol,
                   obs::EventKind::ClientOpEnd,
                   static_cast<std::int64_t>(key),
                   static_cast<std::int64_t>(ts.pack()),
                   obs::opAux(obs::OpType::Write, true));
        co_return st;
    }

    // Line 8: Snatch RDLock (one CAS).
    Tick t_lock0 = sim_.now();
    co_await cores_.compute(cfg_.hostSyncNs);
    snatchRdLock(rec, ts);

    // Line 9: grab WRLock (spin).
    co_await grabWrLock(rec);
    Tick t_lock1 = sim_.now();

    bool sent = false;
    PendingTxn *txn = nullptr;
    // Line 10: final timestamp check under the WRLock.
    if (!obsolete(rec, ts)) {
        auto [it, inserted] = pending_.emplace(txnKey(key, ts), PendingTxn{});
        MINOS_ASSERT(inserted, "duplicate TS_WR ", ts);
        txn = &it->second;
        txn->needed = cfg_.followers();

        // Line 11: send INVs to all Followers.
        co_await cores_.compute(
            opts().batching ? cfg_.hostSendNs
                            : cfg_.hostSendNs * cfg_.followers());
        txn->tFirstSend = sim_.now();
        sendInvs(key, value, ts, scope);
        traceEvent(obs::Category::Message, obs::EventKind::InvFanout,
                   static_cast<std::int64_t>(key),
                   static_cast<std::int64_t>(ts.pack()));
        if (isScopeModel(model_))
            traceEvent(obs::Category::Protocol,
                       obs::EventKind::ScopeMark,
                       (static_cast<std::int64_t>(scope) << 32) |
                           static_cast<std::int64_t>(key),
                       static_cast<std::int64_t>(ts.pack()));
        obs::recordSpan(cfg_.trace, cfg_.phases, obs::Phase::LockWait,
                        t_lock0, t_lock1, id_,
                        static_cast<std::int64_t>(ts.pack()));
        obs::recordSpan(cfg_.trace, cfg_.phases, obs::Phase::InvFanout,
                        t_lock1, txn->tFirstSend, id_,
                        static_cast<std::int64_t>(ts.pack()));
        sent = true;

        // Line 12: update local volatile state (LLC) + volatileTS.
        co_await cores_.compute(cfg_.llcWriteNs);
        rec.value = value;
        rec.volatileTs = ts;
        progress_.notifyAll();

        // Line 13: release WRLock.
        releaseWrLock(rec);
    } else {
        st.obsolete = true;
        ++counters_.writesObsoleteCut;
        traceEvent(obs::Category::Protocol,
                   obs::EventKind::InvObsolete,
                   static_cast<std::int64_t>(key),
                   static_cast<std::int64_t>(ts.pack()));
        Timestamp observed = rec.volatileTs;
        // Lines 15-16: release WRLock first, then handleObsolete.
        releaseWrLock(rec);
        co_await handleObsolete(key, observed);
        // Lines 20-21 apply on this path too: if the (already complete)
        // newer write released the RDLock before our snatch, we may be a
        // stale owner; release so reads are not blocked forever.
        releaseRdLockIfOwner(rec, key, ts);
    }

    if (!sent) {
        st.latencyNs = sim_.now() - t0;
        st.compNs = static_cast<double>(st.latencyNs);
        traceEvent(obs::Category::Protocol,
                   obs::EventKind::ClientOpEnd,
                   static_cast<std::int64_t>(key),
                   static_cast<std::int64_t>(ts.pack()),
                   obs::opAux(obs::OpType::Write, true));
        co_return st;
    }

    if (cfg_.mutations.releaseRdLockEarly)
        releaseRdLockIfOwner(rec, key, ts);

    // Line 18 / Fig. 3 step d: persist to NVM (critical path only for
    // Synch and Strict; background otherwise).
    if (persistOnCriticalPath(model_)) {
        co_await persistToNvm(key, value, ts, scope);
        txn->localPersistDone = true;
    } else {
        persistInBackground(key, value, ts, scope);
    }

    // Line 19 / Fig. 3 step e: wait for the gating ACK set.
    co_await waitClientGate(*txn);
    Tick t_gate = sim_.now();

    // Post-gate per-model completion (Fig. 2 lines 20-22, Fig. 3 f).
    // Retiring the txn erases its pending_ entry, so snapshot the timing
    // fields needed for the comm/comp split before the erase.
    PendingTxn done;
    switch (model_) {
      case PersistModel::Synch:
        raiseGlbVolatile(rec, key, ts);
        raiseGlbDurable(rec, key, ts);
        releaseRdLockIfOwner(rec, key, ts);
        co_await cores_.compute(cfg_.hostSendNs * cfg_.followers());
        sendVals(MsgType::VAL, key, ts, scope);
        done = *txn;
        pending_.erase(txnKey(key, ts));
        break;

      case PersistModel::Strict: {
        // Gate was ACK_C; send VAL_Cs, then spin for ACK_Ps, then
        // VAL_Ps (Fig. 3(i) step f).
        raiseGlbVolatile(rec, key, ts);
        releaseRdLockIfOwner(rec, key, ts);
        co_await cores_.compute(cfg_.hostSendNs * cfg_.followers());
        sendVals(MsgType::VAL_C, key, ts, scope);
        while (txn->acksP < persistNeeded(*txn) ||
               !txn->localPersistDone)
            co_await progress_.wait();
        raiseGlbDurable(rec, key, ts);
        co_await cores_.compute(cfg_.hostSendNs * cfg_.followers());
        sendVals(MsgType::VAL_P, key, ts, scope);
        done = *txn;
        pending_.erase(txnKey(key, ts));
        break;
      }

      case PersistModel::REnf:
        // Return to the client after all ACK_Cs; the RDLock stays held
        // and VALs go out when all ACK_Ps have arrived (Fig. 3(iii)).
        raiseGlbVolatile(rec, key, ts);
        done = *txn;
        sim_.spawn(renfTail(key, ts));
        break;

      case PersistModel::Event:
      case PersistModel::Scope:
        raiseGlbVolatile(rec, key, ts);
        releaseRdLockIfOwner(rec, key, ts);
        co_await cores_.compute(cfg_.hostSendNs * cfg_.followers());
        sendVals(valCType(), key, ts, scope);
        done = *txn;
        pending_.erase(txnKey(key, ts));
        break;
    }

    // Spans for the gather/completion phases; every timestamp was taken
    // at an await point the protocol already had, so recording them
    // never moves simulated time.
    if (cfg_.trace || cfg_.phases) {
        auto token = static_cast<std::int64_t>(ts.pack());
        if (done.tGateAck >= done.tFirstSend && done.handleCnt > 0)
            obs::recordSpan(cfg_.trace, cfg_.phases,
                            obs::Phase::AckGather, done.tFirstSend,
                            done.tGateAck, id_, token);
        obs::recordSpan(cfg_.trace, cfg_.phases, obs::Phase::Val,
                        t_gate, sim_.now(), id_, token);
    }

    st.latencyNs = sim_.now() - t0;
    // Communication/computation split (paper §IV): message in-flight
    // window minus the average follower handling time.
    if (done.handleCnt > 0 && done.tGateAck > done.tFirstSend) {
        double handle_avg = static_cast<double>(done.handleNsSum) /
                            done.handleCnt;
        double comm =
            static_cast<double>(done.tGateAck - done.tFirstSend) -
            handle_avg;
        if (comm < 0)
            comm = 0;
        if (comm > static_cast<double>(st.latencyNs))
            comm = static_cast<double>(st.latencyNs);
        st.commNs = comm;
    }
    st.compNs = static_cast<double>(st.latencyNs) - st.commNs;
    traceEvent(obs::Category::Protocol, obs::EventKind::ClientOpEnd,
               static_cast<std::int64_t>(key),
               static_cast<std::int64_t>(ts.pack()),
               obs::opAux(obs::OpType::Write, false));
    co_return st;
}

sim::Task<void>
NodeB::waitClientGate(PendingTxn &txn)
{
    switch (model_) {
      case PersistModel::Synch:
        while (txn.acks < txn.needed)
            co_await progress_.wait();
        break;
      case PersistModel::Strict:
        while (txn.acksC < txn.needed)
            co_await progress_.wait();
        // Client return additionally needs all ACK_Ps; but VAL_C goes
        // out first (handled by the caller).
        break;
      case PersistModel::REnf:
      case PersistModel::Event:
      case PersistModel::Scope:
        while (txn.acksC < txn.needed)
            co_await progress_.wait();
        break;
    }
}

sim::Process
NodeB::renfTail(Key key, Timestamp ts)
{
    Record &rec = store_.at(key);
    auto it = pending_.find(txnKey(key, ts));
    MINOS_ASSERT(it != pending_.end(), "REnf tail without pending txn");
    PendingTxn &txn = it->second;
    while (txn.acksP < persistNeeded(txn) || !txn.localPersistDone)
        co_await progress_.wait();
    raiseGlbDurable(rec, key, ts);
    releaseRdLockIfOwner(rec, key, ts);
    co_await cores_.compute(cfg_.hostSendNs * cfg_.followers());
    sendVals(MsgType::VAL, key, ts, /*scope=*/0);
    pending_.erase(txnKey(key, ts));
}

// ---------------------------------------------------------------------
// Client-read (paper §III-D)
// ---------------------------------------------------------------------

sim::Task<OpStats>
NodeB::clientRead(Key key)
{
    OpStats st;
    Tick t0 = sim_.now();
    traceEvent(obs::Category::Protocol, obs::EventKind::ClientOpBegin,
               static_cast<std::int64_t>(key), 0,
               obs::opAux(obs::OpType::Read, false));
    co_await cores_.compute(cfg_.clientReqNs);
    Record &rec = store_.at(key);
    // A read stalls only while the RDLock is taken by a write.
    while (!rec.rdLockFree())
        co_await progress_.wait();
    co_await cores_.compute(cfg_.llcReadNs);
    st.value = rec.value;
    // The end record carries the observed write's TS so the auditors
    // can tie the read into that write's causal timeline.
    traceEvent(obs::Category::Protocol, obs::EventKind::ClientOpEnd,
               static_cast<std::int64_t>(key),
               static_cast<std::int64_t>(rec.volatileTs.pack()),
               obs::opAux(obs::OpType::Read, false));
    st.latencyNs = sim_.now() - t0;
    st.compNs = static_cast<double>(st.latencyNs);
    co_return st;
}

// ---------------------------------------------------------------------
// [PERSIST]sc transaction (<Lin, Scope>, paper §III-C)
// ---------------------------------------------------------------------

sim::Task<OpStats>
NodeB::persistScope(ScopeId scope)
{
    OpStats st;
    Tick t0 = sim_.now();
    if (!isScopeModel(model_))
        co_return st;

    traceEvent(obs::Category::Protocol, obs::EventKind::ClientOpBegin,
               static_cast<std::int64_t>(scope), 0,
               obs::opAux(obs::OpType::PersistSc, false));
    co_await cores_.compute(cfg_.clientReqNs);
    auto [it, inserted] = scopePending_.emplace(scope, PendingTxn{});
    MINOS_ASSERT(inserted, "duplicate [PERSIST]sc for scope ", scope);
    PendingTxn &txn = it->second;
    txn.needed = cfg_.followers();

    // Send [PERSIST]sc to all followers.
    co_await cores_.compute(cfg_.hostSendNs * cfg_.followers());
    Message m;
    m.type = MsgType::PERSIST_SC;
    m.src = id_;
    m.scope = scope;
    m.sizeBytes = net::controlMsgBytes;
    cluster_.multicast(id_, m);

    // Complete persisting all local WRs inside the scope, then the
    // [PERSIST]sc marker itself.
    while (scopeUnpersisted_[scope] > 0)
        co_await progress_.wait();
    co_await cores_.compute(nvm_.persistLatency(net::controlMsgBytes));

    // Spin for all [ACK_P]sc, then send [VAL_P]sc.
    while (txn.acksP < txn.needed)
        co_await progress_.wait();
    co_await cores_.compute(cfg_.hostSendNs * cfg_.followers());
    traceEvent(obs::Category::Protocol, obs::EventKind::ValSent,
               static_cast<std::int64_t>(scope), 0,
               static_cast<std::uint16_t>(obs::ValFlavor::ValPSc));
    Message val;
    val.type = MsgType::VAL_P_SC;
    val.src = id_;
    val.scope = scope;
    val.sizeBytes = net::controlMsgBytes;
    cluster_.multicast(id_, val);
    scopePending_.erase(scope);

    traceEvent(obs::Category::Protocol, obs::EventKind::ClientOpEnd,
               static_cast<std::int64_t>(scope), 0,
               obs::opAux(obs::OpType::PersistSc, false));
    st.latencyNs = sim_.now() - t0;
    st.compNs = static_cast<double>(st.latencyNs);
    co_return st;
}

// ---------------------------------------------------------------------
// Receive side
// ---------------------------------------------------------------------

sim::Process
NodeB::dispatcher()
{
    for (;;) {
        Message m = co_await rx_.recv();
        sim_.spawn(handleMessage(std::move(m)));
    }
}

sim::Process
NodeB::handleMessage(Message msg)
{
    // Handling time starts when the message sits in the host receive
    // queue (paper SIV's communication/computation boundary).
    Tick t_rx = sim_.now();
    co_await cores_.compute(cfg_.dispatchNs);
    switch (msg.type) {
      case MsgType::INV:
      case MsgType::INV_SC:
        ++counters_.invsReceived;
        co_await onInv(msg, t_rx);
        break;
      case MsgType::ACK:
      case MsgType::ACK_C:
      case MsgType::ACK_P:
      case MsgType::ACK_C_SC:
      case MsgType::ACK_P_SC:
        ++counters_.acksReceived;
        co_await onAck(msg, t_rx);
        break;
      case MsgType::VAL:
      case MsgType::VAL_C:
      case MsgType::VAL_P:
      case MsgType::VAL_C_SC:
      case MsgType::VAL_P_SC:
        ++counters_.valsReceived;
        co_await onVal(msg);
        break;
      case MsgType::PERSIST_SC:
        co_await onPersistSc(msg, t_rx);
        break;
    }
}

sim::Task<void>
NodeB::onInv(Message msg, Tick t_handle0)
{
    Record &rec = store_.at(msg.key);

    // Lines 27-30: obsolete INV -> spin as required, then ACK as if the
    // write was performed. The VAL received later is discarded.
    if (obsolete(rec, msg.tsWr)) {
        ++obsoleteInvs_;
        ++counters_.invsObsolete;
        if (cfg_.trace)
            cfg_.trace->record(sim_.now(), obs::Category::Protocol,
                               obs::EventKind::InvObsolete, id_,
                               static_cast<std::int64_t>(msg.key),
                               static_cast<std::int64_t>(
                                   msg.tsWr.pack()));
        Timestamp observed = rec.volatileTs;
        if (usesSplitAcks(model_)) {
            // Fig. 3(ii)/(iv)/(vi)/(viii): ConsistencySpin, ACK_C, then
            // (Strict/REnf only) PersistencySpin, ACK_P.
            while (rec.glbVolatileTs < observed)
                co_await progress_.wait();
            co_await sendResponse(msg, ackCType(),
                                  sim_.now() - t_handle0);
            if (tracksPersistPerWrite(model_)) {
                while (rec.glbDurableTs < observed)
                    co_await progress_.wait();
                co_await sendResponse(msg, MsgType::ACK_P,
                                      sim_.now() - t_handle0);
            }
        } else {
            co_await handleObsolete(msg.key, observed);
            co_await sendResponse(msg, MsgType::ACK,
                                  sim_.now() - t_handle0);
        }
        co_return;
    }

    // Lines 31-33: snatch RDLock, grab WRLock.
    co_await cores_.compute(cfg_.hostSyncNs);
    snatchRdLock(rec, msg.tsWr);
    co_await grabWrLock(rec);

    // Lines 34-38: re-check, update LLC or handle obsolete.
    if (!obsolete(rec, msg.tsWr)) {
        co_await cores_.compute(cfg_.llcWriteNs);
        rec.value = msg.value;
        rec.volatileTs = msg.tsWr;
        if (cfg_.trace)
            cfg_.trace->record(sim_.now(), obs::Category::Protocol,
                               obs::EventKind::InvApplied, id_,
                               static_cast<std::int64_t>(msg.key),
                               static_cast<std::int64_t>(
                                   msg.tsWr.pack()));
        progress_.notifyAll();
        releaseWrLock(rec);
    } else {
        ++obsoleteInvs_;
        traceEvent(obs::Category::Protocol, obs::EventKind::InvObsolete,
                   static_cast<std::int64_t>(msg.key),
                   static_cast<std::int64_t>(msg.tsWr.pack()));
        Timestamp observed = rec.volatileTs;
        releaseWrLock(rec);
        if (usesSplitAcks(model_)) {
            while (rec.glbVolatileTs < observed)
                co_await progress_.wait();
            co_await sendResponse(msg, ackCType(),
                                  sim_.now() - t_handle0);
            if (tracksPersistPerWrite(model_)) {
                while (rec.glbDurableTs < observed)
                    co_await progress_.wait();
                co_await sendResponse(msg, MsgType::ACK_P,
                                      sim_.now() - t_handle0);
            }
        } else {
            co_await handleObsolete(msg.key, observed);
            co_await sendResponse(msg, MsgType::ACK,
                                  sim_.now() - t_handle0);
        }
        // We snatched before discovering obsoleteness; if the newer
        // write already came and went, we are a stale owner — release
        // so local reads are not blocked forever.
        releaseRdLockIfOwner(rec, msg.key, msg.tsWr);
        co_return;
    }

    // Lines 39-40 / Fig. 3 follower deltas: persist + acknowledge.
    switch (model_) {
      case PersistModel::Synch:
        // Persist in the critical path, then the single combined ACK.
        if (cfg_.mutations.ackBeforePersist) {
            // Mutation: acknowledge durability before it exists.
            co_await sendResponse(msg, MsgType::ACK,
                                  sim_.now() - t_handle0);
            co_await persistToNvm(msg.key, msg.value, msg.tsWr,
                                  msg.scope);
        } else {
            co_await persistToNvm(msg.key, msg.value, msg.tsWr,
                                  msg.scope);
            co_await sendResponse(msg, MsgType::ACK,
                                  sim_.now() - t_handle0);
        }
        if (cfg_.mutations.duplicateAck)
            co_await sendResponse(msg, MsgType::ACK,
                                  sim_.now() - t_handle0);
        break;

      case PersistModel::Strict:
      case PersistModel::REnf:
        // ACK_C right after the LLC update; ACK_P after the persist.
        co_await sendResponse(msg, MsgType::ACK_C,
                              sim_.now() - t_handle0);
        if (cfg_.mutations.duplicateAck)
            co_await sendResponse(msg, MsgType::ACK_C,
                                  sim_.now() - t_handle0);
        if (cfg_.mutations.ackBeforePersist) {
            co_await sendResponse(msg, MsgType::ACK_P,
                                  sim_.now() - t_handle0);
            co_await persistToNvm(msg.key, msg.value, msg.tsWr,
                                  msg.scope);
        } else {
            co_await persistToNvm(msg.key, msg.value, msg.tsWr,
                                  msg.scope);
            co_await sendResponse(msg, MsgType::ACK_P,
                                  sim_.now() - t_handle0);
        }
        break;

      case PersistModel::Event:
      case PersistModel::Scope:
        // ACK_C after the LLC update; persist in the background.
        co_await sendResponse(msg, ackCType(), sim_.now() - t_handle0);
        if (cfg_.mutations.duplicateAck)
            co_await sendResponse(msg, ackCType(),
                                  sim_.now() - t_handle0);
        persistInBackground(msg.key, msg.value, msg.tsWr, msg.scope);
        break;
    }
}

sim::Task<void>
NodeB::onAck(Message msg, Tick t_rx)
{
    co_await cores_.compute(cfg_.bookkeepNs);
    // Recorded before the pending-table lookups so stray ACKs (for
    // already-retired transactions) are still visible to the auditors.
    if (msg.type == MsgType::ACK_P_SC)
        traceEvent(obs::Category::Protocol, obs::EventKind::AckReceived,
                   static_cast<std::int64_t>(msg.scope), 0,
                   obs::ackAux(ackFlavorOf(msg.type), msg.src));
    else
        traceEvent(obs::Category::Protocol, obs::EventKind::AckReceived,
                   static_cast<std::int64_t>(msg.key),
                   static_cast<std::int64_t>(msg.tsWr.pack()),
                   obs::ackAux(ackFlavorOf(msg.type), msg.src));
    if (msg.type == MsgType::ACK_P_SC) {
        // [PERSIST]sc acknowledgement.
        auto it = scopePending_.find(msg.scope);
        if (it != scopePending_.end()) {
            ++it->second.acksP;
            progress_.notifyAll();
        }
        co_return;
    }

    auto it = pending_.find(txnKey(msg.key, msg.tsWr));
    if (it == pending_.end())
        co_return; // stray ACK for a completed transaction
    PendingTxn &txn = it->second;

    // Which ACK family gates the client response for this model?
    MsgType gate;
    switch (model_) {
      case PersistModel::Synch: gate = MsgType::ACK; break;
      case PersistModel::Strict: gate = MsgType::ACK_P; break;
      case PersistModel::Scope: gate = MsgType::ACK_C_SC; break;
      default: gate = MsgType::ACK_C; break;
    }

    switch (msg.type) {
      case MsgType::ACK: ++txn.acks; break;
      case MsgType::ACK_C:
      case MsgType::ACK_C_SC: ++txn.acksC; break;
      case MsgType::ACK_P: ++txn.acksP; break;
      default:
        MINOS_PANIC("unexpected ACK type ", net::msgTypeName(msg.type));
    }
    if (msg.type == gate) {
        // The communication window ends when the ACK reaches the host
        // receive queue (paper SIV), not when this handler runs.
        txn.tGateAck = t_rx;
        txn.handleNsSum += msg.handleNs;
        ++txn.handleCnt;
    }
    progress_.notifyAll();
}

sim::Task<void>
NodeB::onVal(Message msg)
{
    co_await cores_.compute(cfg_.bookkeepNs);
    Record &rec = store_.at(msg.key);
    switch (msg.type) {
      case MsgType::VAL:
        // Synch and REnf: single VAL marks consistency + persistency.
        raiseGlbVolatile(rec, msg.key, msg.tsWr);
        raiseGlbDurable(rec, msg.key, msg.tsWr);
        releaseRdLockIfOwner(rec, msg.key, msg.tsWr);
        break;
      case MsgType::VAL_C:
      case MsgType::VAL_C_SC:
        raiseGlbVolatile(rec, msg.key, msg.tsWr);
        releaseRdLockIfOwner(rec, msg.key, msg.tsWr);
        break;
      case MsgType::VAL_P:
        raiseGlbDurable(rec, msg.key, msg.tsWr);
        break;
      case MsgType::VAL_P_SC:
        // Terminates the [PERSIST]sc transaction at the follower.
        break;
      default:
        MINOS_PANIC("unexpected VAL type ", net::msgTypeName(msg.type));
    }
    co_return;
}

sim::Task<void>
NodeB::onPersistSc(Message msg, Tick t_handle0)
{
    // Complete persisting all WRs of the scope, persist the [PERSIST]sc
    // itself, then acknowledge. The ackBeforePersist mutation skips the
    // scope-flush wait, certifying durability the node does not have.
    if (!cfg_.mutations.ackBeforePersist) {
        while (scopeUnpersisted_[msg.scope] > 0)
            co_await progress_.wait();
    }
    co_await cores_.compute(nvm_.persistLatency(net::controlMsgBytes));
    co_await sendResponse(msg, MsgType::ACK_P_SC, sim_.now() - t_handle0);
}

// ---------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------

nvm::DurableDb
NodeB::durableDb() const
{
    nvm::DurableDb db;
    log_.applyTo(db);
    return db;
}

const OffloadOptions &
NodeB::opts() const
{
    return cluster_.options();
}

} // namespace minos::simproto
