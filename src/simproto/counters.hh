/**
 * @file
 * Per-node protocol counters (observability).
 *
 * Both engines count their protocol activity at the natural
 * chokepoints: message fan-outs, receive-side dispatch, obsoleteness
 * cuts, lock operations, and persists. Tests use them to assert
 * message-complexity properties (e.g. one INV per follower per
 * non-obsolete write); tools print them for run diagnosis.
 */

#ifndef MINOS_SIMPROTO_COUNTERS_HH
#define MINOS_SIMPROTO_COUNTERS_HH

#include <cstdint>
#include <string>

namespace minos::obs {
class MetricsRegistry;
} // namespace minos::obs

namespace minos::simproto {

/** Protocol activity of one node. */
struct NodeCounters
{
    // Sends (per destination message, i.e. a fan-out of N counts N).
    std::uint64_t invsSent = 0;
    std::uint64_t valsSent = 0;
    std::uint64_t acksSent = 0;

    // Receive-side dispatch.
    std::uint64_t invsReceived = 0;
    std::uint64_t acksReceived = 0;
    std::uint64_t valsReceived = 0;

    // Protocol events.
    std::uint64_t writesCoordinated = 0;
    std::uint64_t writesObsoleteCut = 0; ///< coordinator-side cuts
    std::uint64_t invsObsolete = 0;      ///< follower-side cuts
    std::uint64_t rdLockSnatches = 0;    ///< owner actually changed
    std::uint64_t persists = 0;          ///< durable-log appends

    /** Element-wise accumulation (cluster aggregation). */
    NodeCounters &operator+=(const NodeCounters &o);

    /** Multi-line human-readable rendering. */
    std::string str() const;

    /** Publish every field as "<prefix><name>" counters. */
    void registerInto(obs::MetricsRegistry &reg,
                      const std::string &prefix) const;
};

} // namespace minos::simproto

#endif // MINOS_SIMPROTO_COUNTERS_HH
