/**
 * @file
 * Leader-based baseline cluster (paper §I/§II-A context).
 *
 * The DDP protocols are *leaderless*: any node coordinates writes. The
 * paper argues this "delivers higher performance and is scalable"
 * compared to leader-based systems, where all write requests must be
 * initiated by one leader node. This baseline makes that comparison
 * measurable: it runs the identical MINOS-B protocol engine, but every
 * write is forwarded over the network to a fixed leader, which acts as
 * the sole coordinator. Reads remain local (the RDLock/VAL machinery
 * keeps them linearizable exactly as in the leaderless design).
 *
 * Expected shape (see bench/leader_baseline): the leader's host cores
 * and links saturate at roughly one node's coordination capacity, so
 * cluster write throughput stays flat as nodes are added, while the
 * leaderless engine scales — and non-leader writes pay the extra
 * forwarding round trip.
 */

#ifndef MINOS_SIMPROTO_CLUSTER_LEADER_HH
#define MINOS_SIMPROTO_CLUSTER_LEADER_HH

#include <memory>
#include <vector>

#include "sim/network.hh"
#include "simproto/cluster_b.hh"

namespace minos::simproto {

/** Leader-based variant: all writes coordinated by a fixed leader. */
class ClusterLeader : public DdpCluster
{
  public:
    ClusterLeader(sim::Simulator &sim, const ClusterConfig &cfg,
                  PersistModel model, kv::NodeId leader = 0);

    sim::Task<OpStats> clientWrite(kv::NodeId node, kv::Key key,
                                   kv::Value value,
                                   net::ScopeId scope) override;
    sim::Task<OpStats> clientRead(kv::NodeId node, kv::Key key) override;
    sim::Task<OpStats> persistScope(kv::NodeId node,
                                    net::ScopeId scope) override;

    int numNodes() const override { return inner_.numNodes(); }
    PersistModel model() const override { return inner_.model(); }

    kv::NodeId leader() const { return leader_; }
    NodeB &node(kv::NodeId id) { return inner_.node(id); }
    const ClusterConfig &config() const { return inner_.config(); }

  private:
    /** Forwarding leg: origin host -> leader host (or back). */
    struct ForwardPath
    {
        ForwardPath(sim::Simulator &sim, const ClusterConfig &cfg)
            : toLeader(sim, 2 * cfg.pcieLatencyNs + cfg.netLatencyNs,
                       cfg.pcieBwBytesPerSec,
                       2 * cfg.pcieMsgOverheadNs),
              fromLeader(sim, 2 * cfg.pcieLatencyNs + cfg.netLatencyNs,
                         cfg.pcieBwBytesPerSec,
                         2 * cfg.pcieMsgOverheadNs)
        {
        }

        sim::Link toLeader;
        sim::Link fromLeader;
    };

    sim::Simulator &sim_;
    ClusterB inner_;
    kv::NodeId leader_;
    std::vector<std::unique_ptr<ForwardPath>> paths_;
};

} // namespace minos::simproto

#endif // MINOS_SIMPROTO_CLUSTER_LEADER_HH
