#include "driver.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "obs/audit.hh"
#include "sim/condition.hh"

namespace minos::simproto {

namespace {

/** Shared run state mutated by the (single-threaded) sim workers. */
struct RunState
{
    RunResult result;
    Tick lastCompletion = 0;
};

sim::Process
worker(sim::Simulator *sim, DdpCluster *cluster, RunState *state,
       kv::NodeId node, int worker_idx, std::vector<workload::Op> ops,
       int scope_size, sim::WaitGroup *wg)
{
    const bool scoped = cluster->model() == PersistModel::Scope;
    // Scope ids must be globally unique: compose node/worker/sequence.
    net::ScopeId scope_seq = 0;
    auto make_scope = [&] {
        return (static_cast<net::ScopeId>(node) << 24) |
               (static_cast<net::ScopeId>(worker_idx) << 16) |
               ++scope_seq;
    };
    net::ScopeId scope = scoped ? make_scope() : 0;
    int writes_in_scope = 0;

    for (const auto &op : ops) {
        // Read-modify-write (YCSB F) is a read followed by a write to
        // the same key.
        if (op.type == workload::OpType::Read ||
            op.type == workload::OpType::ReadModifyWrite) {
            OpStats st = co_await cluster->clientRead(node, op.key);
            state->result.readLat.add(st.latencyNs);
            ++state->result.reads;
        }
        if (op.type == workload::OpType::Write ||
            op.type == workload::OpType::ReadModifyWrite) {
            OpStats st =
                co_await cluster->clientWrite(node, op.key, op.value,
                                              scope);
            state->result.writeLat.add(st.latencyNs);
            state->result.breakdown.add(st.commNs, st.compNs);
            ++state->result.writes;
            if (st.obsolete)
                ++state->result.obsoleteWrites;
            if (scoped && ++writes_in_scope >= scope_size) {
                OpStats ps = co_await cluster->persistScope(node, scope);
                state->result.persistLat.add(ps.latencyNs);
                scope = make_scope();
                writes_in_scope = 0;
            }
        }
        state->lastCompletion =
            std::max(state->lastCompletion, sim->now());
    }
    // Close the trailing scope so its writes get persisted.
    if (scoped && writes_in_scope > 0) {
        OpStats ps = co_await cluster->persistScope(node, scope);
        state->result.persistLat.add(ps.latencyNs);
        state->lastCompletion =
            std::max(state->lastCompletion, sim->now());
    }
    wg->done();
}

} // namespace

RunResult
runWorkload(sim::Simulator &sim, DdpCluster &cluster,
            const DriverConfig &driver_cfg)
{
    RunState state;
    sim::WaitGroup wg(sim);

    int workers = driver_cfg.workersPerNode;
    if (workers <= 0)
        workers = 5; // one per busy host core (Table II)

    for (int n = 0; n < cluster.numNodes(); ++n) {
        workload::YcsbGenerator gen(driver_cfg.ycsb,
                                    static_cast<std::uint32_t>(n));
        auto ops = gen.stream(driver_cfg.requestsPerNode);
        // Deal the node's stream round-robin to its workers.
        std::vector<std::vector<workload::Op>> shares(
            static_cast<std::size_t>(workers));
        for (std::size_t i = 0; i < ops.size(); ++i)
            shares[i % static_cast<std::size_t>(workers)].push_back(
                ops[i]);
        for (int w = 0; w < workers; ++w) {
            wg.add();
            sim.spawn(worker(&sim, &cluster, &state,
                             static_cast<kv::NodeId>(n), w,
                             std::move(shares[static_cast<std::size_t>(
                                 w)]),
                             driver_cfg.scopeSize, &wg));
        }
    }

    sim.run();
    MINOS_ASSERT(wg.count() == 0,
                 "workload did not finish: ", wg.count(),
                 " workers still pending (protocol deadlock?)");
    // Quiescence: give the auditors their end-of-run pass (e.g. "every
    // applied write is durable everywhere by now").
    if (cluster.config().audit)
        cluster.config().audit->finish();
    state.result.duration = state.lastCompletion;
    state.result.eventCore = sim.counters();
    return state.result;
}

void
registerRunMetrics(obs::MetricsRegistry &reg, const std::string &prefix,
                   const RunResult &res)
{
    reg.counter(prefix + "writes", res.writes);
    reg.counter(prefix + "reads", res.reads);
    reg.counter(prefix + "obsolete_writes", res.obsoleteWrites);
    reg.gauge(prefix + "duration_ns", static_cast<double>(res.duration));
    reg.gauge(prefix + "write_tput_ops", res.writeThroughput());
    reg.gauge(prefix + "read_tput_ops", res.readThroughput());
    reg.gauge(prefix + "total_tput_ops", res.totalThroughput());
    if (!res.writeLat.empty())
        reg.histogram(prefix + "write_lat_ns", res.writeLat);
    if (!res.readLat.empty())
        reg.histogram(prefix + "read_lat_ns", res.readLat);
    if (!res.persistLat.empty())
        reg.histogram(prefix + "persist_lat_ns", res.persistLat);
    if (res.breakdown.count > 0) {
        reg.gauge(prefix + "write_comm_ns", res.breakdown.meanComm());
        reg.gauge(prefix + "write_comp_ns", res.breakdown.meanComp());
    }
    obs::registerEventCore(reg, prefix + "sim.", res.eventCore);
}

namespace {

sim::Process
microWorker(sim::Simulator *sim, DdpCluster *cluster,
            MicroserviceResult *result, const workload::FunctionSpec spec,
            kv::NodeId node, int worker_idx, int invocations,
            std::uint64_t num_records, std::uint64_t seed,
            sim::WaitGroup *wg)
{
    Rng rng(seed * 0x2545F4914F6CDD1Dull + node * 131 + worker_idx);
    UniformKeys keys(num_records);
    std::uint64_t next_value =
        (static_cast<std::uint64_t>(node) << 40) |
        (static_cast<std::uint64_t>(worker_idx) << 32);
    const bool scoped = cluster->model() == PersistModel::Scope;
    net::ScopeId scope_seq = 0;

    for (int i = 0; i < invocations; ++i) {
        Tick t0 = sim->now();
        // Client -> service round trip(s) over the datacenter network.
        co_await sim::delay(spec.serviceRtts * spec.rttNs);
        auto ops = workload::invocationOps(spec, keys, rng, next_value);
        net::ScopeId scope = 0;
        if (scoped) {
            scope = (static_cast<net::ScopeId>(node) << 20) |
                    (static_cast<net::ScopeId>(worker_idx) << 16) |
                    ++scope_seq;
        }
        for (const auto &op : ops) {
            if (op.type == workload::OpType::Write)
                co_await cluster->clientWrite(node, op.key, op.value,
                                              scope);
            else
                co_await cluster->clientRead(node, op.key);
        }
        if (scoped)
            co_await cluster->persistScope(node, scope);
        result->e2eLat.add(sim->now() - t0);
    }
    wg->done();
}

} // namespace

MicroserviceResult
runMicroservice(sim::Simulator &sim, DdpCluster &cluster,
                const workload::FunctionSpec &spec,
                const MicroserviceConfig &mcfg)
{
    MicroserviceResult result;
    sim::WaitGroup wg(sim);
    for (int n = 0; n < cluster.numNodes(); ++n) {
        for (int w = 0; w < mcfg.workersPerNode; ++w) {
            wg.add();
            sim.spawn(microWorker(&sim, &cluster, &result, spec,
                                  static_cast<kv::NodeId>(n), w,
                                  mcfg.invocationsPerNode,
                                  mcfg.numRecords, mcfg.seed, &wg));
        }
    }
    sim.run();
    MINOS_ASSERT(wg.count() == 0, "microservice run did not finish");
    if (cluster.config().audit)
        cluster.config().audit->finish();
    result.eventCore = sim.counters();
    return result;
}

} // namespace minos::simproto
