/**
 * @file
 * Simulated-machine configuration (paper Tables II and III).
 *
 * Network/SmartNIC timing follows Table III directly; host software-path
 * costs (request dispatch, LLC access, tx-path) are calibration values in
 * the spirit of the paper's "various access latencies of the memory
 * hierarchy of the host are set based on measurements of the CloudLab
 * system".
 */

#ifndef MINOS_SIMPROTO_CONFIG_HH
#define MINOS_SIMPROTO_CONFIG_HH

#include <cstdint>

#include "common/units.hh"
#include "simproto/models.hh"

namespace minos::obs {
class AuditBundle;
class FlightRecorder;
class WritePhaseStats;
} // namespace minos::obs

namespace minos::simproto {

/** Full parameter set of the simulated distributed machine. */
struct ClusterConfig
{
    // ---- Topology (Table II / III) ----
    int numNodes = 5;   ///< 2,4,5(default),6,8,10,16 in the paper
    int hostCores = 5;  ///< busy cores per host
    int snicCores = 8;  ///< SmartNIC cores

    // ---- Synchronization (Table III) ----
    Tick hostSyncNs = 42;  ///< host compare-and-swap
    Tick snicSyncNs = 105; ///< SmartNIC compare-and-swap

    // ---- PCIe between host and (Smart)NIC (Table III) ----
    Tick pcieLatencyNs = 500;
    double pcieBwBytesPerSec = 6.25e9;
    /** Fixed per-message PCIe cost (doorbell/TLP overheads, [43]). */
    Tick pcieMsgOverheadNs = 200;

    // ---- Network link between (Smart)NICs (Table III) ----
    Tick netLatencyNs = 150;
    double netBwBytesPerSec = 7e9;

    // ---- NIC send engine (Table III) ----
    Tick sendInvNs = 200; ///< deposit one INV into the send buffer
    Tick sendAckNs = 100; ///< deposit one ACK/VAL/control message
    Tick interMsgGapNs = 100; ///< between consecutive msgs, no broadcast

    // ---- MINOS-O FIFOs (Table III) ----
    Tick vfifoWriteNs = 465;  ///< enqueue 1KB into the volatile FIFO
    Tick dfifoWriteNs = 1295; ///< enqueue 1KB into the durable FIFO
    int vfifoEntries = 5;     ///< 0 = unlimited
    int dfifoEntries = 5;     ///< 0 = unlimited

    // ---- Emulated NVM (Table II) ----
    Tick persistNsPerKb = 1295;

    // ---- Record/store ----
    std::uint32_t recordBytes = 1024; ///< YCSB default record size
    std::uint64_t numRecords = 100'000;

    // ---- Host software path (CloudLab-calibrated analogues; a 2.1 GHz
    // Xeon E5-2450 eRPC request path costs high hundreds of ns) ----
    Tick clientReqNs = 600; ///< client request ingress/egress processing
    Tick dispatchNs = 250;  ///< eRPC rx dispatch on the host
    Tick llcWriteNs = 250;  ///< write one record into the LLC
    Tick llcReadNs = 150;   ///< read one record from the LLC
    Tick hostSendNs = 250;  ///< host tx-path software cost per message
    Tick bookkeepNs = 100;  ///< ACK bookkeeping per message

    // ---- SmartNIC software/firmware path (BlueField-2-calibrated) ----
    Tick snicDispatchNs = 80;       ///< rx dispatch on the SmartNIC
    Tick snicUnpackPerDestNs = 70; ///< unpack one dest of a batched msg
    Tick coherenceNs = 60; ///< host<->SNIC coherent-field access penalty

    // ---- <Lin, Scope> workload shape ----
    int scopeSize = 10; ///< writes per scope before [PERSIST]sc

    // ---- Diagnostics ----
    /** Optional flight recorder (see obs/recorder.hh); not owned. */
    obs::FlightRecorder *trace = nullptr;
    /** Optional per-phase write latency sink; not owned. */
    obs::WritePhaseStats *phases = nullptr;
    /**
     * Optional online protocol auditors (see obs/audit.hh); not owned.
     * Requires `trace` (the auditors ride the recorder's sink bus);
     * the cluster fills in the AuditConfig and attaches the bundle.
     */
    obs::AuditBundle *audit = nullptr;

    /**
     * Test-only deliberate protocol mutations, used to prove the
     * auditors catch real bugs (tests/audit_test.cc) — the streaming
     * companion of check::CheckConfig's bug* flags. All default off;
     * production tools never set them.
     */
    struct MutationHooks
    {
        /** Coordinator frees the RDLock right after the INV fan-out,
         *  before any ACK (breaks Table I 2c; trips C3). */
        bool releaseRdLockEarly = false;
        /** Follower acknowledges persistency before it is durable
         *  (breaks 3a; trips P1). */
        bool ackBeforePersist = false;
        /** Coordinator's persistency gate settles for one ACK_P short
         *  (breaks 3b; trips P2). */
        bool dropOnePersistAck = false;
        /** Follower sends its gating consistency ACK twice (trips the
         *  ACK-conservation duplicate rule). */
        bool duplicateAck = false;
        /** vFIFO enqueue ignores the configured capacity bound
         *  (MINOS-O; trips the FIFO watchdog). */
        bool ignoreFifoCap = false;
    };
    MutationHooks mutations;

    /** Number of follower nodes for any coordinator. */
    int followers() const { return numNodes - 1; }
};

/** The three MINOS-O mechanisms toggled in the Fig. 12 ablation. */
struct OffloadOptions
{
    /**
     * "Combined": offload protocol execution to the SmartNIC + selective
     * host/SNIC hardware coherence + WRLock elimination via vFIFO/dFIFO.
     * The paper applies these as one unit because they are sub-optimal
     * separately (§VIII-D).
     */
    bool offload = false;
    /** Batch INV/ACK messages between host and SmartNIC over PCIe. */
    bool batching = false;
    /** True network broadcast of INV/VAL messages. */
    bool broadcast = false;

    static OffloadOptions
    minosB()
    {
        return {};
    }

    static OffloadOptions
    minosO()
    {
        return {true, true, true};
    }
};

} // namespace minos::simproto

#endif // MINOS_SIMPROTO_CONFIG_HH
