#include "log.hh"

#include "common/logging.hh"

namespace minos::nvm {

std::size_t
DurableLog::append(const LogEntry &entry)
{
    std::lock_guard<std::mutex> guard(mutex_);
    entries_.push_back(entry);
    return base_ + entries_.size() - 1;
}

std::size_t
DurableLog::size() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return base_ + entries_.size();
}

std::size_t
DurableLog::compactedThrough() const
{
    std::lock_guard<std::mutex> guard(mutex_);
    return base_;
}

LogEntry
DurableLog::entryAt(std::size_t index) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    MINOS_ASSERT(index >= base_, "log index ", index,
                 " reaches into the compacted prefix");
    MINOS_ASSERT(index - base_ < entries_.size(),
                 "log index out of range");
    return entries_[index - base_];
}

std::vector<LogEntry>
DurableLog::entriesSince(std::size_t from) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    if (from >= base_ + entries_.size())
        return {};
    MINOS_ASSERT(from >= base_, "log suffix ", from,
                 " reaches into the compacted prefix; use "
                 "exportSince()");
    return {entries_.begin() + static_cast<std::ptrdiff_t>(from - base_),
            entries_.end()};
}

std::vector<LogEntry>
DurableLog::exportSince(std::size_t from) const
{
    std::lock_guard<std::mutex> guard(mutex_);
    std::vector<LogEntry> out;
    if (from < base_) {
        // Materialize the snapshot: one synthetic entry per key.
        out.reserve(snapshot_.size() + entries_.size());
        for (const auto &[key, rec] : snapshot_)
            out.push_back(LogEntry{key, rec.value, rec.ts});
        out.insert(out.end(), entries_.begin(), entries_.end());
        return out;
    }
    if (from >= base_ + entries_.size())
        return {};
    return {entries_.begin() + static_cast<std::ptrdiff_t>(from - base_),
            entries_.end()};
}

void
DurableLog::compact(std::size_t up_to)
{
    std::lock_guard<std::mutex> guard(mutex_);
    if (up_to <= base_)
        return; // already compacted that far
    MINOS_ASSERT(up_to <= base_ + entries_.size(),
                 "compact beyond the log end");
    std::size_t n = up_to - base_;
    for (std::size_t i = 0; i < n; ++i) {
        const LogEntry &e = entries_[i];
        auto [it, inserted] = snapshot_.try_emplace(e.key);
        if (inserted || e.ts > it->second.ts) {
            it->second.value = e.value;
            it->second.ts = e.ts;
        }
    }
    entries_.erase(entries_.begin(),
                   entries_.begin() + static_cast<std::ptrdiff_t>(n));
    base_ = up_to;
}

std::size_t
DurableLog::applyTo(DurableDb &db, std::size_t from) const
{
    std::vector<LogEntry> entries = exportSince(from);
    return applyEntries(db, entries);
}

void
DurableLog::clear()
{
    std::lock_guard<std::mutex> guard(mutex_);
    entries_.clear();
    snapshot_.clear();
    base_ = 0;
}

std::size_t
applyEntries(DurableDb &db, const std::vector<LogEntry> &entries)
{
    std::size_t applied = 0;
    for (const auto &e : entries) {
        auto [it, inserted] = db.try_emplace(e.key);
        // Obsoleteness filter (§V-B.4): only strictly newer timestamps
        // replace the durable record.
        if (inserted || e.ts > it->second.ts) {
            it->second.value = e.value;
            it->second.ts = e.ts;
            ++applied;
        }
    }
    return applied;
}

} // namespace minos::nvm
