/**
 * @file
 * Emulated non-volatile memory timing (paper Table II: 1295 ns to persist
 * 1 KB of data).
 *
 * The paper has no real persistent-memory device either; it emulates NVM
 * with exactly this latency model, so this substitution is faithful by
 * construction. Fig. 14 sweeps the per-KB latency from 100 ns (Optane
 * cache line) to 100 us (SSD block).
 */

#ifndef MINOS_NVM_MODEL_HH
#define MINOS_NVM_MODEL_HH

#include <cstdint>

#include "common/units.hh"

namespace minos::nvm {

/** Timing model for persisting data to the emulated durable medium. */
class NvmModel
{
  public:
    /** @param ns_per_kb nanoseconds to persist 1 KB (default Table II). */
    explicit NvmModel(Tick ns_per_kb = 1295) : nsPerKb_(ns_per_kb) {}

    /** Latency to persist @p bytes, scaled linearly, minimum 1 tick. */
    Tick
    persistLatency(std::uint64_t bytes) const
    {
        if (bytes == 0)
            return 0;
        Tick t = static_cast<Tick>(
            (static_cast<double>(bytes) / 1024.0) *
            static_cast<double>(nsPerKb_));
        return t > 0 ? t : 1;
    }

    Tick nsPerKb() const { return nsPerKb_; }

  private:
    Tick nsPerKb_;
};

} // namespace minos::nvm

#endif // MINOS_NVM_MODEL_HH
