/**
 * @file
 * Durable append-only log (paper §III-B and §V-B.4).
 *
 * "While the volatile state is always updated in increasing order of
 *  write TS, the NVM can be updated by writes out of order. This is
 *  acceptable because we use a log structure for the persists."
 *
 * Entries may therefore arrive out of timestamp order and may be obsolete;
 * correctness is restored when the log is applied to the durable database,
 * where every entry is checked for obsoleteness against the newest
 * timestamp already applied for its key.
 *
 * The log is also the unit of recovery: when a failed node rejoins, a
 * designated node ships it the suffix of committed entries it missed
 * (§III-E), which the rejoining node replays.
 */

#ifndef MINOS_NVM_LOG_HH
#define MINOS_NVM_LOG_HH

#include <cstddef>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "kv/record.hh"
#include "kv/timestamp.hh"

namespace minos::nvm {

/** One persisted update. */
struct LogEntry
{
    kv::Key key;
    kv::Value value;
    kv::Timestamp ts;

    friend bool operator==(const LogEntry &, const LogEntry &) = default;
};

/** Durable state of one key after log application. */
struct DurableRecord
{
    kv::Value value = 0;
    kv::Timestamp ts = kv::Timestamp::none();
};

/** Key -> durable record map produced by replaying a log. */
using DurableDb = std::unordered_map<kv::Key, DurableRecord>;

/**
 * Append-only durable log with snapshot compaction. Thread-safe:
 * operations take a mutex (the emulated persist latency dwarfs it by
 * orders of magnitude).
 *
 * Compaction folds a prefix of the log into a per-key snapshot (keeping
 * only each key's newest update), after which the raw entries of that
 * prefix are discarded. Log indices remain global: `size()` keeps
 * counting from the beginning of time, and reading into the compacted
 * prefix is an error.
 */
class DurableLog
{
  public:
    DurableLog() = default;

    /** Persist one update. Returns the entry's (global) log index. */
    std::size_t append(const LogEntry &entry);

    /** Number of entries persisted so far (including compacted ones). */
    std::size_t size() const;

    /** First index still stored as a raw entry. */
    std::size_t compactedThrough() const;

    /** Copy of entry @p index. @pre compactedThrough() <= index < size() */
    LogEntry entryAt(std::size_t index) const;

    /**
     * Copy of all raw entries at indices >= @p from.
     * @pre from >= compactedThrough() (or >= size(), which is empty)
     */
    std::vector<LogEntry> entriesSince(std::size_t from) const;

    /**
     * Everything needed to rebuild durable state from position @p from:
     * if @p from reaches into the compacted prefix, the snapshot is
     * materialized as synthetic entries (one per key, newest update)
     * followed by the raw suffix. This is the recovery shipping unit.
     */
    std::vector<LogEntry> exportSince(std::size_t from) const;

    /**
     * Fold entries [compactedThrough(), up_to) into the snapshot and
     * drop their raw form. @pre up_to <= size()
     */
    void compact(std::size_t up_to);

    /**
     * Replay the snapshot (if @p from reaches into it) and the raw
     * entries [from, size()) into @p db, skipping obsolete entries.
     * @return number of entries actually applied.
     */
    std::size_t applyTo(DurableDb &db, std::size_t from = 0) const;

    /** Drop everything, including the snapshot (test helper). */
    void clear();

  private:
    mutable std::mutex mutex_;
    std::vector<LogEntry> entries_; ///< raw suffix
    DurableDb snapshot_;            ///< compacted prefix, per-key newest
    std::size_t base_ = 0;          ///< global index of entries_[0]
};

/**
 * Apply a batch of shipped entries to a database, skipping obsolete ones.
 * Used on the recovery path when replaying a remote node's log suffix.
 * @return number of entries applied.
 */
std::size_t applyEntries(DurableDb &db,
                         const std::vector<LogEntry> &entries);

} // namespace minos::nvm

#endif // MINOS_NVM_LOG_HH
